"""Ablation — gradient checkpointing's backward-stage cost.

The paper: "gradient checkpointing in Mixtral saves memory but increases
the backward stage runtime due to the re-computation of intermediate
values."
"""

from repro.gpu import A40, GPUSimulator
from repro.models import MIXTRAL_8X7B


def compare():
    sim = GPUSimulator(A40)
    with_ck = sim.simulate_step(MIXTRAL_8X7B, 4, 128, dense=False, checkpointing=True)
    without = sim.simulate_step(MIXTRAL_8X7B, 4, 128, dense=False, checkpointing=False)
    return {
        "backward_with_ck": with_ck.stage_seconds()["backward"],
        "backward_without": without.stage_seconds()["backward"],
    }


def test_checkpointing_ablation(benchmark, once):
    report = once(benchmark, compare)
    ratio = report["backward_with_ck"] / report["backward_without"]
    print(f"\n  backward with ck: {report['backward_with_ck']:.2f}s, "
          f"without: {report['backward_without']:.2f}s ({ratio:.2f}x)")
    assert 1.3 < ratio < 2.5  # recompute adds roughly one extra forward
