"""Ablation — Eq. 1 literal (2-coefficient) vs extended (+overhead) form.

DESIGN.md flags the printed Eq. 1 as unable to express the large fixed
memory block beyond the weights. This bench quantifies the gap.
"""

from repro.core import BatchSizeModel, collect_batch_size_observations
from repro.gpu import A40, A100_40, A100_80, H100
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


def fit_both():
    report = {}
    for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
        observations = collect_batch_size_observations(cfg, [A100_40, A40, A100_80, H100])
        literal = BatchSizeModel.fit(observations)
        extended = BatchSizeModel.fit(observations, fit_overhead=True)
        report[cfg.family] = {
            "literal_rmse": literal.rmse(observations),
            "extended_rmse": extended.rmse(observations),
            "extended_overhead_gb": extended.overhead_gb,
            "extended_c1": extended.c1,
        }
    return report


def test_eq1_extended_form_ablation(benchmark, once):
    report = once(benchmark, fit_both)
    print()
    for family, stats in report.items():
        print(f"  {family}: " + ", ".join(f"{k}={v:.3f}" for k, v in stats.items()))
        assert stats["extended_rmse"] < stats["literal_rmse"]
        assert stats["extended_overhead_gb"] > 5.0  # real fixed block exists
