"""Ablation — Eq. 2 'exponent' (our reading of the paper's intent) vs the
'literal' printed form, where C3 is degenerate with the intercept."""

from repro.core import collect_throughput_observations, fit_dense_sparse
from repro.gpu import A40
from repro.memory import EFFECTIVE_SEQ_LEN
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


def compare_forms():
    report = {}
    for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
        for dataset in ("commonsense15k", "math14k"):
            seq_len = EFFECTIVE_SEQ_LEN[dataset]
            dense = collect_throughput_observations(cfg, A40, seq_len, dense=True)
            sparse = collect_throughput_observations(cfg, A40, seq_len, dense=False)
            _m1, rmse_exp = fit_dense_sparse(dense, sparse, form="exponent")
            _m2, rmse_lit = fit_dense_sparse(dense, sparse, form="literal")
            report[f"{cfg.family}-{dataset}"] = (rmse_exp, rmse_lit)
    return report


def test_eq2_form_ablation(benchmark, once):
    report = once(benchmark, compare_forms)
    print()
    for key, (rmse_exp, rmse_lit) in report.items():
        print(f"  {key}: exponent={rmse_exp:.3f}, literal={rmse_lit:.3f}")
        # The exponent form is never meaningfully worse.
        assert rmse_exp <= rmse_lit * 1.1 + 1e-6
