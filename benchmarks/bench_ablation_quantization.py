"""Ablation — Mixtral with vs without NF4 quantization.

The paper notes the dequant/compute trade-off ("evaluate trade-offs
between memory savings and computation time, particularly with small
batch sizes"). Without quantization the dequant kernels vanish and GEMMs
run at full efficiency, but the model no longer fits a 48GB GPU at all
(46.7B fp16 = 93GB) — which is the whole reason QLoRA exists.
"""

from repro.gpu import A40, GPUSimulator
from repro.models import MIXTRAL_8X7B, param_breakdown


def compare():
    sim = GPUSimulator(A40)
    out = {}
    for batch in (1, 8):
        # Both arms train LoRA adapters only; the knob is weight storage.
        quantized = sim.simulate_step(MIXTRAL_8X7B, batch, 128, dense=False,
                                      quantized=True, lora=True)
        fp16 = sim.simulate_step(MIXTRAL_8X7B, batch, 128, dense=False,
                                 quantized=False, lora=True)
        out[batch] = (quantized.total_seconds, fp16.total_seconds)
    out["fp16_weights_gb"] = param_breakdown(MIXTRAL_8X7B).total * 2 / 1e9
    return out


def test_quantization_ablation(benchmark, once):
    report = once(benchmark, compare)
    print()
    for batch in (1, 8):
        q, f = report[batch]
        print(f"  bsz={batch}: quantized={q:.2f}s, fp16={f:.2f}s, overhead={q / f:.2f}x")
        assert q > f  # dequant + slower GEMMs cost time...
    print(f"  ...but fp16 weights need {report['fp16_weights_gb']:.0f}GB (vs 48GB on the A40)")
    assert report["fp16_weights_gb"] > A40.memory_gb
