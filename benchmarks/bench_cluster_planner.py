"""Cluster-planner benchmark: cold vs warm plan, cross-cluster-size reuse.

Times one cold plan (empty cache) and one warm plan (same cache) over the
planner's default sweep, and writes ``BENCH_cluster_planner.json`` at the
repo root. Two properties are asserted:

* cross-cluster-size trace reuse — even the *cold* plan simulates only
  one replica per (GPU, density) cell, so misses stay far below the
  number of scenarios swept (cluster sizes x interconnects share each
  replica trace);
* the warm plan performs zero additional ``simulate_step`` calls.

Run standalone:  PYTHONPATH=src python benchmarks/bench_cluster_planner.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import SimulationCache

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_cluster_planner.json"


def _plan(cache: SimulationCache):
    planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
    return planner.plan(providers=("cudo",), deadline_hours=24.0)


def measure() -> dict:
    cache = SimulationCache()

    start = time.perf_counter()
    cold_plan = _plan(cache)
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()

    start = time.perf_counter()
    warm_plan = _plan(cache)
    warm_seconds = time.perf_counter() - start
    warm_stats = cache.stats()

    payload = {
        "benchmark": "cluster_planner_default_sweep",
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "candidates": len(cold_plan.candidates),
        "frontier": [c.label for c in cold_plan.frontier],
        "cheapest": cold_plan.cheapest.label if cold_plan.cheapest else None,
        "cold_cache": {"hits": cold_stats.hits, "misses": cold_stats.misses,
                       "entries": cold_stats.entries},
        "warm_cache": {"hits": warm_stats.hits, "misses": warm_stats.misses,
                       "entries": warm_stats.entries},
        # Scenarios simulated per replica actually traced: > 1 means
        # cluster sizes shared replica traces even on the cold pass.
        "cold_reuse_factor": (cold_stats.lookups / cold_stats.misses
                              if cold_stats.misses else float("inf")),
        "warm_identical": [c.label for c in warm_plan.frontier]
                          == [c.label for c in cold_plan.frontier],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_cluster_planner_cold_vs_warm():
    payload = measure()
    print(f"\ncold {payload['cold_seconds']:.3f}s, warm {payload['warm_seconds']:.3f}s, "
          f"reuse x{payload['cold_reuse_factor']:.1f} -> {ARTIFACT.name}")
    # Cold pass already shares replica traces across cluster sizes: the
    # default sweep covers 4 cluster sizes x 2 interconnects per replica.
    assert payload["cold_reuse_factor"] >= 8.0, payload
    # Warm pass re-simulated nothing and reproduced the same frontier.
    assert payload["warm_cache"]["misses"] == payload["cold_cache"]["misses"]
    assert payload["warm_cache"]["hits"] > payload["cold_cache"]["hits"]
    assert payload["warm_identical"] is True


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
