"""Extension bench — multi-GPU data-parallel scaling (paper future work).

The paper leaves multi-GPU estimation "for future exploration"; this
bench exercises our data-parallel extension: QLoRA's tiny gradient set
scales near-perfectly while full fine-tuning pays a visible all-reduce
tax on PCIe-class links.
"""

from repro.gpu import A40, DataParallelSimulator, PCIE_GEN4
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


def scaling_study():
    sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
    out = {}
    for cfg, batch in ((MIXTRAL_8X7B, 4), (BLACKMAMBA_2_8B, 6)):
        curve = sim.scaling_curve(cfg, batch, 128, max_gpus=8)
        out[cfg.family] = {n: (e.queries_per_second, e.scaling_efficiency) for n, e in curve.items()}
    return out


def test_multigpu_scaling_extension(benchmark, once):
    report = once(benchmark, scaling_study)
    print()
    for family, curve in report.items():
        line = ", ".join(f"{n}:{qps:.2f}q/s({100 * eff:.0f}%)" for n, (qps, eff) in sorted(curve.items()))
        print(f"  {family}: {line}")
    assert report["mixtral"][8][1] > report["blackmamba"][8][1]
