"""Fig. 10 — DRAM bandwidth utilization of MoE kernels."""

from repro.experiments import fig10_dram


def test_fig10_dram_utilization(benchmark, once):
    result = once(benchmark, fig10_dram.run)
    print("\n" + result.to_table())
    assert result.row("mixtral_tw_dram_drop_s1_to_s32").measured > 5
