"""Fig. 11 — expert load distribution before/after fine-tuning.

Runs real tiny-model training; scale via REPRO_SCALE (smoke/bench/full).
"""

from conftest import experiment_scale

from repro.experiments import fig11_loadbalance


def test_fig11_load_distribution(benchmark, once):
    result = once(benchmark, fig11_loadbalance.run, scale=experiment_scale())
    print("\n" + result.to_table())
    # Pre-training balance ordering: Mixtral starts better balanced than
    # BlackMamba, as in the paper (Mixtral 55/21 vs BlackMamba 150/186).
    mixtral_pre = result.row("mixtral_hellaswag_pre_variance").measured
    blackmamba_pre = result.row("blackmamba_hellaswag_pre_variance").measured
    assert mixtral_pre < blackmamba_pre
    # Fine-tuning increases Mixtral imbalance on at least one dataset
    # (paper: 55->112 and 21->79; at tiny scale the effect is noisier).
    deltas = [
        result.row("mixtral_hellaswag_variance_delta").measured,
        result.row("mixtral_gsm8k_variance_delta").measured,
    ]
    assert max(deltas) > 0
