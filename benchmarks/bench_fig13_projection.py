"""Fig. 13 — Eq. 1 fit and max-batch-size projection."""

from repro.experiments import fig13_projection


def test_fig13_batch_projection(benchmark, once):
    result = once(benchmark, fig13_projection.run)
    print("\n" + result.to_table())
    assert result.row("mixtral_c1_extended").matches_paper(rel_tol=0.1)
    assert result.row("projection_100gb").matches_paper(rel_tol=0.25)
    assert result.row("projection_120gb").matches_paper(rel_tol=0.25)
