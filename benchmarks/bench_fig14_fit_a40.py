"""Fig. 14 — Eq. 2 throughput fit on the A40."""

from repro.experiments import fig14_fit_a40


def test_fig14_throughput_fit(benchmark, once):
    result = once(benchmark, fig14_fit_a40.run)
    print("\n" + result.to_table())
    # RMSE must stay at the paper's scale (their worst case is 0.79).
    assert result.row("mixtral_commonsense15k_rmse").measured < 0.4
    assert result.row("blackmamba_commonsense15k_rmse").measured < 1.6
