"""Fig. 15 — Eq. 2 validation on A100-40GB / A100-80GB / H100."""

import math

from repro.experiments import fig15_fit_gpus


def test_fig15_other_gpus(benchmark, once):
    result = once(benchmark, fig15_fit_gpus.run)
    print("\n" + result.to_table())
    for gpu in ("A100-80GB", "H100-80GB"):
        value = result.row(f"{gpu}_rmse").measured
        assert math.isnan(value) or value < 1.1
