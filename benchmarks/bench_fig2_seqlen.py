"""Fig. 2 — sequence-length distributions."""

from repro.experiments import fig2_seqlen


def test_fig2_seqlen_distributions(benchmark, once):
    result = once(benchmark, fig2_seqlen.run, sample_size=15000)
    print("\n" + result.to_table())
    assert result.row("commonsense15k_median").matches_paper(rel_tol=0.05)
    assert result.row("math14k_median").matches_paper(rel_tol=0.05)
