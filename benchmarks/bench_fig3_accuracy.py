"""Fig. 3 — dense vs sparse fine-tuning accuracy over epochs.

Runs the real tiny-model training pipeline (pretrain -> per-arm
fine-tune). Scale via REPRO_SCALE (smoke/bench/full).
"""

from conftest import experiment_scale

from repro.experiments import fig3_accuracy


def test_fig3_accuracy_curves(benchmark, once):
    result = once(benchmark, fig3_accuracy.run, scale=experiment_scale())
    print("\n" + result.to_table())
    for family, dataset in (("mixtral", "commonsense15k"), ("blackmamba", "commonsense15k")):
        sparse = result.row(f"{family}_{dataset}_sparse_best_acc").measured
        pre = result.row(f"{family}_{dataset}_sparse_pre_acc").measured
        assert sparse > pre, f"{family} did not learn {dataset}"
    # Takeaway 1: sparse within reach of dense on the commonsense arms.
    for family in ("mixtral", "blackmamba"):
        delta = result.row(f"{family}_commonsense15k_sparse_minus_dense").measured
        assert abs(delta) < 0.35
