"""Fig. 4 — forward/backward/optimizer stage breakdown."""

from repro.experiments import fig4_stages


def test_fig4_stage_breakdown(benchmark, once):
    result = once(benchmark, fig4_stages.run)
    print("\n" + result.to_table())
    assert result.row("blackmamba_S1_optimizer_share").matches_paper(rel_tol=0.25)
    assert result.row("mixtral_S1_optimizer_share").measured < 0.05
