"""Fig. 5 — layer-level time breakdown (MoE dominance)."""

from repro.experiments import fig5_layers


def test_fig5_layer_breakdown(benchmark, once):
    result = once(benchmark, fig5_layers.run)
    print("\n" + result.to_table())
    assert result.row("average_moe_share").measured > 0.6
