"""Fig. 6 — MoE kernel-level breakdown."""

from repro.experiments import fig6_kernels


def test_fig6_kernel_breakdown(benchmark, once):
    result = once(benchmark, fig6_kernels.run)
    print("\n" + result.to_table())
    for row in result.rows:
        if row.label.endswith("_matmul_share"):
            assert row.measured > 0.45
