"""Fig. 8 — fine-tuning throughput grid."""

from repro.experiments import fig8_throughput


def test_fig8_throughput(benchmark, once):
    result = once(benchmark, fig8_throughput.run)
    print("\n" + result.to_table())
    rows = [r for r in result.rows if r.paper is not None]
    within_2x = sum(bool(r.matches_paper(rel_tol=1.0)) for r in rows)
    assert within_2x == len(rows)
