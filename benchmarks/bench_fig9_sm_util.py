"""Fig. 9 — SM utilization of MoE kernels."""

from repro.experiments import fig9_sm


def test_fig9_sm_utilization(benchmark, once):
    result = once(benchmark, fig9_sm.run)
    print("\n" + result.to_table())
    assert result.row("mixtral_matmul_w1_rise_s1_to_s32").measured > 20
    assert result.row("mixtral_dequant_batch_drift").measured < 5
