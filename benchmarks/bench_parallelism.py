"""Parallelism-strategy benchmark: TP prices what DP skips, for free.

Runs the strategy layer's headline cell — dense Mixtral at the HellaSwag
padded length on the A40, which fits no single device — through the
planner three ways and writes ``BENCH_parallelism.json`` at the repo
root. Three properties are asserted:

* the pure data-parallel planner *skips* the cell (the pre-strategy
  behavior), while ``parallelism="auto"`` prices it at the
  tensor-parallel degrees that shard it into fitting;
* the cold auto plan simulates exactly one sharded per-device trace per
  fitting TP degree — cluster sizes, interconnects and accumulation
  depths all share it;
* a warm strategy sweep over a fixed TP degree (different cluster
  sizes, interconnects and grad-accum depths) performs **zero**
  additional simulations.

Run standalone:  PYTHONPATH=src python benchmarks/bench_parallelism.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import SimulationCache

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_parallelism.json"

CELL = dict(gpus=("A40",), providers=("cudo",), densities=(True,))


def measure() -> dict:
    cache = SimulationCache()
    planner = ClusterPlanner("mixtral-8x7b", dataset="hellaswag", cache=cache)

    # 1. The pre-strategy view: pure DP cannot fit the cell at all.
    dp_plan = planner.plan(parallelism="dp", **CELL)

    # 2. Cold auto plan: TP degrees shard the cell into fitting.
    start = time.perf_counter()
    cold_plan = planner.plan(parallelism="auto", **CELL)
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()
    degrees = sorted({c.scenario.tensor_parallel for c in cold_plan.candidates})

    # 3. Warm sweep at a fixed TP degree: new cluster sizes, both
    # interconnects and three accumulation depths — all post-processing
    # over the already-cached sharded traces.
    start = time.perf_counter()
    warm_plan = planner.plan(
        parallelism="tp", max_tp=max(degrees), grad_accums=(1, 2, 4), **CELL
    )
    warm_seconds = time.perf_counter() - start
    warm_stats = cache.stats()

    payload = {
        "benchmark": "parallelism_strategy_sweep",
        "cell": "mixtral-8x7b dense, hellaswag (seq 280), A40",
        "dp_candidates": len(dp_plan.candidates),
        "dp_skipped": list(dp_plan.skipped),
        "auto_candidates": len(cold_plan.candidates),
        "auto_skipped": list(cold_plan.skipped),
        "tp_degrees_priced": degrees,
        "auto_cheapest": cold_plan.cheapest.label if cold_plan.cheapest else None,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "cold_simulations": cold_stats.simulations,
        "warm_simulations": warm_stats.simulations,
        "warm_added_simulations": warm_stats.simulations - cold_stats.simulations,
        "warm_candidates": len(warm_plan.candidates),
        # Candidates priced per sharded trace actually simulated.
        "cold_reuse_factor": (
            len(cold_plan.candidates) / cold_stats.simulations
            if cold_stats.simulations else float("inf")
        ),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_parallelism_strategy_sweep():
    payload = measure()
    print(f"\ndp skips, auto prices {payload['auto_candidates']} candidates at "
          f"TP degrees {payload['tp_degrees_priced']}; warm strategy sweep added "
          f"{payload['warm_added_simulations']} simulations -> {ARTIFACT.name}")
    # The pre-strategy planner skips the cell; auto prices it.
    assert payload["dp_candidates"] == 0
    assert payload["dp_skipped"]
    assert payload["auto_candidates"] > 0
    assert payload["auto_skipped"] == []
    assert all(degree >= 2 for degree in payload["tp_degrees_priced"])
    # One sharded trace per fitting TP degree on the cold pass...
    assert payload["cold_simulations"] == len(payload["tp_degrees_priced"])
    # ...and the warm strategy sweep (sizes x links x grad-accum depths
    # at fixed degrees) performs zero additional simulations.
    assert payload["warm_added_simulations"] == 0
    assert payload["warm_candidates"] > 0


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
