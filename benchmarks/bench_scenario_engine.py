"""Scenario-engine benchmark: fig8 + table4 sweeps, cold vs warm cache.

Times one cold pass (empty cache — every scenario simulated) and one warm
pass (same cache — every lookup a hit) over the two heaviest sweep
consumers, and writes ``BENCH_scenario_engine.json`` at the repo root so
the perf trajectory has a tracked data point. The warm pass must be at
least 5x faster and perform zero additional simulations.

Run standalone:  PYTHONPATH=src python benchmarks/bench_scenario_engine.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.experiments import fig8_throughput, table4_cost
from repro.scenarios import SimulationCache

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_scenario_engine.json"


def _run_suite(cache: SimulationCache) -> None:
    fig8_throughput.run(cache=cache)
    table4_cost.run(cache=cache)


def measure() -> dict:
    cache = SimulationCache()

    start = time.perf_counter()
    _run_suite(cache)
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()

    start = time.perf_counter()
    _run_suite(cache)
    warm_seconds = time.perf_counter() - start
    warm_stats = cache.stats()

    payload = {
        "benchmark": "scenario_engine_fig8_table4",
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "cold_cache": {"hits": cold_stats.hits, "misses": cold_stats.misses,
                       "entries": cold_stats.entries},
        "warm_cache": {"hits": warm_stats.hits, "misses": warm_stats.misses,
                       "entries": warm_stats.entries},
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_scenario_engine_cold_vs_warm():
    payload = measure()
    print(f"\ncold {payload['cold_seconds']:.3f}s, warm {payload['warm_seconds']:.3f}s, "
          f"speedup {payload['speedup']:.1f}x -> {ARTIFACT.name}")
    # Warm pass re-simulated nothing...
    assert payload["warm_cache"]["misses"] == payload["cold_cache"]["misses"]
    assert payload["warm_cache"]["hits"] > payload["cold_cache"]["hits"]
    # ...and the acceptance bar: warm is at least 5x faster than cold.
    assert payload["speedup"] >= 5.0, payload


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
