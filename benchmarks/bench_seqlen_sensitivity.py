"""Section IV-B6 — sequence-length sensitivity study (figure omitted in
the paper for space; claims reproduced here)."""

from repro.experiments import seqlen_sensitivity


def test_seqlen_sensitivity(benchmark, once):
    result = once(benchmark, seqlen_sensitivity.run)
    print("\n" + result.to_table())
    assert 0.6 < result.row("mixtral_latency_ratio_longest_over_shortest").measured < 1.6
    assert 0.6 < result.row("blackmamba_latency_ratio_longest_over_shortest").measured < 0.95
