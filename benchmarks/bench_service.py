"""Planning-service benchmark: the warm shared cache, request
coalescing, and the stale-pricing path each earn their keep.

Three measurements, one artifact:

* **cold vs warm** — the first ``/plan/cluster`` request simulates and
  prices the whole sweep; every identical repeat must be served from the
  shared cache with *zero* new ``simulate_step`` calls. The warm
  latency is the service's steady-state cost and the ratio is the
  headline speedup.
* **coalesced burst** — N identical *cold* spot requests arrive at
  once (barrier-started threads). The full Monte-Carlo spot sweep takes
  seconds, so every follower lands inside the leader's window: exactly
  one plan computation, N byte-identical responses, and a dedup ratio
  of (N-1)/N.
* **stale catalog** — with the pricing feed unreachable the catalog
  pins the built-in fallback and keeps serving (``pricing_stale: true``)
  at warm-path speed: feed failure costs one recorded error, not
  latency or availability.

Writes ``BENCH_service.json`` at the repo root so the perf trajectory
has a tracked data point.

Run standalone:  PYTHONPATH=src python benchmarks/bench_service.py
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

from repro.service import PlanningService, PricingCatalog

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_service.json"

WARM_REPS = 15
BURST = 8
CLUSTER_BODY = {"model": "mixtral", "gpu": ["a40"], "deadline_hours": 24}
# The spot body deliberately leaves the GPU axis open: the full
# GPU x provider sweep with risk adjustment is a seconds-long cold
# computation — a window wide enough that a burst of duplicates
# reliably coalesces onto one leader.
SPOT_BODY = {"model": "mixtral", "deadline_hours": 24}


def _timed_plan(service: PlanningService, kind: str, body: dict):
    start = time.perf_counter()
    response = service.plan(kind, dict(body))
    return time.perf_counter() - start, json.loads(response)


def _dead_feed(feed: str):
    raise OSError("feed unreachable (benchmark)")


def measure() -> dict:
    service = PlanningService()

    # --- cold vs warm ------------------------------------------------
    cold_seconds, cold = _timed_plan(service, "cluster", CLUSTER_BODY)
    warm_seconds = float("inf")
    warm_new_simulations = 0
    for _ in range(WARM_REPS):
        seconds, warm = _timed_plan(service, "cluster", CLUSTER_BODY)
        warm_seconds = min(warm_seconds, seconds)
        warm_new_simulations += warm["engine"]["simulations"]

    # --- coalesced burst ---------------------------------------------
    burst_service = PlanningService()
    barrier = threading.Barrier(BURST)
    responses = [None] * BURST

    def worker(i: int) -> None:
        barrier.wait()
        responses[i] = burst_service.plan("spot", dict(SPOT_BODY))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(BURST)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    burst_seconds = time.perf_counter() - start
    flight = burst_service.flight.stats()
    distinct_responses = len(set(responses))

    # --- stale-catalog serve path ------------------------------------
    stale_service = PlanningService(
        pricing=PricingCatalog(feed="http://pricing.invalid/feed",
                               fetch=_dead_feed)
    )
    stale_cold_seconds, stale_cold = _timed_plan(stale_service, "cluster",
                                                 CLUSTER_BODY)
    stale_warm_seconds = float("inf")
    for _ in range(WARM_REPS):
        seconds, stale_warm = _timed_plan(stale_service, "cluster",
                                          CLUSTER_BODY)
        stale_warm_seconds = min(stale_warm_seconds, seconds)

    payload = {
        "benchmark": "planning_service",
        "warm_reps": WARM_REPS,
        "cold_request_seconds": cold_seconds,
        "warm_request_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "cold_simulations": cold["engine"]["simulations"],
        "warm_new_simulations": warm_new_simulations,
        "burst_size": BURST,
        "burst_seconds": burst_seconds,
        "burst_leaders": flight["leaders"],
        "burst_shared": flight["shared"],
        "burst_distinct_responses": distinct_responses,
        "burst_dedup_ratio": flight["shared"] / BURST,
        "stale_cold_request_seconds": stale_cold_seconds,
        "stale_warm_request_seconds": stale_warm_seconds,
        "stale_served": stale_warm["pricing_stale"],
        "stale_feed_failures": stale_service.stats_payload()["pricing"]["failures"],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_service_perf_contract():
    payload = measure()
    print(f"\ncold {payload['cold_request_seconds'] * 1000:.1f} ms, warm "
          f"{payload['warm_request_seconds'] * 1000:.2f} ms "
          f"({payload['warm_speedup']:.0f}x); burst of {payload['burst_size']} "
          f"-> {payload['burst_leaders']} computation(s), dedup "
          f"{payload['burst_dedup_ratio'] * 100:.0f}% -> {ARTIFACT.name}")
    # The warm path is pure cache bookkeeping: zero new simulations...
    assert payload["cold_simulations"] > 0
    assert payload["warm_new_simulations"] == 0
    assert payload["warm_request_seconds"] < payload["cold_request_seconds"]
    # ...the burst coalesced onto one leader with byte-identical responses...
    assert payload["burst_leaders"] == 1
    assert payload["burst_shared"] == payload["burst_size"] - 1
    assert payload["burst_distinct_responses"] == 1
    # ...and a dead feed degrades to stale prices, never to errors.
    assert payload["stale_served"] is True
    assert payload["stale_feed_failures"] >= 1
    assert payload["stale_warm_request_seconds"] < payload["stale_cold_request_seconds"]


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
