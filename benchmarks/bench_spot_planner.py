"""Spot-planner benchmark: the risk sweep is free on a warm cache.

Times one cold risk-adjusted plan (empty cache), one warm repeat, and a
plain on-demand cluster plan over the same cache, and writes
``BENCH_spot_planner.json`` at the repo root. Three properties are
asserted:

* the risk layer is pure post-processing — the cold risk plan performs
  exactly as many simulations as the on-demand cluster sweep it extends
  (the spot tier, checkpoint cadences and Monte Carlo add zero);
* the warm risk sweep reports **zero new simulations**;
* warm and cold plans are identical (Monte Carlo seeds are
  candidate-deterministic, not time- or order-dependent).

Run standalone:  PYTHONPATH=src python benchmarks/bench_spot_planner.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import SimulationCache
from repro.spot import RiskAdjustedPlanner

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_spot_planner.json"


def _risk_plan(cache: SimulationCache):
    planner = RiskAdjustedPlanner(
        "mixtral-8x7b", dataset="math14k", cache=cache,
        checkpoint_minutes=(10.0, 30.0, 60.0),
    )
    return planner.plan_spot(
        providers=("cudo",), deadline_hours=24.0, confidence=0.95
    )


def measure() -> dict:
    cache = SimulationCache()

    start = time.perf_counter()
    cold_plan = _risk_plan(cache)
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()

    start = time.perf_counter()
    warm_plan = _risk_plan(cache)
    warm_seconds = time.perf_counter() - start
    warm_stats = cache.stats()

    # The equivalent on-demand sweep on the same cache: the risk layer
    # must not have simulated anything this plan would not.
    ondemand_plan = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache).plan(
        providers=("cudo",), deadline_hours=24.0
    )
    ondemand_stats = cache.stats()

    payload = {
        "benchmark": "spot_planner_risk_sweep",
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "candidates": len(cold_plan.candidates),
        "spot_candidates": len(cold_plan.spot_candidates),
        "frontier": [c.label for c in cold_plan.frontier],
        "recommended": cold_plan.recommended.label if cold_plan.recommended else None,
        "cold_cache": {"hits": cold_stats.hits, "misses": cold_stats.misses,
                       "entries": cold_stats.entries},
        "warm_cache": {"hits": warm_stats.hits, "misses": warm_stats.misses,
                       "entries": warm_stats.entries},
        # Zero new simulations for the warm risk sweep AND for the
        # on-demand plan that follows it (shared replica traces).
        "warm_new_simulations": warm_stats.misses - cold_stats.misses,
        "ondemand_new_simulations": ondemand_stats.misses - warm_stats.misses,
        "ondemand_candidates": len(ondemand_plan.candidates),
        "warm_identical": [c.label for c in warm_plan.frontier]
                          == [c.label for c in cold_plan.frontier],
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_spot_planner_risk_sweep_is_free_when_warm():
    payload = measure()
    print(f"\ncold {payload['cold_seconds']:.3f}s, warm {payload['warm_seconds']:.3f}s, "
          f"warm new sims {payload['warm_new_simulations']} -> {ARTIFACT.name}")
    # The warm risk sweep simulated nothing new.
    assert payload["warm_new_simulations"] == 0, payload
    # Neither did the plain on-demand plan after it: risk and on-demand
    # planning share the identical replica traces.
    assert payload["ondemand_new_simulations"] == 0, payload
    # Every spot candidate in the plan saves money in expectation by
    # construction, and the plan is reproducible from a warm cache.
    assert payload["warm_identical"] is True
    assert payload["spot_candidates"] >= 1


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
