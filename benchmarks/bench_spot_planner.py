"""Spot-planner benchmark: the risk sweep is free on a warm cache.

Times one cold risk-adjusted plan (empty cache), one warm repeat, the
``mc`` validation path on warmed traces, and a plain on-demand cluster
plan over the same cache, and writes ``BENCH_spot_planner.json`` at the
repo root. The asserted properties are the PR 6 acceptance criteria:

* the risk layer is pure post-processing — the cold risk plan performs
  exactly as many ``simulate_step`` calls as the on-demand cluster sweep
  it extends (the spot tier, checkpoint cadences and risk distributions
  add zero), and the warm risk sweep performs **none at all**;
* the warm risk sweep also recomputes **zero risk results** (every
  analytic distribution and closed-form pricing comes back from the
  ``kind="risk"`` memoization namespace) and is at least **10x** faster
  than cold;
* a warm analytic spot plan costs at most 2x the warm cluster plan it
  wraps — risk percentiles are no longer the bottleneck;
* warm and cold plans are identical (Monte Carlo seeds are
  candidate-deterministic, not time- or order-dependent).

Run standalone:  PYTHONPATH=src python benchmarks/bench_spot_planner.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import SimulationCache
from repro.spot import RiskAdjustedPlanner

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_spot_planner.json"

MIN_WARM_SPEEDUP = 10.0
MAX_WARM_VS_CLUSTER = 2.0
# Warm plans run in ~2 ms, where single-shot timings are mostly
# scheduler noise; warm phases report the best of this many runs,
# interleaving the risk and cluster plans so both sides of the
# within-2x ratio sample the same CPU-frequency conditions.
WARM_REPEATS = 5


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _risk_plan(cache: SimulationCache, risk_mode: str = "analytic"):
    planner = RiskAdjustedPlanner(
        "mixtral-8x7b", dataset="math14k", cache=cache,
        checkpoint_minutes=(10.0, 30.0, 60.0), risk_mode=risk_mode,
    )
    return planner.plan_spot(
        providers=("cudo",), deadline_hours=24.0, confidence=0.95
    )


def _cluster_plan(cache: SimulationCache):
    return ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache).plan(
        providers=("cudo",), deadline_hours=24.0
    )


def measure() -> dict:
    cache = SimulationCache()

    start = time.perf_counter()
    cold_plan = _risk_plan(cache)
    cold_seconds = time.perf_counter() - start
    cold_stats = cache.stats()

    warm_plan = _risk_plan(cache)
    warm_stats = cache.stats()

    # The risk layers in isolation: fresh caches pre-warmed with the
    # traces only, so the timed plans pay for risk math but not for
    # simulate_step. analytic_seconds is the serving path's cost,
    # mc_seconds the batched validation path's.
    ana_cache = SimulationCache()
    _cluster_plan(ana_cache)
    start = time.perf_counter()
    _risk_plan(ana_cache, risk_mode="analytic")
    analytic_seconds = time.perf_counter() - start

    mc_cache = SimulationCache()
    _cluster_plan(mc_cache)
    start = time.perf_counter()
    mc_plan = _risk_plan(mc_cache, risk_mode="mc")
    mc_seconds = time.perf_counter() - start

    # The equivalent on-demand sweep on the original cache: the risk
    # layer must not have simulated anything this plan would not.
    ondemand_plan = _cluster_plan(cache)
    ondemand_stats = cache.stats()

    # The warm wall-clock comparison, interleaved best-of-N.
    warm_seconds = float("inf")
    warm_cluster_seconds = float("inf")
    for _ in range(WARM_REPEATS):
        warm_seconds = min(warm_seconds, _timed(lambda: _risk_plan(cache)))
        warm_cluster_seconds = min(
            warm_cluster_seconds, _timed(lambda: _cluster_plan(cache))
        )

    warm_speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    payload = {
        "benchmark": "spot_planner_risk_sweep",
        "risk_mode": cold_plan.risk_mode,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "analytic_seconds": analytic_seconds,
        "mc_seconds": mc_seconds,
        "warm_cluster_seconds": warm_cluster_seconds,
        "warm_speedup": warm_speedup,
        "warm_vs_cluster_ratio": (
            warm_seconds / warm_cluster_seconds
            if warm_cluster_seconds > 0 else float("inf")
        ),
        "candidates": len(cold_plan.candidates),
        "spot_candidates": len(cold_plan.spot_candidates),
        "frontier": [c.label for c in cold_plan.frontier],
        "recommended": cold_plan.recommended.label if cold_plan.recommended else None,
        "cold_cache": {"hits": cold_stats.hits, "misses": cold_stats.misses,
                       "entries": cold_stats.entries,
                       "simulations": cold_stats.simulations,
                       "risk_hits": cold_stats.risk_hits,
                       "risk_misses": cold_stats.risk_misses},
        "warm_cache": {"hits": warm_stats.hits, "misses": warm_stats.misses,
                       "entries": warm_stats.entries,
                       "simulations": warm_stats.simulations,
                       "risk_hits": warm_stats.risk_hits,
                       "risk_misses": warm_stats.risk_misses},
        # Zero new simulate_step calls for the warm risk sweep AND for
        # the on-demand plan that follows it (shared replica traces),
        # and zero recomputed risk results on the warm pass.
        "warm_new_simulations": warm_stats.simulations - cold_stats.simulations,
        "warm_new_risk_computations": warm_stats.risk_misses - cold_stats.risk_misses,
        "ondemand_new_simulations": (
            ondemand_stats.simulations - warm_stats.simulations
        ),
        "ondemand_candidates": len(ondemand_plan.candidates),
        "warm_identical": [c.label for c in warm_plan.frontier]
                          == [c.label for c in cold_plan.frontier],
        "mc_frontier_identical_to_analytic": (
            [c.label for c in mc_plan.frontier]
            == [c.label for c in cold_plan.frontier]
        ),
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_spot_planner_risk_sweep_is_free_when_warm():
    payload = measure()
    print(f"\ncold {payload['cold_seconds']:.3f}s, warm {payload['warm_seconds']:.4f}s "
          f"({payload['warm_speedup']:.0f}x), analytic {payload['analytic_seconds']:.4f}s, "
          f"mc {payload['mc_seconds']:.3f}s -> {ARTIFACT.name}")
    # The warm risk sweep ran simulate_step zero times and recomputed
    # zero risk results — everything came from the caches.
    assert payload["warm_new_simulations"] == 0, payload
    assert payload["warm_new_risk_computations"] == 0, payload
    # Neither did the plain on-demand plan after it: risk and on-demand
    # planning share the identical replica traces.
    assert payload["ondemand_new_simulations"] == 0, payload
    # The acceptance floor: warm risk plans are >= 10x faster than cold
    # (the seed repo measured 0.96x — warm was no faster than cold).
    assert payload["warm_speedup"] >= MIN_WARM_SPEEDUP, payload
    # A warm analytic spot plan costs at most 2x the warm cluster plan.
    assert payload["warm_vs_cluster_ratio"] <= MAX_WARM_VS_CLUSTER, payload
    # Every spot candidate in the plan saves money in expectation by
    # construction, and the plan is reproducible from a warm cache.
    assert payload["warm_identical"] is True
    assert payload["spot_candidates"] >= 1


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
