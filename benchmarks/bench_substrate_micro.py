"""Micro-benchmarks of the training substrate itself.

These are conventional pytest-benchmark measurements (multiple rounds) of
the numpy building blocks: useful for tracking performance regressions of
the reproduction stack, not paper artifacts.
"""

import numpy as np
import pytest

from repro import nn
from repro.models import BLACKMAMBA_TINY, BlackMambaModel, MIXTRAL_TINY, MixtralModel
from repro.nn import cross_entropy
from repro.quant import quantize
from repro.tensor import Tensor, no_grad

RNG = np.random.default_rng(0)


@pytest.fixture(scope="module")
def moe_layer():
    return nn.MoELayer(32, 8, 2, lambda: nn.SwiGLUExpert(32, 64, rng=RNG), rng=RNG)


def test_moe_forward_microbench(benchmark, moe_layer):
    x = Tensor(RNG.standard_normal((4, 32, 32)))

    def run():
        with no_grad():
            return moe_layer(x)

    benchmark(run)


def test_attention_forward_microbench(benchmark):
    attention = nn.CausalSelfAttention(64, 8, num_kv_heads=2, rng=RNG)
    x = Tensor(RNG.standard_normal((4, 48, 64)))

    def run():
        with no_grad():
            return attention(x)

    benchmark(run)


def test_mamba_forward_microbench(benchmark):
    mixer = nn.MambaMixer(32, state_dim=8, rng=RNG)
    x = Tensor(RNG.standard_normal((4, 48, 32)))

    def run():
        with no_grad():
            return mixer(x)

    benchmark(run)


def test_nf4_quantize_microbench(benchmark):
    weight = RNG.standard_normal((256, 256))
    benchmark(quantize, weight)


def test_nf4_dequantize_microbench(benchmark):
    qt = quantize(RNG.standard_normal((256, 256)))
    benchmark(qt.dequantize)


def test_mixtral_tiny_train_step_microbench(benchmark):
    model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=RNG)
    ids = RNG.integers(0, MIXTRAL_TINY.vocab_size, (4, 24))
    targets = np.roll(ids, -1, axis=1)

    def step():
        logits = model(ids)
        loss = cross_entropy(logits, targets)
        model.zero_grad()
        loss.backward()
        return loss

    benchmark(step)


def test_blackmamba_tiny_train_step_microbench(benchmark):
    model = BlackMambaModel(BLACKMAMBA_TINY, rng=RNG)
    ids = RNG.integers(0, BLACKMAMBA_TINY.vocab_size, (4, 24))
    targets = np.roll(ids, -1, axis=1)

    def step():
        logits = model(ids)
        loss = cross_entropy(logits, targets)
        model.zero_grad()
        loss.backward()
        return loss

    benchmark(step)


def test_gpu_simulator_step_microbench(benchmark):
    from repro.gpu import A40, GPUSimulator
    from repro.models import MIXTRAL_8X7B

    sim = GPUSimulator(A40)
    benchmark(sim.simulate_step, MIXTRAL_8X7B, 8, 128)
