"""Table I — model inventory."""

from repro.experiments import table1_models


def test_table1_models(benchmark, once):
    result = once(benchmark, table1_models.run)
    print("\n" + result.to_table())
    assert all(r.matches_paper(rel_tol=0.05) for r in result.rows)
