"""Table II — dataset statistics."""

from repro.experiments import table2_datasets


def test_table2_datasets(benchmark, once):
    result = once(benchmark, table2_datasets.run, sample_size=3000)
    print("\n" + result.to_table())
    assert result.row("commonsense15k_median_seq_len").matches_paper(rel_tol=0.1)
    assert result.row("math14k_median_seq_len").matches_paper(rel_tol=0.1)
