"""Table III — maximum batch sizes on the A40."""

from repro.experiments import table3_maxbatch


def test_table3_max_batch_sizes(benchmark, once):
    result = once(benchmark, table3_maxbatch.run)
    print("\n" + result.to_table())
    for row in result.rows:
        assert row.measured == row.paper, row.label
