"""Table IV — fine-tuning cost estimates plus the OpenOrca projection."""

from repro.experiments import table4_cost


def test_table4_cost(benchmark, once):
    result = once(benchmark, table4_cost.run)
    print("\n" + result.to_table())
    assert result.row("cheapest_gpu").measured == "H100-80GB"
    assert result.row("A40_cost").matches_paper(rel_tol=0.15)
    assert result.row("openorca_h100_cost").matches_paper(rel_tol=0.25)
