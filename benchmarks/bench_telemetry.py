"""Telemetry overhead benchmark: a traced warm plan must cost within a
few percent of an untraced one.

The instrumentation contract is "one attribute check when nobody is
watching, cheap bookkeeping when someone is": disabled tracers hand out
a shared no-op span, and the metrics hot path is a handful of locked
adds. This benchmark measures a *warm* ``ClusterPlanner.plan`` (memory
cache pre-populated, so cache bookkeeping — the instrumented hot path —
dominates over simulation) with telemetry off and with an enabled
tracer + JSONL export, and asserts the enabled overhead stays under 5%.

Minimum-of-several-repetitions on both sides keeps scheduler noise out
of the ratio.

The end-of-run costs — the JSONL export *and* the run-store ingest a
``--run-store`` run pays — happen once per run, not per plan, so they
are measured separately (``export_seconds``,
``runstore_ingest_seconds``) rather than folded into the per-plan
ratio; the benchmark still asserts the ingest landed exactly one
indexed record.

Writes ``BENCH_telemetry.json`` at the repo root so the perf trajectory
has a tracked data point.

Run standalone:  PYTHONPATH=src python benchmarks/bench_telemetry.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import SimulationCache
from repro.telemetry import RunStore, Tracer, build_manifest, write_events

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_telemetry.json"

REPS = 15
# The full GPU x provider x density space with the parallelism axes on:
# a warm pass is ~10 ms of candidate construction, pricing and ranking,
# large enough that the fixed per-phase span cost reads as a ratio
# instead of timer jitter.
PLAN_KWARGS = dict(deadline_hours=24.0, parallelism="auto",
                   grad_accums=(1, 2, 4))
# The acceptance bar, with headroom over the nominal ~1% for noisy CI
# machines: a traced warm plan may cost at most 5% more wall-clock.
MAX_OVERHEAD = 0.05


def _timed_plan(planner: ClusterPlanner) -> float:
    start = time.perf_counter()
    planner.plan(**PLAN_KWARGS)
    return time.perf_counter() - start


def measure() -> dict:
    # Telemetry off: the planner resolves the (disabled) default tracer.
    off_planner = ClusterPlanner("mixtral-8x7b", dataset="math14k",
                                 cache=SimulationCache())

    # Telemetry on: an enabled tracer records every phase span, and the
    # run ends with a full JSONL export (spans + metrics + manifest) —
    # the whole --telemetry-out cost, not just the span bookkeeping.
    tracer = Tracer(enabled=True)
    on_cache = SimulationCache()
    on_planner = ClusterPlanner("mixtral-8x7b", dataset="math14k",
                                cache=on_cache, tracer=tracer)

    # Warm both caches outside the timings, then interleave the timed
    # repetitions so slow drift (thermal, page cache) hits both sides
    # equally instead of biasing whichever ran second.
    off_planner.plan(**PLAN_KWARGS)
    on_planner.plan(**PLAN_KWARGS)
    off_seconds = float("inf")
    on_seconds = float("inf")
    for _ in range(REPS):
        off_seconds = min(off_seconds, _timed_plan(off_planner))
        on_seconds = min(on_seconds, _timed_plan(on_planner))
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        manifest = build_manifest("bench", {"reps": REPS}, tracer,
                                  on_cache.stats())
        events = write_events(Path(tmp) / "events.jsonl", tracer,
                              on_cache.metrics.snapshot(), manifest)
        export_seconds = time.perf_counter() - start
        # ...and the --run-store leg: validate + index the same run.
        store = RunStore(Path(tmp) / "runstore")
        start = time.perf_counter()
        store.ingest(Path(tmp) / "events.jsonl", timestamp=time.time())
        runstore_ingest_seconds = time.perf_counter() - start
        runs_recorded = len(store)

    overhead = on_seconds / off_seconds - 1.0 if off_seconds > 0 else 0.0
    payload = {
        "benchmark": "telemetry_overhead_warm_cluster_plan",
        "reps": REPS,
        "untraced_seconds": off_seconds,
        "traced_seconds": on_seconds,
        "overhead_fraction": overhead,
        "max_overhead_fraction": MAX_OVERHEAD,
        "spans_recorded": len(tracer),
        "events_exported": events,
        "export_seconds": export_seconds,
        "runstore_ingest_seconds": runstore_ingest_seconds,
        "runs_recorded": runs_recorded,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_telemetry_overhead_under_bar():
    payload = measure()
    print(f"\nuntraced {payload['untraced_seconds'] * 1000:.2f} ms, traced "
          f"{payload['traced_seconds'] * 1000:.2f} ms, overhead "
          f"{payload['overhead_fraction'] * 100:+.2f}% -> {ARTIFACT.name}")
    # Tracing recorded the full phase tree on every repetition...
    assert payload["spans_recorded"] > 0
    assert payload["events_exported"] > payload["spans_recorded"]
    # ...the run-store write validated and indexed exactly one run...
    assert payload["runs_recorded"] == 1
    # ...and the acceptance bar: the traced warm plan costs < 5% extra.
    assert payload["overhead_fraction"] < MAX_OVERHEAD, payload


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
