"""Trace-store benchmark: cold vs disk-warm passes, plus the plan CLI
acceptance bar.

Three measurements against one disk store:

1. **cold sweep** — fig8 grid through a fresh cache + empty store: every
   point simulates and the store is populated;
2. **disk-warm sweep** — a fresh cache (a new process's state) over the
   same store, serial and process-pool: must simulate *nothing*;
3. **plan run** — ``ClusterPlanner`` cold then warm against the store:
   the warm plan performs zero simulations and is byte-identical.

Writes ``BENCH_trace_store.json`` at the repo root so the perf
trajectory has a tracked data point.

Run standalone:  PYTHONPATH=src python benchmarks/bench_trace_store.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.cluster import ClusterPlanner
from repro.scenarios import DiskTraceStore, SimulationCache, SweepRunner, preset
from repro.serialization import dumps

ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_trace_store.json"


def _stats_dict(cache: SimulationCache) -> dict:
    stats = cache.stats()
    return {"hits": stats.hits, "disk_hits": stats.disk_hits,
            "misses": stats.misses, "entries": stats.entries,
            "simulations": stats.simulations}


def _plan_payload(store: DiskTraceStore) -> tuple:
    cache = SimulationCache(store=store)
    planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
    start = time.perf_counter()
    plan = planner.plan(gpus=("A40", "H100-80GB"), providers=("cudo",),
                        densities=(False,), deadline_hours=24.0)
    seconds = time.perf_counter() - start
    return dumps(plan.to_payload(), indent=2), seconds, _stats_dict(cache)


def measure() -> dict:
    grid = preset("fig8")
    with tempfile.TemporaryDirectory() as tmp:
        store = DiskTraceStore(tmp)

        cold_cache = SimulationCache(store=store)
        start = time.perf_counter()
        SweepRunner(cache=cold_cache).run(grid)
        cold_seconds = time.perf_counter() - start

        warm_cache = SimulationCache(store=store)  # fresh-process stand-in
        start = time.perf_counter()
        SweepRunner(cache=warm_cache).run(grid)
        warm_seconds = time.perf_counter() - start

        process_cache = SimulationCache(store=store)
        start = time.perf_counter()
        SweepRunner(cache=process_cache, jobs=2, executor="process").run(grid)
        process_seconds = time.perf_counter() - start

        plan_store = DiskTraceStore(Path(tmp) / "plan")
        cold_plan, cold_plan_seconds, cold_plan_stats = _plan_payload(plan_store)
        warm_plan, warm_plan_seconds, warm_plan_stats = _plan_payload(plan_store)

    payload = {
        "benchmark": "trace_store_fig8_plus_cluster_plan",
        "grid_points": len(grid),
        "cold_seconds": cold_seconds,
        "disk_warm_seconds": warm_seconds,
        "disk_warm_process_seconds": process_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else float("inf"),
        "cold_cache": _stats_dict(cold_cache),
        "disk_warm_cache": _stats_dict(warm_cache),
        "disk_warm_process_cache": _stats_dict(process_cache),
        "plan_cold_seconds": cold_plan_seconds,
        "plan_warm_seconds": warm_plan_seconds,
        "plan_cold_cache": cold_plan_stats,
        "plan_warm_cache": warm_plan_stats,
        "plan_identical": warm_plan == cold_plan,
    }
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_trace_store_cold_vs_disk_warm():
    payload = measure()
    print(f"\ncold {payload['cold_seconds']:.3f}s, disk-warm "
          f"{payload['disk_warm_seconds']:.3f}s, speedup "
          f"{payload['speedup']:.1f}x -> {ARTIFACT.name}")
    # The cold pass simulated every grid point and populated the store...
    assert payload["cold_cache"]["simulations"] == payload["grid_points"]
    # ...and the acceptance bar: a disk-warm pass (fresh cache, same
    # store) simulates NOTHING, serially or through the process pool.
    assert payload["disk_warm_cache"]["simulations"] == 0
    assert payload["disk_warm_cache"]["disk_hits"] == payload["grid_points"]
    assert payload["disk_warm_process_cache"]["simulations"] == 0
    # The warm plan run is simulation-free and byte-identical to cold.
    assert payload["plan_cold_cache"]["simulations"] > 0
    assert payload["plan_warm_cache"]["simulations"] == 0
    assert payload["plan_identical"] is True
    # Reading traces back must beat re-simulating them (the nominal
    # ratio is ~4x; the bar is low to tolerate noisy CI disks).
    assert payload["speedup"] >= 1.5, payload


if __name__ == "__main__":
    print(json.dumps(measure(), indent=2))
