"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact via its experiment module
and prints the measured-vs-paper table (run pytest with ``-s`` to see
them). Expensive experiments run once (``pedantic`` with a single round);
substrate micro-benchmarks use normal pytest-benchmark statistics.

The training-based experiments (Fig. 3, Fig. 11) default to their
``smoke`` scale so the whole suite stays tractable; set
``REPRO_SCALE=bench`` or ``REPRO_SCALE=full`` for larger runs.
"""

from __future__ import annotations

import os

import pytest

from repro.scenarios import reset_default_cache


@pytest.fixture(autouse=True)
def fresh_scenario_cache():
    """Benchmarks time *cold* runs: reset the process-global simulation
    cache before each one so timings don't depend on collection order
    (experiments fall back to the shared default cache)."""
    reset_default_cache()
    yield


def experiment_scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
