"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artifact via its experiment module
and prints the measured-vs-paper table (run pytest with ``-s`` to see
them). Expensive experiments run once (``pedantic`` with a single round);
substrate micro-benchmarks use normal pytest-benchmark statistics.

The training-based experiments (Fig. 3, Fig. 11) default to their
``smoke`` scale so the whole suite stays tractable; set
``REPRO_SCALE=bench`` or ``REPRO_SCALE=full`` for larger runs.

With ``$REPRO_RUN_STORE`` set, every ``BENCH_*.json`` artifact a
benchmark (re)writes is also recorded into the run store as a synthetic
run (``command="bench.<name>"``, the payload's ``*_seconds`` fields as
phases), so bench trajectories are diffable with
``python -m repro.telemetry.compare`` — opt-in, off by default.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.scenarios import reset_default_cache
from repro.telemetry import resolve_run_store

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def fresh_scenario_cache():
    """Benchmarks time *cold* runs: reset the process-global simulation
    cache before each one so timings don't depend on collection order
    (experiments fall back to the shared default cache)."""
    reset_default_cache()
    yield


def _bench_artifact_mtimes():
    return {
        path: path.stat().st_mtime_ns
        for path in REPO_ROOT.glob("BENCH_*.json")
    }


@pytest.fixture(autouse=True)
def record_bench_artifacts():
    """Opt-in run-store recording: when ``$REPRO_RUN_STORE`` is set,
    ingest every ``BENCH_*.json`` the test (re)wrote. Recording failures
    never fail the benchmark — the artifact on disk stays the source of
    truth."""
    store = resolve_run_store()
    if store is None:
        yield
        return
    before = _bench_artifact_mtimes()
    yield
    for path, mtime_ns in sorted(_bench_artifact_mtimes().items()):
        if before.get(path) == mtime_ns:
            continue
        try:
            store.record_bench(path, timestamp=time.time())
        except (ValueError, OSError):
            continue


def experiment_scale() -> str:
    return os.environ.get("REPRO_SCALE", "smoke")


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
