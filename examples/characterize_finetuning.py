"""Scenario: profile a fine-tuning step the way the paper's Section IV does.

Produces the Nsight-style stage / layer / kernel reports for Mixtral and
BlackMamba on a simulated A40, demonstrating the characterization
takeaways: MoE dominates, backward > forward, optimizer cost under full
fine-tuning, the memory-bound -> compute-bound transition.

Run:  python examples/characterize_finetuning.py
"""

from repro.gpu import A40, GPUSimulator
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from repro.profiling import ProfileReport, compare_traces

SEQ_LEN = 128


def profile_model(sim: GPUSimulator, cfg, batch: int, dense: bool) -> None:
    trace = sim.simulate_step(
        cfg, batch, SEQ_LEN, dense=dense,
        label=f"{cfg.name} {'dense' if dense else 'sparse'} bsz={batch}",
    )
    report = ProfileReport(trace)
    print(report.full_report())
    print()


def batch_transition(sim: GPUSimulator) -> None:
    print("=== Takeaway 5: memory-bound -> compute-bound as batch grows ===")
    print(f"{'batch':>5} {'SM% (tw)':>9} {'DRAM% (tw)':>11} {'queries/s':>10}")
    for batch in (1, 4, 10, 32):
        trace = sim.simulate_step(MIXTRAL_8X7B, batch, SEQ_LEN, dense=False)
        print(
            f"{batch:>5} {trace.time_weighted_sm('moe'):>9.0f} "
            f"{trace.time_weighted_dram('moe'):>11.0f} {trace.queries_per_second:>10.2f}"
        )
    print()


def sparse_dense_comparison(sim: GPUSimulator) -> None:
    print("=== Sparse vs dense at the same and at max batch sizes ===")
    traces = [
        sim.simulate_step(MIXTRAL_8X7B, 2, SEQ_LEN, dense=True, label="dense bsz=2"),
        sim.simulate_step(MIXTRAL_8X7B, 2, SEQ_LEN, dense=False, label="sparse bsz=2"),
        sim.simulate_step(MIXTRAL_8X7B, 8, SEQ_LEN, dense=False, label="sparse bsz=8 (max-ish)"),
    ]
    print(compare_traces(traces))
    print()


def main() -> None:
    sim = GPUSimulator(A40)
    profile_model(sim, MIXTRAL_8X7B, batch=10, dense=False)
    profile_model(sim, BLACKMAMBA_2_8B, batch=1, dense=False)
    batch_transition(sim)
    sparse_dense_comparison(sim)


if __name__ == "__main__":
    main()
