"""Scenario: budget a domain fine-tune of Mixtral for an enterprise corpus.

The paper's introduction motivates fine-tuning for specialized question
answering (legal drafting, healthcare, IT support). This example plans
such a job end to end:

1. sweep candidate GPUs and providers;
2. compare sparse vs dense fine-tuning budgets (Takeaway 4 in dollars);
3. project the OpenOrca-scale (2M queries) cost the paper reports as $3460.

Run:  python examples/estimate_enterprise_cost.py
"""

from repro.cloud import DEFAULT_CATALOG, GPUPrice, PriceCatalog
from repro.core import FineTuningCostModel, dataset_num_queries
from repro.gpu import A40, A100_80, H100
from repro.models import MIXTRAL_8X7B

EPOCHS = 10


def sparse_vs_dense() -> None:
    print("=== Sparse vs dense fine-tuning budget (CS-15k corpus, A100-80GB) ===")
    for dense in (False, True):
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "commonsense15k", dense=dense)
        estimate = model.estimate(A100_80, num_queries=15000, epochs=EPOCHS)
        mode = "dense (all 8 experts)" if dense else "sparse (top-2 of 8)"
        print(
            f"  {mode:<24} batch={estimate.max_batch_size:<3} "
            f"{estimate.throughput_qps:5.2f} q/s  ${estimate.dollars:8.1f}"
        )
    print("  -> the paper's Takeaway 4: sparse MoE cuts the end-to-end cost\n")


def provider_comparison() -> None:
    print("=== Same job, different cloud providers (H100, MATH-14k) ===")
    catalog = PriceCatalog(
        [
            DEFAULT_CATALOG.price("H100-80GB", "cudo"),
            DEFAULT_CATALOG.price("H100-80GB", "lambda"),
            GPUPrice("H100-80GB", "hyperscaler", 4.50),  # on-demand list price
        ]
    )
    model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "math14k", dense=False, catalog=catalog)
    for provider in ("cudo", "lambda", "hyperscaler"):
        estimate = model.estimate(H100, num_queries=14000, epochs=EPOCHS, provider=provider)
        print(f"  {provider:<12} ${estimate.dollars_per_hour:>5.2f}/h  -> ${estimate.dollars:8.1f}")
    print()


def openorca_projection() -> None:
    print("=== Enterprise-scale corpus: OpenOrca (2M queries) ===")
    model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "openorca", dense=False)
    queries = dataset_num_queries("openorca")
    for gpu in (A40, A100_80, H100):
        try:
            estimate = model.estimate(gpu, num_queries=queries, epochs=EPOCHS)
        except ValueError as error:
            print(f"  {gpu.name:<12} {error}")
            continue
        print(
            f"  {gpu.name:<12} batch={estimate.max_batch_size:<3} "
            f"{estimate.throughput_qps:5.2f} q/s  {estimate.hours:7.0f} h  "
            f"${estimate.dollars:9.0f}"
        )
    print("  (paper: H100 is the most cost-effective at a net cost of $3460)")


def main() -> None:
    sparse_vs_dense()
    provider_comparison()
    openorca_projection()


if __name__ == "__main__":
    main()
