"""Scenario: actually fine-tune a (tiny) MoE model and watch it learn.

End-to-end run of the real training substrate — the paper's Fig. 3 and
Fig. 11 pipeline in miniature:

1. pre-train a tiny Mixtral on a shadow-world corpus (balanced routers);
2. convert to QLoRA (NF4-quantize MoE weights, attach rank-16 adapters);
3. fine-tune sparse (top-2 of 8) on the commonsense corpus;
4. evaluate 4-way multiple choice accuracy every epoch;
5. measure expert load imbalance before and after.

Run:  python examples/finetune_tiny_moe.py      (~1-2 minutes, CPU only)
"""

import numpy as np

from repro.data import build_benchmark_suite, build_pretraining_corpus
from repro.models import MIXTRAL_TINY, MixtralModel, convert_to_qlora
from repro.training import (
    FineTuner,
    evaluate,
    measure_load_distribution,
    pretrain_language_model,
)

EPOCHS = 6


def main() -> None:
    suite = build_benchmark_suite(train_size=600, eval_size=80, length_scale=0.2)
    corpus = build_pretraining_corpus(suite.vocab, size=800)
    rng = np.random.default_rng(42)

    print("1) pre-training a tiny Mixtral (structural LM, balanced routers)...")
    model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
    model.set_sparsity(dense=False)
    loss = pretrain_language_model(model, corpus, steps=300, batch_size=16, learning_rate=3e-3)
    print(f"   pre-train loss: {loss:.3f}")

    pre_acc = evaluate(model, suite.hellaswag, limit=80)
    pre_load = measure_load_distribution(model, suite.commonsense15k, num_queries=150)
    print(f"   pre-fine-tune accuracy: {pre_acc:.3f} (4-way chance = 0.25)")

    print("2) converting to QLoRA (NF4 MoE weights + rank-16 adapters)...")
    convert_to_qlora(model, rng=rng)
    model.gradient_checkpointing = False  # numpy substrate: speed over memory
    trainable = model.num_parameters(trainable_only=True)
    total = model.num_parameters()
    print(f"   trainable params: {trainable:,} of {total:,} ({100 * trainable / total:.1f}%)")

    print(f"3) fine-tuning sparse (top-2 of 8 experts) for {EPOCHS} epochs...")
    tuner = FineTuner(model, suite.commonsense15k, batch_size=16, learning_rate=8e-3, seed=0)
    tuner.train(
        num_epochs=EPOCHS,
        eval_fn=lambda: evaluate(model, suite.hellaswag, limit=80),
        verbose=True,
    )

    post_load = measure_load_distribution(model, suite.commonsense15k, num_queries=150)
    print("4) expert load distribution (percent of routed tokens):")
    pre_shares = 100 * pre_load.normalized_shares
    post_shares = 100 * post_load.normalized_shares
    print("   expert:      " + " ".join(f"{i:>5d}" for i in range(8)))
    print("   pre-tune:    " + " ".join(f"{s:5.1f}" for s in pre_shares))
    print("   post-tune:   " + " ".join(f"{s:5.1f}" for s in post_shares))
    print(
        f"   share variance: {np.var(pre_shares):.1f} -> {np.var(post_shares):.1f} "
        "(the paper's Fig. 11 tracks exactly this drift; its direction is "
        "model- and dataset-dependent — Takeaway 6)"
    )


if __name__ == "__main__":
    main()
