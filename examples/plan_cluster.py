"""Scenario: plan a multi-GPU fine-tune before renting a single GPU.

The paper's cost model answers "what will this fine-tune cost?" for one
GPU; the cluster subsystem answers it for fleets. This example plans the
Table IV workload (Mixtral sparse on MATH-14k x 10 epochs) three ways:

1. the unconstrained Pareto frontier — every configuration where going
   faster necessarily costs more;
2. a deadline-driven plan — the cheapest cluster that finishes overnight;
3. the interconnect tax — what PCIe costs a full-fine-tune workload that
   a QLoRA workload never pays;
4. the tensor-parallel rescue — a cell that fits no single device
   (dense Mixtral at the HellaSwag padded length) is skipped by the pure
   data-parallel sweep and *priced* by ``parallelism="auto"``, which
   shards it across a TP group (the library form of
   ``python -m repro.cluster.plan --parallelism auto --max-tp 8``);
5. a persistent trace store — the second plan *process* starts warm and
   simulates nothing (the library form of the CLIs' ``--cache-dir`` /
   ``$REPRO_CACHE_DIR`` flag, e.g.
   ``python -m repro.cluster.plan --model mixtral --cache-dir ~/.cache/repro-traces``).

Run:  python examples/plan_cluster.py
"""

import tempfile

from repro.cluster import ClusterPlanner
from repro.gpu import A40, H100, NVLINK, PCIE_GEN4
from repro.scenarios import DiskTraceStore, SimulationCache, default_cache


def pareto_frontier() -> None:
    print("=== Pareto frontier: Mixtral sparse, MATH-14k x 10 epochs ===")
    planner = ClusterPlanner("mixtral-8x7b", dataset="math14k")
    plan = planner.plan(gpus=(A40, H100), providers=("cudo",), densities=(False,))
    for candidate in plan.frontier:
        print(
            f"  {candidate.label:<46} {candidate.hours:7.2f} h  ${candidate.dollars:7.2f}"
        )
    print("  -> every other configuration is slower AND more expensive\n")


def overnight_deadline() -> None:
    print("=== Cheapest cluster that finishes overnight (12 h) ===")
    planner = ClusterPlanner("mixtral-8x7b", dataset="math14k")
    plan = planner.plan(providers=("cudo",), densities=(False,), deadline_hours=12.0)
    assert plan.cheapest is not None
    print(f"  recommendation: {plan.cheapest.label}")
    print(
        f"  {plan.cheapest.scenario.num_gpus}x {plan.cheapest.scenario.gpu_spec.name} "
        f"-> {plan.cheapest.hours:.2f} h for ${plan.cheapest.dollars:.2f}"
    )
    single = min((c for c in plan.candidates if c.scenario.num_gpus == 1),
                 key=lambda c: c.hours)
    print(f"  (the best single GPU would take {single.hours:.2f} h)\n")


def interconnect_tax() -> None:
    print("=== The interconnect tax: QLoRA vs full fine-tuning at 8 GPUs ===")
    for model, recipe in (("mixtral-8x7b", "QLoRA adapters"),
                          ("blackmamba-2.8b", "full fine-tune")):
        planner = ClusterPlanner(model, dataset="math14k")
        plan = planner.plan(gpus=(A40,), providers=("cudo",), densities=(False,),
                            num_gpus=(8,), interconnects=(NVLINK, PCIE_GEN4))
        by_link = {c.scenario.interconnect_spec.name: c for c in plan.candidates}
        nv, pcie = by_link["NVLink"], by_link["PCIe-Gen4"]
        print(
            f"  {recipe:<16} NVLink eff {nv.estimate.scaling_efficiency:5.3f}  "
            f"PCIe eff {pcie.estimate.scaling_efficiency:5.3f}  "
            f"PCIe premium ${pcie.dollars - nv.dollars:6.2f}"
        )
    print("  -> Takeaway: adapter-only sync makes QLoRA interconnect-insensitive\n")


def tensor_parallel_rescue() -> None:
    print("=== Tensor parallelism prices what data parallelism must skip ===")
    planner = ClusterPlanner("mixtral-8x7b", dataset="hellaswag")
    cell = dict(gpus=(A40,), providers=("cudo",), densities=(True,))
    dp = planner.plan(parallelism="dp", **cell)
    print(f"  dp:   {len(dp.candidates)} candidates — {dp.skipped[0]}")
    auto = planner.plan(parallelism="auto", **cell, grad_accums=(1, 4))
    assert auto.cheapest is not None
    best = auto.cheapest
    print(f"  auto: {len(auto.candidates)} candidates; cheapest {best.label}")
    print(
        f"        tp{best.scenario.tensor_parallel} x "
        f"dp{best.scenario.strategy_spec.data_parallel_ways(best.scenario.num_gpus)}"
        f" shards the weights into fitting -> "
        f"{best.hours:.2f} h for ${best.dollars:.2f}"
    )
    print("  -> unfittable cells are now planner candidates, not skip reasons\n")


def warm_start_from_disk() -> None:
    print("=== Persistent trace store: plans that start warm ===")
    with tempfile.TemporaryDirectory() as cache_dir:
        # First process: cold — simulates, and populates the store.
        cold_cache = SimulationCache(store=DiskTraceStore(cache_dir))
        ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cold_cache).plan(
            providers=("cudo",), densities=(False,)
        )
        print(f"  cold plan:  {cold_cache.stats().simulations} simulations")
        # Second process (fresh cache, same dir): warm from disk alone.
        warm_cache = SimulationCache(store=DiskTraceStore(cache_dir))
        ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=warm_cache).plan(
            providers=("cudo",), densities=(False,)
        )
        stats = warm_cache.stats()
        print(f"  warm plan:  {stats.simulations} simulations "
              f"({stats.disk_hits} traces loaded from disk)")
    print("  -> point --cache-dir (or $REPRO_CACHE_DIR) at a real directory\n")


if __name__ == "__main__":
    pareto_frontier()
    overnight_deadline()
    interconnect_tax()
    tensor_parallel_rescue()
    warm_start_from_disk()
    stats = default_cache().stats()
    print(f"(scenario cache: {stats.hits} hits / {stats.misses} misses — "
          f"every cluster size reused its replica's trace)")
