"""Scenario: serve "what will this fine-tune cost?" as an API.

The plan CLIs answer one question per process; a product answering it
for many users wants a persistent service where the *first* request
pays for simulation and everyone after rides the shared warm cache.
This example boots the real HTTP server in-process (ephemeral port) and
walks the three serving behaviors:

1. cold vs warm — the second identical request simulates nothing;
2. request coalescing — a burst of identical requests computes once
   and everyone receives byte-identical plans;
3. the /stats ledger — where the time went, per the service itself.

Run:  python examples/plan_service.py
"""

import json
import threading
import time
import urllib.request

from repro.service import PlanningService
from repro.service.serve import make_server

BODY = {"model": "mixtral", "gpu": ["a40"], "deadline_hours": 24}


def post(base: str, path: str, body: dict) -> dict:
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.loads(response.read())


def cold_then_warm(base: str) -> None:
    print("=== Cold request, then the warm repeat ===")
    start = time.perf_counter()
    cold = post(base, "/plan/cluster", BODY)
    cold_ms = (time.perf_counter() - start) * 1000
    start = time.perf_counter()
    warm = post(base, "/plan/cluster", BODY)
    warm_ms = (time.perf_counter() - start) * 1000
    best = cold["plan"]["cheapest"]
    print(f"  cheapest: {best['label']} — ${best['dollars']:.2f} "
          f"in {best['hours']:.2f} h")
    print(f"  cold: {cold_ms:7.1f} ms, {cold['engine']['simulations']} simulations")
    print(f"  warm: {warm_ms:7.1f} ms, {warm['engine']['simulations']} simulations "
          f"({warm['engine']['hits']} cache hits)")
    assert warm["plan"] == cold["plan"]
    print("  -> identical plan, zero re-simulation\n")


def coalesced_burst(base: str, service: PlanningService) -> None:
    print("=== Eight identical spot requests at once ===")
    body = {"model": "mixtral", "deadline_hours": 24}  # full sweep: seconds cold
    responses = [None] * 8
    barrier = threading.Barrier(8)

    def worker(i: int) -> None:
        barrier.wait()
        responses[i] = json.dumps(post(base, "/plan/spot", body), sort_keys=True)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
    before = service.flight.stats()
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    seconds = time.perf_counter() - start
    after = service.flight.stats()
    flight = {key: after[key] - before[key] for key in ("leaders", "shared")}
    print(f"  burst served in {seconds:.2f} s: {flight['leaders']} "
          f"computation(s), {flight['shared']} coalesced, "
          f"{len(set(responses))} distinct response(s)")
    print(f"  -> {flight['shared']} of 8 rode along on an in-flight "
          "computation instead of queueing behind it\n")


def stats_ledger(base: str) -> None:
    print("=== The /stats ledger ===")
    stats = get(base, "/stats")
    requests, cache = stats["requests"], stats["cache"]
    print(f"  requests: {requests['total']} total, "
          f"{requests['coalesced']} coalesced, {requests['errors']} errors")
    print(f"  cache:    {cache['simulations']} simulations, {cache['hits']} hits, "
          f"{cache['entries']} resident traces (capacity "
          f"{cache['capacity'] or 'unbounded'})")
    print(f"  pricing:  {stats['pricing']['source']}, "
          f"stale={stats['pricing']['stale']}")


if __name__ == "__main__":
    service = PlanningService()
    server = make_server(service, port=0)
    host, port = server.server_address[:2]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://{host}:{port}"
    print(f"serving on {base}\n")
    try:
        cold_then_warm(base)
        coalesced_burst(base, service)
        stats_ledger(base)
    finally:
        server.shutdown()
        server.server_close()
