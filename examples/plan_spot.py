"""Scenario: decide between spot and on-demand before renting anything.

The cluster planner (examples/plan_cluster.py) prices uninterrupted
on-demand capacity; spot instances are ~50% cheaper but get preempted.
This example answers the three questions a budget owner actually asks:

1. how much does spot save *after* accounting for lost work, restarts
   and checkpoint writes — the risk-adjusted frontier;
2. can I still promise a deadline? — the cheapest configuration with a
   >= 95% probability of finishing in 24 hours;
3. when does spot stop being worth it? — sweeping the preemption rate
   until the discount drowns in overhead;
4. can the cheap answer be trusted? — the analytic serving path against
   its Monte Carlo validation run ("analytic serves, MC validates").

Percentiles and completion probabilities come from the closed-form
``AnalyticMakespanDistribution`` by default (risk_mode="analytic", no
sampling); ``risk_mode="mc"`` swaps in the batched Monte Carlo.

Run:  python examples/plan_spot.py
"""

from repro.gpu import A40
from repro.scenarios import default_cache
from repro.spot import SPOT, RiskAdjustedPlanner


def risk_adjusted_frontier() -> None:
    print("=== Risk-adjusted frontier: Mixtral sparse, MATH-14k x 10 epochs ===")
    planner = RiskAdjustedPlanner("mixtral-8x7b", dataset="math14k")
    plan = planner.plan_spot(gpus=(A40,), providers=("runpod",), densities=(False,))
    print(f"  {'configuration':<52} {'E[h]':>7} {'p95 h':>7} {'E[$]':>8}")
    for c in plan.frontier:
        print(
            f"  {c.label:<52} {c.expected_hours:>7.2f} {c.p95_hours:>7.2f} "
            f"{c.expected_dollars:>8.2f}"
        )
    print("  -> on-demand buys a tight p95; spot buys expected dollars\n")


def deadline_with_confidence() -> None:
    print("=== Cheapest plan with >= 95% chance of finishing in 24 h ===")
    planner = RiskAdjustedPlanner("mixtral-8x7b", dataset="math14k")
    plan = planner.plan_spot(
        gpus=(A40,), providers=("runpod",), densities=(False,),
        deadline_hours=24.0, confidence=0.95,
    )
    assert plan.recommended is not None
    rec = plan.recommended
    print(f"  recommendation: {rec.label}")
    print(
        f"  E[${rec.expected_dollars:.2f}] in E[{rec.expected_hours:.2f} h] "
        f"(p95 {rec.p95_hours:.2f} h, P(on time) {rec.completion_probability:.3f})"
    )
    if rec.tier == SPOT:
        print(
            f"  expected saving vs the same cluster on demand: "
            f"${rec.expected_savings:.2f}, surviving "
            f"~{rec.expected_preemptions:.1f} preemptions "
            f"(checkpoint every {rec.policy.interval_minutes:g} min)"
        )
    print()


def when_spot_stops_paying() -> None:
    print("=== How hostile must the market get before spot loses? ===")
    for mtbp in (8.0, 1.0, 0.25, 0.05):
        planner = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="math14k", mtbp_hours=mtbp
        )
        plan = planner.plan_spot(
            gpus=(A40,), providers=("runpod",), densities=(False,), num_gpus=(4,),
        )
        spot = [c for c in plan.candidates if c.tier == SPOT]
        if spot:
            best = min(spot, key=lambda c: c.expected_dollars)
            print(
                f"  mtbp {mtbp:>5.2f} h: spot E[${best.expected_dollars:6.2f}] vs "
                f"on-demand ${best.ondemand_dollars:6.2f} "
                f"({best.expected_preemptions:6.1f} preemptions)"
            )
        else:
            print(
                f"  mtbp {mtbp:>5.2f} h: spot excluded — "
                f"{plan.excluded[0] if plan.excluded else 'no spot tier'}"
            )
    print("  -> the planner drops spot the moment risk eats the discount\n")


def analytic_serves_mc_validates() -> None:
    print("=== Analytic serving path vs Monte Carlo validation ===")
    plans = {}
    for mode in ("analytic", "mc"):
        planner = RiskAdjustedPlanner(
            "mixtral-8x7b", dataset="math14k", risk_mode=mode
        )
        plans[mode] = planner.plan_spot(
            gpus=(A40,), providers=("runpod",), densities=(False,), num_gpus=(4,),
        )
    pairs = zip(plans["analytic"].spot_candidates, plans["mc"].spot_candidates)
    print(f"  {'configuration':<52} {'p95 analytic':>12} {'p95 mc':>8}")
    for ana, mc in pairs:
        print(f"  {ana.label:<52} {ana.p95_hours:>12.2f} {mc.p95_hours:>8.2f}")
    print("  -> closed form and 512-trial sampling agree; the plan ships the "
          "closed form\n")


if __name__ == "__main__":
    risk_adjusted_frontier()
    deadline_with_confidence()
    when_spot_stops_paying()
    analytic_serves_mc_validates()
    stats = default_cache().stats()
    print(f"(scenario cache: {stats.hits} hits / {stats.misses} misses — "
          f"the whole risk analysis re-simulated nothing)")
