"""Quickstart: how much does it cost to fine-tune Mixtral on your data?

Answers the paper's headline question in a dozen lines: given a dataset
size and a GPU, estimate max batch size, throughput, hours and dollars.
Then shows the scenario engine: declare a custom sweep as a grid, run it
through the shared simulation cache, and observe that rerunning the same
grid costs zero additional simulations.

Run:  python examples/quickstart.py
"""

from repro.core import FineTuningCostModel
from repro.gpu import A40, A100_80, H100
from repro.models import MIXTRAL_8X7B
from repro.scenarios import ScenarioGrid, SweepRunner, default_cache


def custom_sweep() -> None:
    """A custom grid + cached sweep: sparse vs dense Mixtral on the A40
    across batch sizes, at the CS dataset's median sequence length."""
    grid = ScenarioGrid.product(
        models=(MIXTRAL_8X7B,),
        gpus=(A40,),
        datasets=("commonsense15k",),
        dense=(True, False),
        batch_sizes=(1, 2, 4, 8),
    )
    runner = SweepRunner(jobs=4)  # worker threads; row order stays deterministic
    print(f"\nCustom sweep ({len(grid)} scenarios):")
    for point in runner.run(grid):
        print(f"  {point.label:<28} {point.queries_per_second:>6.2f} queries/s")
    before = default_cache().stats()
    runner.run(grid)  # rerun: every lookup is a cache hit
    after = default_cache().stats()
    print(f"Rerunning the sweep: +{after.hits - before.hits} hits, "
          f"+{after.misses - before.misses} simulations — warm sweeps are free.")


def main() -> None:
    # Sparse (top-2 of 8 experts) QLoRA fine-tuning on a MATH-14k-like
    # corpus — the configuration of the paper's Table IV.
    cost_model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)

    print("Fine-tuning Mixtral-8x7B (sparse QLoRA), 14k queries x 10 epochs\n")
    print(f"{'GPU':<12} {'max batch':>9} {'queries/s':>10} {'hours':>7} {'cost':>8}")
    for estimate in cost_model.rank_gpus([A40, A100_80, H100], num_queries=14000, epochs=10):
        print(
            f"{estimate.gpu_name:<12} {estimate.max_batch_size:>9} "
            f"{estimate.throughput_qps:>10.2f} {estimate.hours:>7.1f} "
            f"${estimate.dollars:>7.1f}"
        )
    print("\nPaper's Table IV: A40 $32.7, A100-80GB $25.4, H100 $17.9 — H100 wins.")
    custom_sweep()


if __name__ == "__main__":
    main()
