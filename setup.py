"""Setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 660 editable installs (``pip install -e .``) cannot build an
editable wheel. ``python setup.py develop --no-deps`` provides the
equivalent editable install using only setuptools.

The ``repro-lint`` console script fronts the contract linter and
``repro-serve`` the HTTP planning service; without an install,
``PYTHONPATH=src python -m repro.devtools.lint`` and
``PYTHONPATH=src python -m repro.service.serve`` are the equivalent
invocations.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro-lint = repro.devtools.lint:main",
            "repro-serve = repro.service.serve:main",
        ]
    },
)
