"""repro — reproduction of "Understanding the Performance and Estimating the
Cost of LLM Fine-Tuning" (IISWC 2024, arXiv:2408.04693).

The package is organized as a set of substrates (autograd engine, layer
library, quantizer, model zoo, dataset generators, GPU simulator, memory
estimator, profiler, cloud pricing) underneath the paper's primary
contribution, the analytical fine-tuning cost model in :mod:`repro.core`.

Quickstart::

    from repro.core import FineTuningCostModel
    from repro.gpu import GPU_REGISTRY
    from repro.models import MIXTRAL_8X7B

    model = FineTuningCostModel.calibrated(MIXTRAL_8X7B, dataset="math14k")
    estimate = model.estimate(gpu=GPU_REGISTRY["H100-80GB"], epochs=10)
    print(estimate.dollars, estimate.hours)
"""

__version__ = "1.0.0"
