"""Cloud pricing substrate (S12)."""

from .pricing import DEFAULT_CATALOG, PAYLOAD_VERSION, GPUPrice, PriceCatalog

__all__ = ["DEFAULT_CATALOG", "GPUPrice", "PAYLOAD_VERSION", "PriceCatalog"]
