"""Cloud pricing substrate (S12)."""

from .pricing import DEFAULT_CATALOG, GPUPrice, PriceCatalog

__all__ = ["DEFAULT_CATALOG", "GPUPrice", "PriceCatalog"]
