"""Cloud GPU rental pricing.

The paper prices GPU hours from CUDO Compute because, at the time, other
major clouds did not list the A40. The catalog structure supports
additional providers; prices are inputs to the cost model, not results.
Table IV's printed rates: A40 $0.79/h, A100-80GB $1.67/h, H100 $2.10/h.

Two price tiers per (provider, GPU) pair:

* **on-demand** — uninterrupted capacity, the tier the paper's Eq. 2
  assumes. All the original lookup APIs (``price``, ``dollars_per_hour``,
  ``providers_for``, ``gpus``) read this tier, so pre-spot callers are
  unchanged.
* **spot** — discounted preemptible capacity. Spot listings are reached
  through the explicit ``spot_*`` APIs; the interruption hazard that
  makes the discount risky lives in :mod:`repro.spot.market`, not here —
  prices are market quotes, risk is a model.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

#: Version of the JSON interchange layout (:meth:`PriceCatalog.to_payload`).
#: Bump on any structural change so a feed emitting the old shape is
#: rejected loudly instead of half-parsed.
PAYLOAD_VERSION = 1


@dataclass(frozen=True)
class GPUPrice:
    """Hourly rental price of one GPU model at one provider."""

    gpu_name: str
    provider: str
    dollars_per_hour: float

    def __post_init__(self) -> None:
        if self.dollars_per_hour <= 0:
            raise ValueError(f"price must be positive, got {self.dollars_per_hour}")


class PriceCatalog:
    """Provider -> GPU -> hourly price lookup, with an optional spot tier."""

    def __init__(
        self,
        prices: Iterable[GPUPrice],
        spot_prices: Iterable[GPUPrice] = (),
    ) -> None:
        self._prices: Dict[Tuple[str, str], GPUPrice] = {}
        for price in prices:
            self._prices[(price.provider, price.gpu_name)] = price
        self._spot_prices: Dict[Tuple[str, str], GPUPrice] = {}
        for price in spot_prices:
            self.add_spot(price)

    def price(self, gpu_name: str, provider: str = "cudo") -> GPUPrice:
        key = (provider, gpu_name)
        if key not in self._prices:
            available = sorted(f"{p}/{g}" for p, g in self._prices)
            raise KeyError(f"no price for {provider}/{gpu_name}; available: {available}")
        return self._prices[key]

    def dollars_per_hour(self, gpu_name: str, provider: str = "cudo") -> float:
        return self.price(gpu_name, provider).dollars_per_hour

    def providers(self) -> List[str]:
        return sorted({p for p, _g in self._prices})

    def gpus(self, provider: str = "cudo") -> List[str]:
        return sorted(g for p, g in self._prices if p == provider)

    def providers_for(self, gpu_name: str) -> List[str]:
        """Providers renting ``gpu_name`` on demand, sorted for
        deterministic iteration (the cluster planner sweeps these). Spot
        listings do not appear here — a spot quote without on-demand
        capacity is not a plannable baseline."""
        return sorted(p for p, g in self._prices if g == gpu_name)

    def add(self, price: GPUPrice) -> None:
        """Register (or update) an on-demand listing. An existing spot
        listing for the pair must stay at or below the new on-demand
        price — the same discount-tier invariant ``add_spot`` enforces
        from the other side."""
        key = (price.provider, price.gpu_name)
        spot = self._spot_prices.get(key)
        if spot is not None and spot.dollars_per_hour > price.dollars_per_hour:
            raise ValueError(
                f"on-demand price ${price.dollars_per_hour}/h for "
                f"{price.provider}/{price.gpu_name} undercuts the existing spot "
                f"${spot.dollars_per_hour}/h"
            )
        self._prices[key] = price

    # ------------------------------------------------------------------
    # Spot tier
    # ------------------------------------------------------------------
    def add_spot(self, price: GPUPrice) -> None:
        """Register a spot listing. When the same (provider, GPU) pair has
        an on-demand price, the spot quote must not exceed it — spot is a
        discount tier, and the risk planner's "spot is excluded unless its
        expected cost beats on-demand" invariant builds on that."""
        key = (price.provider, price.gpu_name)
        ondemand = self._prices.get(key)
        if ondemand is not None and price.dollars_per_hour > ondemand.dollars_per_hour:
            raise ValueError(
                f"spot price ${price.dollars_per_hour}/h for "
                f"{price.provider}/{price.gpu_name} exceeds the on-demand "
                f"${ondemand.dollars_per_hour}/h"
            )
        self._spot_prices[key] = price

    def has_spot(self, gpu_name: str, provider: str = "cudo") -> bool:
        return (provider, gpu_name) in self._spot_prices

    def spot_price_for(self, gpu_name: str, provider: str = "cudo") -> GPUPrice:
        key = (provider, gpu_name)
        if key not in self._spot_prices:
            available = sorted(f"{p}/{g}" for p, g in self._spot_prices)
            raise KeyError(
                f"no spot price for {provider}/{gpu_name}; available: {available}"
            )
        return self._spot_prices[key]

    def spot_dollars_per_hour(self, gpu_name: str, provider: str = "cudo") -> float:
        return self.spot_price_for(gpu_name, provider).dollars_per_hour

    def spot_providers_for(self, gpu_name: str) -> List[str]:
        """Providers with a spot listing for ``gpu_name``, sorted."""
        return sorted(p for p, g in self._spot_prices if g == gpu_name)

    def spot_discount(self, gpu_name: str, provider: str = "cudo") -> float:
        """Spot price as a fraction of on-demand (0.5 = half price)."""
        return self.spot_dollars_per_hour(gpu_name, provider) / self.dollars_per_hour(
            gpu_name, provider
        )

    # ------------------------------------------------------------------
    # JSON interchange — what a live pricing feed speaks
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """The catalog as a JSON-safe dict: versioned, with both tiers'
        listings in sorted (provider, gpu) order so equal catalogs
        serialize to equal bytes (which is what :meth:`digest` hashes)."""

        def tier(prices: Dict[Tuple[str, str], GPUPrice]) -> List[Dict[str, object]]:
            return [
                {
                    "gpu": price.gpu_name,
                    "provider": price.provider,
                    "dollars_per_hour": price.dollars_per_hour,
                }
                for _key, price in sorted(prices.items())
            ]

        return {
            "version": PAYLOAD_VERSION,
            "prices": tier(self._prices),
            "spot_prices": tier(self._spot_prices),
        }

    @classmethod
    def from_payload(cls, payload: object) -> "PriceCatalog":
        """Parse a feed payload back into a catalog. Malformed payloads
        (wrong version, missing keys, non-numeric prices, spot quotes
        above on-demand) raise ``ValueError`` — a feed that cannot be
        parsed must read as "refresh failed", never as a partial or
        silently-empty catalog."""
        if not isinstance(payload, dict):
            raise ValueError(f"pricing payload must be an object, got {type(payload).__name__}")
        version = payload.get("version")
        if version != PAYLOAD_VERSION:
            raise ValueError(f"unsupported pricing payload version {version!r}")

        def tier(name: str) -> List[GPUPrice]:
            entries = payload.get(name, [])
            if not isinstance(entries, list):
                raise ValueError(f"pricing payload {name!r} must be a list")
            prices = []
            for index, entry in enumerate(entries):
                if not isinstance(entry, dict):
                    raise ValueError(f"{name}[{index}] must be an object")
                try:
                    prices.append(
                        GPUPrice(
                            gpu_name=str(entry["gpu"]),
                            provider=str(entry["provider"]),
                            dollars_per_hour=float(entry["dollars_per_hour"]),
                        )
                    )
                except (KeyError, TypeError, ValueError) as exc:
                    raise ValueError(f"{name}[{index}] is malformed: {exc}") from exc
            return prices

        prices = tier("prices")
        spot_prices = tier("spot_prices")
        try:
            return cls(prices, spot_prices=spot_prices)
        except ValueError as exc:
            # add_spot's discount-tier invariant, re-tagged as a payload error
            raise ValueError(f"pricing payload violates catalog invariants: {exc}") from exc

    def digest(self) -> str:
        """sha256 over the canonical payload JSON — one stable identity
        for "which prices produced this plan", used by the planning
        service's request digest so a price refresh correctly splits
        otherwise-identical requests into distinct coalescing keys."""
        text = json.dumps(self.to_payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("ascii")).hexdigest()


DEFAULT_CATALOG = PriceCatalog(
    [
        # CUDO Compute rates as printed in the paper's Table IV.
        GPUPrice("A40", "cudo", 0.79),
        GPUPrice("A100-80GB", "cudo", 1.67),
        GPUPrice("H100-80GB", "cudo", 2.10),
        # A100-40GB is not in Table IV; contemporary CUDO listing.
        GPUPrice("A100-40GB", "cudo", 1.29),
        # Representative on-demand rates for alternative providers, to
        # demonstrate the paper's "easily adjust the renting cost" claim
        # and give the cluster planner a real provider axis.
        GPUPrice("A100-80GB", "lambda", 1.79),
        GPUPrice("H100-80GB", "lambda", 2.49),
        GPUPrice("A40", "runpod", 0.44),
        GPUPrice("A100-80GB", "runpod", 1.59),
    ],
    spot_prices=[
        # Representative preemptible discounts (~50% of on-demand for the
        # reserved-capacity providers, deeper on the community cloud).
        # Lambda lists no spot tier, which exercises the has_spot() miss
        # path in the risk planner.
        GPUPrice("A40", "cudo", 0.40),
        GPUPrice("A100-80GB", "cudo", 0.84),
        GPUPrice("H100-80GB", "cudo", 1.05),
        GPUPrice("A100-40GB", "cudo", 0.65),
        GPUPrice("A40", "runpod", 0.22),
        GPUPrice("A100-80GB", "runpod", 0.80),
    ],
)
