"""Cloud GPU rental pricing.

The paper prices GPU hours from CUDO Compute because, at the time, other
major clouds did not list the A40. The catalog structure supports
additional providers; prices are inputs to the cost model, not results.
Table IV's printed rates: A40 $0.79/h, A100-80GB $1.67/h, H100 $2.10/h.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple


@dataclass(frozen=True)
class GPUPrice:
    """Hourly rental price of one GPU model at one provider."""

    gpu_name: str
    provider: str
    dollars_per_hour: float

    def __post_init__(self) -> None:
        if self.dollars_per_hour <= 0:
            raise ValueError(f"price must be positive, got {self.dollars_per_hour}")


class PriceCatalog:
    """Provider -> GPU -> hourly price lookup."""

    def __init__(self, prices: Iterable[GPUPrice]) -> None:
        self._prices: Dict[Tuple[str, str], GPUPrice] = {}
        for price in prices:
            self._prices[(price.provider, price.gpu_name)] = price

    def price(self, gpu_name: str, provider: str = "cudo") -> GPUPrice:
        key = (provider, gpu_name)
        if key not in self._prices:
            available = sorted(f"{p}/{g}" for p, g in self._prices)
            raise KeyError(f"no price for {provider}/{gpu_name}; available: {available}")
        return self._prices[key]

    def dollars_per_hour(self, gpu_name: str, provider: str = "cudo") -> float:
        return self.price(gpu_name, provider).dollars_per_hour

    def providers(self) -> List[str]:
        return sorted({p for p, _g in self._prices})

    def gpus(self, provider: str = "cudo") -> List[str]:
        return sorted(g for p, g in self._prices if p == provider)

    def providers_for(self, gpu_name: str) -> List[str]:
        """Providers renting ``gpu_name``, sorted for deterministic
        iteration (the cluster planner sweeps these)."""
        return sorted(p for p, g in self._prices if g == gpu_name)

    def add(self, price: GPUPrice) -> None:
        self._prices[(price.provider, price.gpu_name)] = price


DEFAULT_CATALOG = PriceCatalog(
    [
        # CUDO Compute rates as printed in the paper's Table IV.
        GPUPrice("A40", "cudo", 0.79),
        GPUPrice("A100-80GB", "cudo", 1.67),
        GPUPrice("H100-80GB", "cudo", 2.10),
        # A100-40GB is not in Table IV; contemporary CUDO listing.
        GPUPrice("A100-40GB", "cudo", 1.29),
        # Representative on-demand rates for alternative providers, to
        # demonstrate the paper's "easily adjust the renting cost" claim
        # and give the cluster planner a real provider axis.
        GPUPrice("A100-80GB", "lambda", 1.79),
        GPUPrice("H100-80GB", "lambda", 2.49),
        GPUPrice("A40", "runpod", 0.44),
        GPUPrice("A100-80GB", "runpod", 1.59),
    ]
)
