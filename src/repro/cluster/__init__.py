"""Cluster planning subsystem — multi-GPU scenarios on the scenario engine.

The paper leaves multi-GPU systems "for future exploration"; this package
explores them with the same machinery the single-GPU reproduction uses:

* :class:`ClusterScenario` — a frozen, hashable scenario extended with
  ``num_gpus`` and ``interconnect``. Its inherited cache key excludes both
  (the per-device step is identical on every replica), so the
  :class:`~repro.scenarios.cache.SimulationCache` shares one replica trace
  across all cluster sizes — scaling a sweep 1 -> 8 GPUs never
  re-simulates.
* :class:`ClusterPlanner` — sweeps GPUs x providers x cluster sizes x
  interconnects x densities, applies the data-parallel all-reduce model
  and the cost projections, and returns the Pareto frontier of
  (wall-clock, dollars) plus the cheapest/fastest configurations meeting
  a deadline and/or budget.
* ``python -m repro.cluster.plan`` — the pre-hoc "what will this
  fine-tune cost?" CLI, with ``--json``/``--jobs`` mirroring the report
  runner.
"""

from ..scenarios import ScenarioGrid, register_preset
from .planner import (
    ClusterCandidate,
    ClusterPlan,
    ClusterPlanner,
    DEFAULT_INTERCONNECTS,
    DEFAULT_MAX_TP,
    DEFAULT_NUM_GPUS,
    PARALLELISM_MODES,
    pareto_frontier,
)
from .scenario import ClusterScenario, cluster_product

__all__ = [
    "ClusterCandidate",
    "ClusterPlan",
    "ClusterPlanner",
    "ClusterScenario",
    "DEFAULT_INTERCONNECTS",
    "DEFAULT_MAX_TP",
    "DEFAULT_NUM_GPUS",
    "PARALLELISM_MODES",
    "cluster_product",
    "pareto_frontier",
]


def _cluster_scaling_grid() -> ScenarioGrid:
    """The planner's default scaling sweep: Mixtral QLoRA vs BlackMamba
    full fine-tuning on the A40, both interconnects, 1-8 GPUs — the grid
    behind the subsystem's headline (adapter sync is near-free, full-model
    sync is not)."""
    from ..models.config import BLACKMAMBA_2_8B, MIXTRAL_8X7B

    return cluster_product(
        models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
        gpus=("A40",),
        batch_sizes=(4,),
        seq_lens=(128,),
        num_gpus=DEFAULT_NUM_GPUS,
        interconnects=DEFAULT_INTERCONNECTS,
    )


def _tensor_parallel_scaling_grid() -> ScenarioGrid:
    """The strategy layer's headline sweep: dense Mixtral at the
    HellaSwag padded length on the A40 — a cell pure data parallelism
    cannot fit at all — across the tensor-parallel degrees that shard it
    into fitting, both interconnects, pure TP and hybrid TP x DP. Every
    cluster size at one degree shares that degree's sharded trace, so
    the grid simulates one trace per TP degree."""
    from ..memory.estimator import EFFECTIVE_SEQ_LEN
    from ..models.config import MIXTRAL_8X7B

    return cluster_product(
        models=(MIXTRAL_8X7B,),
        gpus=("A40",),
        batch_sizes=(1,),
        seq_lens=(EFFECTIVE_SEQ_LEN["hellaswag"],),
        dense=(True,),
        num_gpus=DEFAULT_NUM_GPUS,
        interconnects=DEFAULT_INTERCONNECTS,
        strategies=("tp2", "tp4", "tp8"),
    )


# Idempotent across reloads, like the experiment presets.
register_preset("cluster-scaling", _cluster_scaling_grid, overwrite=True)
register_preset("tensor-parallel-scaling", _tensor_parallel_scaling_grid, overwrite=True)
