"""Plan a multi-GPU fine-tune: Pareto cost/time frontier from the CLI.

Usage::

    python -m repro.cluster.plan --model mixtral --gpu a40 --deadline-hours 24 --json
    python -m repro.cluster.plan --model blackmamba --budget 50
    python -m repro.cluster.plan --model mixtral --dataset openorca --jobs 4
    python -m repro.cluster.plan --model mixtral --density dense --gpu a40 \\
        --parallelism auto --max-tp 8 --grad-accum 1,4
    python -m repro.cluster.plan --model mixtral --cache-dir ~/.cache/repro-traces \\
        --executor process --jobs 4

Mirrors ``repro.experiments.report``: ``--json`` for machine-readable
output, ``--jobs``/``--executor`` for parallel sweeps (order-independent
by design — the plan is byte-identical at any job count and executor),
``--cache-dir`` (or ``$REPRO_CACHE_DIR``) for the disk-backed trace store
that lets a plan answer in seconds without re-simulating the world, and
the shared telemetry flags (``--telemetry``, ``--telemetry-out FILE``,
``--run-store DIR`` / ``$REPRO_RUN_STORE`` — the latter feeds
``python -m repro.telemetry.analyze``/``compare``). Model
and GPU names are resolved case-insensitively with unique-prefix
matching, so ``--model mixtral --gpu a40`` means the paper-scale Mixtral
on the A40.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..gpu.multigpu import INTERCONNECTS
from ..gpu.specs import GPU_REGISTRY
from ..models.registry import MODEL_REGISTRY
from ..scenarios import SimulationCache, resolve_store
from ..serialization import dumps
from ..telemetry import add_telemetry_arguments, begin_telemetry, finish_telemetry
from .planner import (
    DEFAULT_INTERCONNECTS,
    DEFAULT_MAX_TP,
    DEFAULT_NUM_GPUS,
    PARALLELISM_MODES,
    ClusterPlanner,
)

# Family shorthands resolve to the paper-scale configs (never the tiny
# training stand-ins, which share the family prefix).
MODEL_ALIASES = {
    "mixtral": "mixtral-8x7b",
    "blackmamba": "blackmamba-2.8b",
}


def _resolve(name: str, registry, kind: str, aliases=None) -> str:
    """Registry entry for ``name``: alias, exact (case-insensitive)
    match, or unique prefix — with an ambiguity/availability hint."""
    lowered = name.lower()
    if aliases and lowered in aliases:
        return aliases[lowered]
    table = {entry.lower(): entry for entry in registry}
    if lowered in table:
        return table[lowered]
    matches = sorted(entry for low, entry in table.items() if low.startswith(lowered))
    if len(matches) == 1:
        return matches[0]
    hint = f"ambiguous between {matches}" if matches else f"available: {sorted(registry)}"
    raise KeyError(f"unknown {kind} {name!r}; {hint}")


def resolve_model_key(name: str) -> str:
    """Model registry key: family alias ('mixtral'), exact key, or
    unique prefix."""
    return _resolve(name, MODEL_REGISTRY, "model", MODEL_ALIASES)


def resolve_gpu_name(name: str) -> str:
    """GPU registry name: exact or unique prefix, so ``a40`` and ``h100``
    work while ``a100`` demands a suffix."""
    return _resolve(name, GPU_REGISTRY, "GPU")


def _parse_positive_csv(values: List[str], convert, invalid: str, empty: str):
    """Repeatable comma-separated flag values as a deduped tuple of
    positive numbers (shared by ``--num-gpus`` here and the spot CLI's
    ``--checkpoint-minutes``). Conversion errors surface via
    ``parser.error`` in the callers' ``main``."""
    items = []
    for value in values:
        for part in value.split(","):
            if not part:
                continue
            item = convert(part)
            if not item > 0:  # also rejects NaN
                raise ValueError(invalid.format(item))
            items.append(item)
    if not items:
        raise ValueError(empty)
    return tuple(dict.fromkeys(items))  # dedupe, preserving order


def _parse_num_gpus(values: Optional[List[str]]) -> Sequence[int]:
    if not values:
        return DEFAULT_NUM_GPUS
    return _parse_positive_csv(
        values, int,
        "cluster sizes must be >= 1, got {}",
        "--num-gpus given but no cluster sizes parsed",
    )


def _parse_grad_accums(values: Optional[List[str]]) -> Sequence[int]:
    if not values:
        return (1,)
    return _parse_positive_csv(
        values, int,
        "gradient-accumulation depths must be >= 1, got {}",
        "--grad-accum given but no depths parsed",
    )


def validate_parallelism_args(args: argparse.Namespace) -> Sequence[int]:
    """Validate the shared parallelism flags and return the parsed
    gradient-accumulation depths (raises ``ValueError`` for
    ``parser.error`` in the callers' ``main``)."""
    if args.max_tp < 1:
        raise ValueError(f"--max-tp must be >= 1, got {args.max_tp}")
    if args.parallelism == "tp" and args.max_tp < 2:
        raise ValueError("--parallelism tp needs --max-tp >= 2")
    return _parse_grad_accums(args.grad_accum)


def add_parallelism_arguments(parser: argparse.ArgumentParser) -> None:
    """The parallelism-strategy knobs shared by the plan CLIs."""
    parser.add_argument("--parallelism", choices=PARALLELISM_MODES, default="dp",
                        help="layout axis: dp (full replicas, the classic sweep), "
                             "tp (tensor-parallel only), auto (both; cells that "
                             "fit no single device are priced at the TP degrees "
                             "that shard them into fitting) (default: dp)")
    parser.add_argument("--max-tp", type=int, default=DEFAULT_MAX_TP, metavar="N",
                        help="largest tensor-parallel degree to enumerate "
                             f"(powers of two; default: {DEFAULT_MAX_TP})")
    parser.add_argument("--grad-accum", action="append", metavar="K[,K...]",
                        help="gradient-accumulation depth(s) to sweep — trades "
                             "per-device micro-batch for global batch at fixed "
                             "memory (default: 1)")


def _parse_densities(density: str) -> Sequence[bool]:
    return {"sparse": (False,), "dense": (True,), "both": (False, True)}[density]


def resolve_plan_cache(cache_dir: Optional[str]) -> Optional[SimulationCache]:
    """A cache tiered onto the ``--cache-dir`` / ``$REPRO_CACHE_DIR``
    store, or ``None`` (the process-global default cache) when neither is
    set. Shared by the cluster and spot plan CLIs."""
    store = resolve_store(cache_dir)
    return SimulationCache(store=store) if store is not None else None


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The scenario-engine knobs every plan CLI exposes."""
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="sweep workers (plan output is identical at any "
                             "job count)")
    parser.add_argument("--executor", choices=("thread", "process"), default="thread",
                        help="sweep executor for --jobs > 1 (default: thread); "
                             "process workers share the --cache-dir store")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-backed trace store; a pre-populated store makes "
                             "the plan simulate nothing (default: $REPRO_CACHE_DIR "
                             "if set, else no persistence)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cluster.plan",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--model", required=True,
                        help="model to plan for (family alias like 'mixtral' or registry key)")
    parser.add_argument("--dataset", default="math14k",
                        help="dataset supplying seq_len and query count (default: math14k)")
    parser.add_argument("--gpu", action="append", metavar="NAME",
                        help="candidate GPU (repeatable; default: every priced GPU)")
    parser.add_argument("--provider", action="append", metavar="NAME",
                        help="cloud provider (repeatable; default: all in the catalog)")
    parser.add_argument("--num-gpus", action="append", metavar="N[,N...]",
                        help=f"cluster sizes to sweep (default: {','.join(map(str, DEFAULT_NUM_GPUS))})")
    parser.add_argument("--interconnect", action="append",
                        choices=sorted(INTERCONNECTS),
                        help="interconnect(s) to sweep (default: all)")
    parser.add_argument("--density", choices=("sparse", "dense", "both"), default="both",
                        help="expert routing(s) to sweep (default: both)")
    parser.add_argument("--batch-size", action="append", type=int, metavar="B",
                        help="explicit per-GPU batch size(s); default: per-cell memory maximum")
    add_parallelism_arguments(parser)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--num-queries", type=int, default=None,
                        help="override the dataset's query count")
    parser.add_argument("--seq-len", type=int, default=None,
                        help="override the dataset's padded sequence length")
    parser.add_argument("--deadline-hours", type=float, default=None,
                        help="wall-clock target the recommendation must meet")
    parser.add_argument("--budget", type=float, default=None, dest="budget_dollars",
                        help="dollar target the recommendation must meet")
    add_engine_arguments(parser)
    add_telemetry_arguments(parser)
    parser.add_argument("--top", type=int, default=10,
                        help="frontier rows in the text table (default: 10)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the plan as JSON instead of a table")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        model_key = resolve_model_key(args.model)
        gpus = [resolve_gpu_name(g) for g in args.gpu] if args.gpu else None
        num_gpus = _parse_num_gpus(args.num_gpus)
        grad_accums = validate_parallelism_args(args)
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    begin_telemetry(args)
    planner = ClusterPlanner(
        model_key,
        dataset=args.dataset,
        epochs=args.epochs,
        num_queries=args.num_queries,
        seq_len=args.seq_len,
        cache=resolve_plan_cache(args.cache_dir),
        jobs=args.jobs,
        executor=args.executor,
    )
    plan = planner.plan(
        gpus=gpus,
        providers=args.provider,
        num_gpus=num_gpus,
        interconnects=tuple(args.interconnect) if args.interconnect else DEFAULT_INTERCONNECTS,
        densities=_parse_densities(args.density),
        batch_sizes=tuple(args.batch_size) if args.batch_size else None,
        deadline_hours=args.deadline_hours,
        budget_dollars=args.budget_dollars,
        parallelism=args.parallelism,
        max_tp=args.max_tp,
        grad_accums=grad_accums,
    )
    block = finish_telemetry(
        args, "repro.cluster.plan", planner.cache, grid=planner.last_grid
    )
    if args.as_json:
        payload = plan.to_payload()
        if block is not None:
            payload["telemetry"] = block
        print(dumps(payload, indent=2))
    else:
        print(plan.to_table(top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
