"""Pareto cost/time planning over the cluster space.

The paper answers "what will this fine-tune cost?" for one GPU at a
time (Table IV); the planner answers it for clusters, *before any
training happens*: given a model, a dataset and a target (deadline
hours and/or budget dollars), it sweeps

    GPUs x providers x cluster sizes x interconnects x densities

through the scenario engine, applies the data-parallel all-reduce model
to each (cached) replica trace, prices the result against the provider
catalog, and returns

* every candidate, deterministically ordered;
* the Pareto frontier of (wall-clock hours, total dollars) — the
  configurations where going faster necessarily costs more;
* the cheapest and fastest configurations meeting the target.

Determinism: candidate construction is pure and ordering is by explicit
sort keys, so ``jobs > 1`` (which only parallelizes the trace sweep)
never changes a plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..cloud.pricing import DEFAULT_CATALOG, PriceCatalog
from ..core.cost import dataset_num_queries, wall_clock_hours
from ..gpu.multigpu import (
    Interconnect,
    MultiGPUEstimate,
    estimate_from_trace,
    get_interconnect,
)
from ..gpu.parallelism import (
    DataParallel,
    ParallelismStrategy,
    TensorParallel,
    tp_degrees,
)
from ..gpu.specs import GPU_REGISTRY, GPUSpec, get_gpu
from ..memory.estimator import EFFECTIVE_SEQ_LEN, max_batch_size
from ..models.registry import get_model_spec
from ..scenarios import ScenarioGrid, SimulationCache, SweepRunner, resolve_cache
from ..scenarios.scenario import ModelConfig
from ..telemetry.tracer import Tracer, resolve_tracer
from .scenario import ClusterScenario

DEFAULT_NUM_GPUS: Tuple[int, ...] = (1, 2, 4, 8)
DEFAULT_INTERCONNECTS: Tuple[str, ...] = ("nvlink", "pcie-gen4")

# --parallelism: how the planner lays candidates out on the hardware.
# "dp" is the pre-strategy behavior (full replicas only), "tp" forces
# tensor parallelism, "auto" enumerates both — including TP degrees for
# cells pure data parallelism cannot fit at all.
PARALLELISM_MODES: Tuple[str, ...] = ("dp", "tp", "auto")
DEFAULT_MAX_TP = 8


def strategy_payload(scenario: ClusterScenario) -> Dict[str, object]:
    """The parallelism keys a candidate dict carries — empty for the
    default data-parallel layout, so pre-strategy plan JSON stays
    byte-identical. Shared by the cluster and spot candidate dicts."""
    strategy = scenario.strategy_spec
    if strategy.is_default:
        return {}
    return {
        "parallelism": strategy.spec(),
        "tensor_parallel": strategy.tensor_parallel,
        "data_parallel": strategy.data_parallel_ways(scenario.num_gpus),
        "grad_accum": strategy.grad_accum,
    }


@dataclass(frozen=True)
class ClusterCandidate:
    """One priced point of the plan space: a cluster scenario at one
    provider, with its data-parallel estimate and cost projection."""

    scenario: ClusterScenario
    provider: str
    dollars_per_gpu_hour: float
    estimate: MultiGPUEstimate
    num_queries: int
    epochs: int

    @property
    def total_queries(self) -> int:
        return self.num_queries * self.epochs

    @cached_property
    def hours(self) -> float:
        # Cached: queries_per_second walks the kernel trace, and sorting,
        # dominance sweeps and the spot tier's exclusion arithmetic all
        # reread hours/dollars O(n log n) times per plan.
        return wall_clock_hours(self.total_queries, self.estimate.queries_per_second)

    @cached_property
    def dollars(self) -> float:
        return self.hours * self.dollars_per_gpu_hour * self.scenario.num_gpus

    @cached_property
    def label(self) -> str:
        # Cached (writes around the frozen dataclass into __dict__):
        # sorting, dominance sweeps and the spot planner's seeds all key
        # on the label, and rebuilding the tag string per comparison
        # dominated the warm plan's profile.
        return f"{self.scenario.label(include_gpu=True)}_{self.provider}"

    def meets(
        self,
        deadline_hours: Optional[float] = None,
        budget_dollars: Optional[float] = None,
    ) -> bool:
        if deadline_hours is not None and self.hours > deadline_hours:
            return False
        if budget_dollars is not None and self.dollars > budget_dollars:
            return False
        return True

    def sort_key(self) -> Tuple:
        """Deterministic total order: fast before slow, cheap before
        expensive, label as the final tie-break."""
        return (self.hours, self.dollars, self.label)

    def to_dict(self) -> Dict[str, object]:
        scenario = self.scenario
        payload = {
            "label": self.label,
            "gpu": scenario.gpu_spec.name,
            "provider": self.provider,
            "num_gpus": scenario.num_gpus,
            "interconnect": scenario.interconnect_spec.name,
            "dense": scenario.dense,
            "per_gpu_batch": scenario.batch_size,
            "global_batch": scenario.global_batch_size(),
            "dollars_per_gpu_hour": self.dollars_per_gpu_hour,
            "queries_per_second": self.estimate.queries_per_second,
            "scaling_efficiency": self.estimate.scaling_efficiency,
            "allreduce_seconds": self.estimate.allreduce_seconds,
            "hours": self.hours,
            "dollars": self.dollars,
        }
        extra = strategy_payload(scenario)
        if extra:
            extra["tp_comm_seconds"] = self.estimate.tp_comm_seconds
            payload.update(extra)
        return payload


def dominance_sweep(candidates, sort_key, cost) -> List:
    """Generic weak-dominance Pareto sweep: sort by ``sort_key`` (time
    axis first) and keep candidates while ``cost`` strictly improves. A
    candidate survives iff it is strictly cheaper than every candidate at
    least as fast as it, so a slower configuration that saves no money is
    dropped and ties collapse to the first in deterministic sort order.
    Shared by this frontier and the spot planner's risk frontier."""
    frontier: List = []
    best_cost = float("inf")
    for candidate in sorted(candidates, key=sort_key):
        if cost(candidate) < best_cost:
            frontier.append(candidate)
            best_cost = cost(candidate)
    return frontier


def pareto_frontier(candidates: Sequence[ClusterCandidate]) -> List[ClusterCandidate]:
    """The non-dominated candidates under (minimize hours, minimize
    dollars), ordered fastest-first."""
    return dominance_sweep(
        candidates, ClusterCandidate.sort_key, lambda c: c.dollars
    )


@dataclass
class ClusterPlan:
    """The planner's full answer for one model/dataset/target."""

    model_name: str
    dataset: Optional[str]
    seq_len: int
    num_queries: int
    epochs: int
    deadline_hours: Optional[float]
    budget_dollars: Optional[float]
    candidates: List[ClusterCandidate]
    frontier: List[ClusterCandidate]
    cheapest: Optional[ClusterCandidate]
    fastest: Optional[ClusterCandidate]
    skipped: List[str] = field(default_factory=list)

    @property
    def feasible(self) -> List[ClusterCandidate]:
        return [
            c for c in self.candidates
            if c.meets(self.deadline_hours, self.budget_dollars)
        ]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable plan (``--json``), deterministically ordered."""
        return {
            "model": self.model_name,
            "dataset": self.dataset,
            "seq_len": self.seq_len,
            "num_queries": self.num_queries,
            "epochs": self.epochs,
            "deadline_hours": self.deadline_hours,
            "budget_dollars": self.budget_dollars,
            "num_candidates": len(self.candidates),
            "num_feasible": len(self.feasible),
            "frontier": [c.to_dict() for c in self.frontier],
            "cheapest": self.cheapest.to_dict() if self.cheapest else None,
            "fastest": self.fastest.to_dict() if self.fastest else None,
            "skipped": list(self.skipped),
        }

    def to_table(self, top: int = 10) -> str:
        """Frontier + recommendation as a report-style text table."""
        lines = [
            f"== cluster plan: {self.model_name} on {self.dataset or f'seq {self.seq_len}'} "
            f"({self.num_queries} queries x {self.epochs} epochs) ==",
        ]
        target = []
        if self.deadline_hours is not None:
            target.append(f"deadline {self.deadline_hours:g} h")
        if self.budget_dollars is not None:
            target.append(f"budget ${self.budget_dollars:g}")
        lines.append(
            f"target: {', '.join(target) if target else 'none (full frontier)'}; "
            f"{len(self.feasible)}/{len(self.candidates)} candidates feasible"
        )
        width = max([len(c.label) for c in self.frontier[:top]] + [12])
        lines.append(
            f"{'pareto-optimal configuration':<{width}}  {'hours':>8}  {'dollars':>9}  "
            f"{'q/s':>6}  {'eff':>5}"
        )
        for candidate in self.frontier[:top]:
            lines.append(
                f"{candidate.label:<{width}}  {candidate.hours:>8.2f}  "
                f"{candidate.dollars:>9.2f}  {candidate.estimate.queries_per_second:>6.2f}  "
                f"{candidate.estimate.scaling_efficiency:>5.2f}"
            )
        if len(self.frontier) > top:
            lines.append(f"... {len(self.frontier) - top} more frontier points (--top)")
        if self.cheapest is not None:
            lines.append(
                f"cheapest feasible: {self.cheapest.label} — "
                f"${self.cheapest.dollars:.2f} in {self.cheapest.hours:.2f} h"
            )
        else:
            lines.append("cheapest feasible: none — no configuration meets the target")
        if self.fastest is not None and self.fastest is not self.cheapest:
            lines.append(
                f"fastest feasible:  {self.fastest.label} — "
                f"{self.fastest.hours:.2f} h for ${self.fastest.dollars:.2f}"
            )
        for reason in self.skipped:
            lines.append(f"skipped: {reason}")
        return "\n".join(lines)


class ClusterPlanner:
    """Sweeps the cluster space through the scenario engine and prices it.

    ``model`` accepts a registry key or a config; the dataset supplies the
    padded sequence length and query count unless overridden. All
    simulation flows through the (shared) :class:`SimulationCache`, so a
    warm planner pass — and every cluster size beyond the first within a
    cold pass — performs zero redundant ``simulate_step`` calls.
    """

    def __init__(
        self,
        model: Union[str, ModelConfig],
        dataset: Optional[str] = "math14k",
        epochs: int = 10,
        num_queries: Optional[int] = None,
        seq_len: Optional[int] = None,
        catalog: Optional[PriceCatalog] = None,
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
        executor: str = "thread",
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.cfg = get_model_spec(model).config if isinstance(model, str) else model
        self.dataset = dataset
        if seq_len is None:
            if dataset is None:
                raise ValueError("ClusterPlanner needs a dataset or an explicit seq_len")
            if dataset not in EFFECTIVE_SEQ_LEN:
                raise KeyError(
                    f"unknown dataset {dataset!r}; known: {sorted(EFFECTIVE_SEQ_LEN)}"
                )
            seq_len = EFFECTIVE_SEQ_LEN[dataset]
        self.seq_len = seq_len
        if num_queries is None:
            if dataset is None:
                raise ValueError("ClusterPlanner needs a dataset or an explicit num_queries")
            num_queries = dataset_num_queries(dataset)
        self.num_queries = num_queries
        self.epochs = epochs
        self.catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.executor = executor
        self.tracer = resolve_tracer(tracer)
        # The most recent plan's swept grid, kept for run manifests
        # (telemetry computes its digest only when a flag asks for it).
        self.last_grid: Optional[ScenarioGrid] = None

    # ------------------------------------------------------------------
    def _resolve_gpus(
        self, gpus: Optional[Sequence[Union[str, GPUSpec]]], providers: Sequence[str]
    ) -> List[GPUSpec]:
        if gpus is not None:
            return [get_gpu(g) if isinstance(g, str) else g for g in gpus]
        # Default: every registered GPU priced by at least one requested
        # provider, in deterministic name order.
        priced = {
            name for provider in providers for name in self.catalog.gpus(provider)
        }
        return [GPU_REGISTRY[name] for name in sorted(priced) if name in GPU_REGISTRY]

    def _strategy_degrees(self, parallelism: str, max_tp: int) -> Tuple[int, ...]:
        """TP degrees a parallelism mode enumerates (1 = data parallel)."""
        if parallelism not in PARALLELISM_MODES:
            raise ValueError(
                f"parallelism must be one of {PARALLELISM_MODES}, got {parallelism!r}"
            )
        if parallelism == "dp":
            return (1,)
        if parallelism == "tp":
            degrees = tp_degrees(max_tp)
            if not degrees:
                raise ValueError(
                    f"parallelism='tp' needs max_tp >= 2, got {max_tp}"
                )
            return degrees
        return (1,) + tp_degrees(max_tp)

    def scenarios(
        self,
        gpus: Optional[Sequence[Union[str, GPUSpec]]] = None,
        providers: Optional[Sequence[str]] = None,
        num_gpus: Sequence[int] = DEFAULT_NUM_GPUS,
        interconnects: Sequence[Union[str, Interconnect]] = DEFAULT_INTERCONNECTS,
        densities: Sequence[bool] = (False, True),
        batch_sizes: Optional[Sequence[int]] = None,
        parallelism: str = "dp",
        max_tp: int = DEFAULT_MAX_TP,
        grad_accums: Sequence[int] = (1,),
    ) -> Tuple[ScenarioGrid, List[str]]:
        """The candidate grid plus human-readable skip reasons.

        ``batch_sizes=None`` uses the memory-oracle per-device maximum for
        each (GPU, density, TP degree) cell — the throughput-optimal
        choice; explicit batch sizes are kept only where they fit.
        ``parallelism`` selects the layout axis: ``"dp"`` reproduces the
        pre-strategy sweep exactly; ``"tp"``/``"auto"`` also enumerate
        tensor-parallel degrees (powers of two up to ``max_tp``), so a
        cell where the model does not fit one device is *priced* at the
        degrees that shard it into fitting — skip reasons are reserved
        for cells no enumerated degree can fit. ``grad_accums`` adds the
        accumulation axis; every depth shares its cell's per-device trace.
        """
        providers = list(providers) if providers is not None else self.catalog.providers()
        resolved_gpus = self._resolve_gpus(gpus, providers)
        degrees = self._strategy_degrees(parallelism, max_tp)
        accums = list(dict.fromkeys(grad_accums))
        if not accums or any(a < 1 for a in accums):
            raise ValueError(f"grad_accums must name depths >= 1, got {grad_accums!r}")
        # Duplicate axis values (e.g. --num-gpus 4,4, or "nvlink" next to
        # NVLINK) would duplicate every candidate; collapse them while
        # preserving order.
        sizes = list(dict.fromkeys(num_gpus))
        links = list(dict.fromkeys(get_interconnect(link) for link in interconnects))
        scenarios: List[ClusterScenario] = []
        skipped: List[str] = []
        for gpu in resolved_gpus:
            # Filter unpriced (GPU, provider) pairs *before* simulating:
            # without a price there is nothing to rank, so tracing the
            # replica would be wasted work ending in an empty, unexplained
            # plan.
            if not set(self.catalog.providers_for(gpu.name)).intersection(providers):
                skipped.append(
                    f"{gpu.name} is not priced by provider(s) {sorted(providers)}"
                )
                continue
            for dense in densities:
                density = "dense" if dense else "sparse"
                cell_count = len(scenarios)
                fits_any = False  # some degree fits memory at batch 1
                batches_any = False  # ...and had an admissible batch size
                dp_mbs = 0
                for degree in degrees:
                    mbs = max_batch_size(
                        self.cfg, gpu, self.seq_len, dense, tensor_parallel=degree
                    )
                    if mbs < 1:
                        continue
                    fits_any = True
                    if degree == 1:
                        dp_mbs = mbs
                    if batch_sizes is None:
                        batches: List[int] = [mbs]
                    else:
                        batches = [b for b in batch_sizes if 1 <= b <= mbs]
                    if batches:
                        batches_any = True
                    for batch in batches:
                        for accum in accums:
                            strategy: ParallelismStrategy = (
                                DataParallel(grad_accum=accum)
                                if degree == 1
                                else TensorParallel(grad_accum=accum, degree=degree)
                            )
                            for n in sizes:
                                if not strategy.fits(n):
                                    continue
                                for link in links:
                                    scenarios.append(
                                        ClusterScenario(
                                            model=self.cfg,
                                            gpu=gpu,
                                            batch_size=batch,
                                            seq_len=self.seq_len,
                                            dense=dense,
                                            dataset=self.dataset,
                                            num_gpus=n,
                                            interconnect=link,
                                            strategy=strategy,
                                        )
                                    )
                if len(scenarios) > cell_count:
                    continue  # the cell produced candidates; nothing to explain
                if not fits_any:
                    # Truly impossible cell: no enumerated layout fits.
                    reason = (
                        f"{self.cfg.name} ({density}) does not fit "
                        f"on {gpu.name} at seq_len={self.seq_len}"
                    )
                    if parallelism != "dp":
                        reason += f" at any tensor-parallel degree <= {max_tp}"
                    skipped.append(reason)
                elif not batches_any:
                    if parallelism == "dp":
                        skipped.append(
                            f"no requested batch size fits on {gpu.name} "
                            f"({density}, max {dp_mbs})"
                        )
                    else:
                        skipped.append(
                            f"no requested batch size fits on {gpu.name} "
                            f"({density}) at any tensor-parallel degree <= {max_tp}"
                        )
                else:
                    # Memory fits and batches exist, but no requested
                    # cluster size hosts a fitting degree — point the
                    # user at --num-gpus, not --batch-size. (Degree 1
                    # fits every size, so this branch is TP-only.)
                    skipped.append(
                        f"no requested cluster size (sizes {sizes}) hosts a "
                        f"tensor-parallel degree <= {max_tp} fitting "
                        f"{self.cfg.name} ({density}) on {gpu.name}"
                    )
        return ScenarioGrid(scenarios), skipped

    def plan(
        self,
        gpus: Optional[Sequence[Union[str, GPUSpec]]] = None,
        providers: Optional[Sequence[str]] = None,
        num_gpus: Sequence[int] = DEFAULT_NUM_GPUS,
        interconnects: Sequence[Union[str, Interconnect]] = DEFAULT_INTERCONNECTS,
        densities: Sequence[bool] = (False, True),
        batch_sizes: Optional[Sequence[int]] = None,
        deadline_hours: Optional[float] = None,
        budget_dollars: Optional[float] = None,
        parallelism: str = "dp",
        max_tp: int = DEFAULT_MAX_TP,
        grad_accums: Sequence[int] = (1,),
    ) -> ClusterPlan:
        """Sweep, price, and rank the full cluster space.

        Traced as a ``planner.plan`` span with one child per phase —
        enumerate (grid construction), simulate (the trace sweep),
        strategy (applying the parallelism model to each trace), price
        (provider rates), pareto (ordering, frontier, picks) — so a
        ``--telemetry`` run shows exactly where a plan's time went.
        """
        tracer = self.tracer
        providers = (
            list(dict.fromkeys(providers)) if providers is not None
            else self.catalog.providers()
        )
        with tracer.span("planner.plan", model=self.cfg.name):
            with tracer.span("planner.enumerate") as sp:
                grid, skipped = self.scenarios(
                    gpus=gpus,
                    providers=providers,
                    num_gpus=num_gpus,
                    interconnects=interconnects,
                    densities=densities,
                    batch_sizes=batch_sizes,
                    parallelism=parallelism,
                    max_tp=max_tp,
                    grad_accums=grad_accums,
                )
                sp.attributes["cells"] = len(grid)
                sp.attributes["skipped"] = len(skipped)
            self.last_grid = grid
            with tracer.span("planner.simulate"):
                runner = SweepRunner(
                    cache=self.cache, jobs=self.jobs, executor=self.executor,
                    tracer=tracer,
                )
                points = runner.run(grid)
            with tracer.span("planner.strategy"):
                estimates = []
                for point in points:
                    scenario = point.scenario
                    assert isinstance(scenario, ClusterScenario)
                    estimates.append(
                        estimate_from_trace(
                            scenario.config,
                            point.trace,
                            scenario.num_gpus,
                            scenario.interconnect_spec,
                            strategy=scenario.strategy_spec,
                        )
                    )
            with tracer.span("planner.price") as sp:
                candidates: List[ClusterCandidate] = []
                for point, estimate in zip(points, estimates):
                    scenario = point.scenario
                    priced = set(self.catalog.providers_for(scenario.gpu_spec.name))
                    for provider in providers:
                        if provider not in priced:
                            continue  # this provider does not rent this GPU
                        rate = self.catalog.dollars_per_hour(
                            scenario.gpu_spec.name, provider
                        )
                        candidates.append(
                            ClusterCandidate(
                                scenario=scenario,
                                provider=provider,
                                dollars_per_gpu_hour=rate,
                                estimate=estimate,
                                num_queries=self.num_queries,
                                epochs=self.epochs,
                            )
                        )
                sp.attributes["candidates"] = len(candidates)
            with tracer.span("planner.pareto") as sp:
                candidates.sort(key=ClusterCandidate.sort_key)
                frontier = pareto_frontier(candidates)
                feasible = [
                    c for c in candidates if c.meets(deadline_hours, budget_dollars)
                ]
                cheapest = min(
                    feasible, key=lambda c: (c.dollars, c.hours, c.label), default=None
                )
                fastest = min(
                    feasible, key=lambda c: (c.hours, c.dollars, c.label), default=None
                )
                sp.attributes["frontier"] = len(frontier)
        return ClusterPlan(
            model_name=self.cfg.name,
            dataset=self.dataset,
            seq_len=self.seq_len,
            num_queries=self.num_queries,
            epochs=self.epochs,
            deadline_hours=deadline_hours,
            budget_dollars=budget_dollars,
            candidates=candidates,
            frontier=frontier,
            cheapest=cheapest,
            fastest=fastest,
            skipped=skipped,
        )
