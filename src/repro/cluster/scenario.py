"""Cluster scenarios: the multi-GPU extension of the scenario space.

A :class:`ClusterScenario` adds the two data-parallel axes — ``num_gpus``
and ``interconnect`` — to :class:`~repro.scenarios.scenario.Scenario`.
The per-device step trace does not depend on either axis (every replica
runs the identical step; only the gradient all-reduce differs), so the
inherited :meth:`Scenario.key` deliberately excludes them: the
:class:`~repro.scenarios.cache.SimulationCache` memoizes one *replica*
trace that every cluster size and interconnect shares. Scaling a sweep
from 1 to 8 GPUs therefore never re-simulates the replica.

Cluster-level identity (for derived results such as plan candidates)
lives in :meth:`ClusterScenario.cluster_key`, which appends the two
cluster axes to the replica key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..gpu.multigpu import (
    Interconnect,
    MultiGPUEstimate,
    estimate_from_trace,
    get_interconnect,
)
from ..gpu.specs import GPUSpec
from ..scenarios import Scenario, ScenarioGrid, SimulationCache, freeze_overrides, resolve_cache
from ..scenarios.scenario import ModelConfig


@dataclass(frozen=True)
class ClusterScenario(Scenario):
    """One hashable point of the (replica scenario x cluster) space.

    ``interconnect`` accepts a registry key (``"nvlink"``,
    ``"pcie-gen4"``) or an :class:`Interconnect` instance; it is
    normalized to the instance on construction so equal scenarios hash
    identically regardless of spelling.
    """

    num_gpus: int = 1
    interconnect: Union[str, Interconnect] = "nvlink"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        object.__setattr__(self, "interconnect", get_interconnect(self.interconnect))

    # ------------------------------------------------------------------
    # Resolution / identity
    # ------------------------------------------------------------------
    @property
    def interconnect_spec(self) -> Interconnect:
        """The resolved interconnect (normalization makes this the field
        itself; kept as a property to mirror ``gpu_spec``)."""
        return self.interconnect  # type: ignore[return-value]

    def replica(self) -> Scenario:
        """The single-GPU scenario every replica of this cluster runs.
        Shares :meth:`key` with ``self``, so both hit the same cached
        trace."""
        return Scenario(
            model=self.model,
            gpu=self.gpu,
            batch_size=self.batch_size,
            seq_len=self.seq_len,
            dense=self.dense,
            dataset=self.dataset,
            overrides=self.overrides,
        )

    def cluster_key(self) -> Tuple:
        """Cluster-level identity: the replica key plus the cluster axes.
        Use this (not :meth:`key`) to memoize derived results that depend
        on the all-reduce."""
        return self.key() + (self.num_gpus, self.interconnect_spec)

    def label(self, include_gpu: bool = False, include_seq_len: bool = False) -> str:
        base = super().label(include_gpu=include_gpu, include_seq_len=include_seq_len)
        return f"{base}_x{self.num_gpus}_{self.interconnect_spec.name}"

    def qualified_label(self) -> str:
        return f"{super().qualified_label()}_x{self.num_gpus}_{self.interconnect_spec.name}"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def estimate(self, cache: Optional[SimulationCache] = None) -> MultiGPUEstimate:
        """Data-parallel estimate at this point, built from the (cached)
        replica trace plus the interconnect's all-reduce model."""
        cache = resolve_cache(cache)
        return estimate_from_trace(
            self.config, cache.simulate(self), self.num_gpus, self.interconnect_spec
        )

    def global_batch_size(self) -> int:
        return self.num_gpus * self.batch_size


def cluster_product(
    models: Sequence[Union[str, ModelConfig]],
    gpus: Sequence[Union[str, GPUSpec]],
    batch_sizes: Sequence[int] = (1,),
    datasets: Sequence[Optional[str]] = (None,),
    seq_lens: Sequence[Optional[int]] = (None,),
    dense: Sequence[bool] = (False,),
    num_gpus: Sequence[int] = (1,),
    interconnects: Sequence[Union[str, Interconnect]] = ("nvlink",),
    overrides=(),
) -> ScenarioGrid:
    """Cartesian product over the cluster space, mirroring
    :meth:`ScenarioGrid.product` with the two cluster axes innermost —
    replica axes vary slowest, so all cluster variants of one replica are
    consecutive and share one simulation."""
    frozen = freeze_overrides(overrides)
    return ScenarioGrid(
        ClusterScenario(
            model=model,
            gpu=gpu,
            batch_size=batch,
            seq_len=seq_len,
            dense=is_dense,
            dataset=dataset,
            overrides=frozen,
            num_gpus=n,
            interconnect=link,
        )
        for model in models
        for dataset in datasets
        for seq_len in seq_lens
        for is_dense in dense
        for batch in batch_sizes
        for gpu in gpus
        for n in num_gpus
        for link in interconnects
    )
