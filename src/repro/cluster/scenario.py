"""Cluster scenarios: the multi-GPU extension of the scenario space.

A :class:`ClusterScenario` adds the cluster axes — ``num_gpus``,
``interconnect`` and the :class:`~repro.gpu.parallelism.ParallelismStrategy`
— to :class:`~repro.scenarios.scenario.Scenario`. The cache-key contract
distinguishes two kinds of axis:

* **pure data-parallel axes** (``num_gpus``, ``interconnect``, the
  ``grad_accum`` knob) do not change the per-device step, so the
  inherited :meth:`Scenario.key` excludes them: the
  :class:`~repro.scenarios.cache.SimulationCache` memoizes one *replica*
  trace that every cluster size, interconnect and accumulation depth
  shares — and, because :meth:`Scenario.canonical_text` is built from
  the same key, existing disk stores stay warm across the strategy
  refactor. Scaling a sweep from 1 to 8 GPUs never re-simulates.
* **tensor parallelism changes the per-device work** (each device runs a
  weight shard), so a TP strategy injects the ``tensor_parallel``
  workload override into the scenario's ``overrides`` axis: the key (and
  the disk digest) change with the TP degree, and the cached trace *is*
  the sharded per-device step. All cluster sizes and ``grad_accum``
  depths at one TP degree still share that one sharded trace.

Cluster-level identity (for derived results such as plan candidates)
lives in :meth:`ClusterScenario.cluster_key`, which appends the cluster
axes to the replica key.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from ..gpu.multigpu import (
    Interconnect,
    MultiGPUEstimate,
    estimate_from_trace,
    get_interconnect,
)
from ..gpu.parallelism import DATA_PARALLEL, ParallelismStrategy, get_strategy
from ..gpu.specs import GPUSpec
from ..scenarios import Scenario, ScenarioGrid, SimulationCache, freeze_overrides, resolve_cache
from ..scenarios.scenario import ModelConfig

# The workload-override key a TP strategy owns on cluster scenarios.
TP_OVERRIDE = "tensor_parallel"


@dataclass(frozen=True)
class ClusterScenario(Scenario):
    """One hashable point of the (replica scenario x cluster) space.

    ``interconnect`` accepts a registry key (``"nvlink"``,
    ``"pcie-gen4"``) or an :class:`Interconnect` instance, and
    ``strategy`` a spelling (``"dp"``, ``"tp4"``, ``"tp4-ga2"``) or a
    :class:`ParallelismStrategy` instance; both are normalized on
    construction so equal scenarios hash identically regardless of
    spelling. A tensor-parallel strategy also reconciles the
    ``tensor_parallel`` workload override (see the module docstring) —
    that key is strategy-owned here, and an explicit override that
    conflicts with the strategy's degree raises rather than being
    silently discarded.
    """

    num_gpus: int = 1
    interconnect: Union[str, Interconnect] = "nvlink"
    strategy: Union[str, ParallelismStrategy] = DATA_PARALLEL

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {self.num_gpus}")
        object.__setattr__(self, "interconnect", get_interconnect(self.interconnect))
        strategy = get_strategy(self.strategy)
        strategy.validate(self.num_gpus)
        object.__setattr__(self, "strategy", strategy)
        # Reconcile the strategy-owned workload override: the strategy is
        # the single source of truth for the TP degree, so a conflicting
        # explicit override is an error (a silently discarded one would
        # hand back unsharded numbers), while a matching one — e.g. a
        # `dataclasses.replace` copy carrying the injected entry — is
        # normalized away and re-injected.
        overrides = dict(self.overrides)
        existing = overrides.pop(TP_OVERRIDE, None)
        degree = strategy.tensor_parallel
        if existing is not None and existing != degree:
            raise ValueError(
                f"the {TP_OVERRIDE!r} workload override is strategy-owned on "
                f"cluster scenarios: override says {existing}, strategy "
                f"{strategy.spec()!r} says {degree} — set the strategy instead "
                f"(use with_(strategy=...) to change it on a copy)"
            )
        if existing is not None or degree > 1:
            if degree > 1:
                overrides[TP_OVERRIDE] = degree
            object.__setattr__(self, "overrides", freeze_overrides(overrides))

    # ------------------------------------------------------------------
    # Resolution / identity
    # ------------------------------------------------------------------
    @property
    def interconnect_spec(self) -> Interconnect:
        """The resolved interconnect (normalization makes this the field
        itself; kept as a property to mirror ``gpu_spec``)."""
        return self.interconnect  # type: ignore[return-value]

    @property
    def strategy_spec(self) -> ParallelismStrategy:
        """The resolved parallelism strategy (normalized on construction,
        mirroring ``interconnect_spec``)."""
        return self.strategy  # type: ignore[return-value]

    @property
    def tensor_parallel(self) -> int:
        return self.strategy_spec.tensor_parallel

    @property
    def grad_accum(self) -> int:
        return self.strategy_spec.grad_accum

    def replica(self) -> Scenario:
        """The single-device scenario every worker of this cluster runs —
        the full replica under data parallelism, one weight shard under
        tensor parallelism (the TP workload override rides along in
        ``overrides``). Shares :meth:`key` with ``self``, so both hit the
        same cached trace."""
        return Scenario(
            model=self.model,
            gpu=self.gpu,
            batch_size=self.batch_size,
            seq_len=self.seq_len,
            dense=self.dense,
            dataset=self.dataset,
            overrides=self.overrides,
        )

    def with_(self, **changes) -> "Scenario":
        """A modified copy. Changing ``strategy`` releases the old
        strategy's claim on the ``tensor_parallel`` override so the new
        strategy can inject its own degree (bare ``dataclasses.replace``
        would carry the stale entry into the conflict check)."""
        if "strategy" in changes and "overrides" not in changes:
            changes["overrides"] = tuple(
                (key, value) for key, value in self.overrides if key != TP_OVERRIDE
            )
        return replace(self, **changes)

    def cluster_key(self) -> Tuple:
        """Cluster-level identity: the replica key plus the cluster axes.
        Use this (not :meth:`key`) to memoize derived results that depend
        on the collectives."""
        return self.key() + (self.num_gpus, self.interconnect_spec, self.strategy_spec)

    def _cluster_tag(self) -> str:
        strategy = self.strategy_spec
        parts = [f"x{self.num_gpus}"]
        if not strategy.is_default:
            parts.append(strategy.spec())
        parts.append(self.interconnect_spec.name)
        return "_".join(parts)

    def label(self, include_gpu: bool = False, include_seq_len: bool = False) -> str:
        base = super().label(include_gpu=include_gpu, include_seq_len=include_seq_len)
        return f"{base}_{self._cluster_tag()}"

    def qualified_label(self) -> str:
        return f"{super().qualified_label()}_{self._cluster_tag()}"

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def estimate(self, cache: Optional[SimulationCache] = None) -> MultiGPUEstimate:
        """Cluster estimate at this point, built from the (cached)
        per-device trace plus the strategy's collectives model."""
        cache = resolve_cache(cache)
        return estimate_from_trace(
            self.config,
            cache.simulate(self),
            self.num_gpus,
            self.interconnect_spec,
            strategy=self.strategy_spec,
        )

    def global_batch_size(self) -> int:
        """Queries contributing to one optimizer step across the fleet."""
        return self.strategy_spec.global_batch_size(self.num_gpus, self.batch_size)


def cluster_product(
    models: Sequence[Union[str, ModelConfig]],
    gpus: Sequence[Union[str, GPUSpec]],
    batch_sizes: Sequence[int] = (1,),
    datasets: Sequence[Optional[str]] = (None,),
    seq_lens: Sequence[Optional[int]] = (None,),
    dense: Sequence[bool] = (False,),
    num_gpus: Sequence[int] = (1,),
    interconnects: Sequence[Union[str, Interconnect]] = ("nvlink",),
    strategies: Sequence[Union[str, ParallelismStrategy]] = (DATA_PARALLEL,),
    overrides=(),
) -> ScenarioGrid:
    """Cartesian product over the cluster space, mirroring
    :meth:`ScenarioGrid.product` with the cluster axes innermost —
    replica axes vary slowest, so all cluster variants of one replica are
    consecutive and share one simulation. Strategy/cluster-size
    combinations the layout cannot host (a TP degree that does not divide
    the cluster size) are omitted rather than failed, so one grid can mix
    strategies across sizes."""
    frozen = freeze_overrides(overrides)
    resolved = [get_strategy(strategy) for strategy in strategies]
    return ScenarioGrid(
        ClusterScenario(
            model=model,
            gpu=gpu,
            batch_size=batch,
            seq_len=seq_len,
            dense=is_dense,
            dataset=dataset,
            overrides=frozen,
            num_gpus=n,
            interconnect=link,
            strategy=strategy,
        )
        for model in models
        for dataset in datasets
        for seq_len in seq_lens
        for is_dense in dense
        for batch in batch_sizes
        for gpu in gpus
        for strategy in resolved
        for n in num_gpus
        for link in interconnects
        if strategy.fits(n)
    )
