"""The paper's primary contribution (S11): analytical fine-tuning cost model.

* :class:`BatchSizeModel` — Eq. 1, max batch size from GPU memory, model
  memory, sequence length and MoE sparsity.
* :class:`ThroughputModel` — Eq. 2, logarithmic batch-size->throughput.
* :class:`FineTuningCostModel` — the full pipeline: max batch size ->
  throughput -> hours -> dollars (Table IV and the OpenOrca projection).
"""

from .batchsize import BatchSizeModel, BatchSizeObservation, PAPER_BATCH_COEFFICIENTS
from .cost import CostEstimate, FineTuningCostModel, dataset_num_queries, wall_clock_hours
from .fitting import (
    collect_batch_size_observations,
    collect_throughput_observations,
    observations_from_sweep,
)
from .throughput import ThroughputModel, ThroughputObservation, fit_dense_sparse

__all__ = [
    "BatchSizeModel",
    "BatchSizeObservation",
    "CostEstimate",
    "FineTuningCostModel",
    "PAPER_BATCH_COEFFICIENTS",
    "ThroughputModel",
    "ThroughputObservation",
    "collect_batch_size_observations",
    "collect_throughput_observations",
    "dataset_num_queries",
    "fit_dense_sparse",
    "observations_from_sweep",
    "wall_clock_hours",
]
