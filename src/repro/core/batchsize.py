"""The paper's Eq. 1 — analytical maximum batch size model.

``MaxBSZ = floor( C0 * (GPU_mem - model_mem) / (seq_len * ((1-C1) + C1*sparsity)) )``

``C0`` (scaling coefficient) absorbs the per-token activation cost and the
gap between weight memory and total fixed memory; ``C1`` (MoE coefficient)
is the fraction of activation memory that scales with expert sparsity.
Both are fitted per model family from measured (here: memory-oracle)
maximum batch sizes, exactly as the paper fits them from hardware runs.

The paper's published values are kept for comparison; note that the
printed equation is unit-ambiguous (with memory in GB and ``C0 = 82`` the
predictions exceed the paper's own Fig. 13 by ~5x), so coefficient
*recovery* is validated on C1 and on prediction agreement, not on C0's
absolute value.

**Extension (``overhead_gb``).** As printed, Eq. 1's only memory intercept
is the model's weight memory. Empirically — in our memory oracle *and* in
the paper's own Fig. 13, whose projection line implies a ~38 GB intercept
for Mixtral versus 23.35 GB of weights — fine-tuning reserves a large
fixed block beyond the weights (optimizer state, adapters, framework
overhead). ``BatchSizeModel`` therefore supports a third fitted
coefficient, the fixed overhead in GB (default 0 = the paper's literal
two-coefficient form); the ablation benchmark compares both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy.optimize import least_squares


@dataclass(frozen=True)
class BatchSizeObservation:
    """One measured point: configuration -> max batch size."""

    gpu_memory_gb: float
    model_memory_gb: float
    seq_len: int
    sparsity: float
    max_batch_size: int


# Published coefficients (paper Section V-A).
PAPER_BATCH_COEFFICIENTS: Dict[str, Tuple[float, float]] = {
    "mixtral": (82.0, 0.95),
    "blackmamba": (83.0, 0.88),
}


@dataclass
class BatchSizeModel:
    """Eq. 1 with fitted coefficients (optionally +fixed overhead)."""

    c0: float
    c1: float
    model_memory_gb: float
    overhead_gb: float = 0.0

    def predict_raw(self, gpu_memory_gb: float, seq_len: int, sparsity: float) -> float:
        """The pre-floor value of Eq. 1."""
        if seq_len <= 0:
            raise ValueError(f"seq_len must be positive, got {seq_len}")
        if not 0.0 < sparsity <= 1.0:
            raise ValueError(f"sparsity must be in (0, 1], got {sparsity}")
        free = gpu_memory_gb - self.model_memory_gb - self.overhead_gb
        denom = seq_len * ((1.0 - self.c1) + self.c1 * sparsity)
        return self.c0 * free / denom

    def predict(self, gpu_memory_gb: float, seq_len: int, sparsity: float) -> int:
        """Eq. 1 with the floor; clamped at zero for undersized GPUs."""
        return max(0, math.floor(self.predict_raw(gpu_memory_gb, seq_len, sparsity)))

    def project_memory_sweep(
        self, memories_gb: Sequence[float], seq_len: int, sparsity: float
    ) -> Dict[float, int]:
        """Fig. 13: projected max batch size across GPU memory capacities."""
        return {m: self.predict(m, seq_len, sparsity) for m in memories_gb}

    @classmethod
    def fit(
        cls,
        observations: Sequence[BatchSizeObservation],
        initial: Tuple[float, float] = (10.0, 0.9),
        fit_overhead: bool = False,
    ) -> "BatchSizeModel":
        """Least-squares fit on the pre-floor continuous values.

        Matching the paper's procedure: observations come from sweeping
        GPUs/sequence lengths/sparsity and recording the max batch size.
        ``fit_overhead=True`` enables the third coefficient (fixed memory
        overhead beyond the weights); see the module docstring.
        """
        if not observations:
            raise ValueError("cannot fit on zero observations")
        model_mem = observations[0].model_memory_gb
        if any(abs(o.model_memory_gb - model_mem) > 1e-9 for o in observations):
            raise ValueError("all observations must share one model")

        targets = np.array([o.max_batch_size + 0.5 for o in observations])

        def make_model(params: np.ndarray) -> "BatchSizeModel":
            if fit_overhead:
                c0, c1, overhead = params
            else:
                c0, c1 = params
                overhead = 0.0
            return cls(c0=float(c0), c1=float(c1), model_memory_gb=model_mem, overhead_gb=float(overhead))

        def residuals(params: np.ndarray) -> np.ndarray:
            model = make_model(params)
            preds = np.array(
                [model.predict_raw(o.gpu_memory_gb, o.seq_len, o.sparsity) for o in observations]
            )
            # Relative error keeps small-batch cells from being swamped.
            return (preds - targets) / np.maximum(targets, 1.0)

        if fit_overhead:
            x0 = np.array([*initial, 1.0])
            bounds = (np.array([1e-3, 0.0, 0.0]), np.array([1e4, 1.0, 60.0]))
        else:
            x0 = np.array(initial)
            bounds = (np.array([1e-3, 0.0]), np.array([1e4, 1.0]))
        fit = least_squares(residuals, x0=x0, bounds=bounds)
        return make_model(fit.x)

    def rmse(self, observations: Sequence[BatchSizeObservation]) -> float:
        errors = [
            self.predict(o.gpu_memory_gb, o.seq_len, o.sparsity) - o.max_batch_size
            for o in observations
        ]
        return float(np.sqrt(np.mean(np.square(errors))))
