"""End-to-end fine-tuning cost estimation (the paper's Section V pipeline).

The pipeline estimates, for a model + dataset + GPU:

1. the maximum batch size supported by GPU memory (memory oracle or the
   fitted Eq. 1 model);
2. throughput at that batch size (fitted Eq. 2 model over a simulated
   batch-size sweep);
3. total hours and dollars for ``epochs x num_queries`` at the provider's
   hourly rate — reproducing Table IV and the OpenOrca projection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from ..cloud.pricing import DEFAULT_CATALOG, PriceCatalog
from ..data.registry import DATASET_STATS
from ..gpu.specs import GPUSpec
from ..memory.estimator import EFFECTIVE_SEQ_LEN, max_batch_size
from ..models.config import BlackMambaConfig, MixtralConfig
from ..scenarios import Scenario, SimulationCache, resolve_cache
from .fitting import collect_throughput_observations
from .throughput import ThroughputModel

ModelConfig = Union[MixtralConfig, BlackMambaConfig]


def wall_clock_hours(total_queries: int, throughput_qps: float) -> float:
    """Hours to push ``total_queries`` through at ``throughput_qps``
    (infinite when the configuration produces no throughput). Shared by
    the Table IV estimates and the cluster planner's projections."""
    if throughput_qps <= 0:
        return float("inf")
    return total_queries / throughput_qps / 3600.0


@dataclass(frozen=True)
class CostEstimate:
    """One row of a Table IV-style cost report."""

    gpu_name: str
    gpu_memory_gb: float
    max_batch_size: int
    throughput_qps: float
    dollars_per_hour: float
    num_queries: int
    epochs: int
    provider: str = "cudo"

    @property
    def total_queries(self) -> int:
        return self.num_queries * self.epochs

    @property
    def hours(self) -> float:
        return wall_clock_hours(self.total_queries, self.throughput_qps)

    @property
    def dollars(self) -> float:
        return self.hours * self.dollars_per_hour


class FineTuningCostModel:
    """The paper's analytical cost model, calibrated on the simulator.

    For every requested GPU the model sweeps batch sizes on the simulator,
    fits Eq. 2, and evaluates it at the memory-limited max batch size.
    """

    def __init__(
        self,
        cfg: ModelConfig,
        seq_len: int,
        dense: bool = False,
        catalog: Optional[PriceCatalog] = None,
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
        executor: str = "thread",
    ) -> None:
        self.cfg = cfg
        self.seq_len = seq_len
        self.dense = dense
        self.catalog = catalog if catalog is not None else DEFAULT_CATALOG
        self.cache = resolve_cache(cache)
        self.jobs = jobs
        self.executor = executor

    @classmethod
    def for_dataset(
        cls,
        cfg: ModelConfig,
        dataset_key: str,
        dense: bool = False,
        catalog: Optional[PriceCatalog] = None,
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
        executor: str = "thread",
    ) -> "FineTuningCostModel":
        """Build a cost model using the dataset's padded sequence length."""
        if dataset_key not in EFFECTIVE_SEQ_LEN:
            raise KeyError(f"unknown dataset {dataset_key!r}")
        return cls(
            cfg,
            seq_len=EFFECTIVE_SEQ_LEN[dataset_key],
            dense=dense,
            catalog=catalog,
            cache=cache,
            jobs=jobs,
            executor=executor,
        )

    # ------------------------------------------------------------------
    def throughput_model(self, gpu: GPUSpec) -> ThroughputModel:
        """Fit Eq. 2 for one GPU from a simulated sweep. The fit is a pure
        function of the cached traces, so it is memoized on the simulation
        cache — keyed by the full GPU spec, shared across cost-model
        instances."""
        def fit() -> ThroughputModel:
            dense_obs = collect_throughput_observations(
                self.cfg, gpu, self.seq_len, dense=True, cache=self.cache,
                jobs=self.jobs, executor=self.executor,
            )
            sparse_obs = collect_throughput_observations(
                self.cfg, gpu, self.seq_len, dense=False, cache=self.cache,
                jobs=self.jobs, executor=self.executor,
            )
            observations = dense_obs + sparse_obs
            if len(observations) < 3:
                raise RuntimeError(
                    f"not enough feasible batch sizes on {gpu.name} to fit Eq. 2"
                )
            return ThroughputModel.fit(observations)

        return self.cache.memoize(("eq2-fit", self.cfg, gpu, self.seq_len), fit)

    def estimate(
        self,
        gpu: GPUSpec,
        num_queries: int,
        epochs: int = 10,
        provider: str = "cudo",
        use_simulator_directly: bool = False,
    ) -> CostEstimate:
        """Estimate the fine-tuning cost on one GPU.

        ``use_simulator_directly=True`` bypasses the Eq. 2 fit and queries
        the simulator at the max batch size (useful for validating the fit
        against "ground truth").
        """
        mbs = max_batch_size(self.cfg, gpu, self.seq_len, self.dense)
        if mbs < 1:
            raise ValueError(
                f"{self.cfg.name} does not fit on {gpu.name} at seq_len={self.seq_len}"
            )
        if use_simulator_directly:
            qps = self.cache.throughput(
                Scenario(
                    model=self.cfg,
                    gpu=gpu,
                    batch_size=mbs,
                    seq_len=self.seq_len,
                    dense=self.dense,
                )
            )
        else:
            qps = self.throughput_model(gpu).predict(mbs, self.cfg.moe.sparsity(self.dense))
        return CostEstimate(
            gpu_name=gpu.name,
            gpu_memory_gb=gpu.memory_gb,
            max_batch_size=mbs,
            throughput_qps=qps,
            dollars_per_hour=self.catalog.dollars_per_hour(gpu.name, provider),
            num_queries=num_queries,
            epochs=epochs,
            provider=provider,
        )

    def rank_gpus(
        self,
        gpus: Sequence[GPUSpec],
        num_queries: int,
        epochs: int = 10,
        provider: str = "cudo",
    ) -> List[CostEstimate]:
        """All estimates sorted by total dollars — the paper's "choose the
        most cost-efficient GPU" use case."""
        estimates = [self.estimate(g, num_queries, epochs=epochs, provider=provider) for g in gpus]
        return sorted(estimates, key=lambda e: e.dollars)


def dataset_num_queries(dataset_key: str) -> int:
    """Query counts from the dataset registry: Table II rows plus the
    projection corpora (e.g. OpenOrca) that live beside them."""
    if dataset_key not in DATASET_STATS:
        raise KeyError(f"unknown dataset {dataset_key!r}")
    return DATASET_STATS[dataset_key].num_queries
