"""Observation collection for fitting the analytical models.

The paper sweeps batch sizes on real hardware to collect throughput
points and probes max batch sizes across GPUs; here the scenario engine
(grids over the memoized GPU simulator) and the memory oracle play the
role of the hardware. These helpers produce the observation lists
consumed by :class:`BatchSizeModel.fit` and :class:`ThroughputModel.fit`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..gpu.simulator import GPUSimulator
from ..gpu.specs import GPUSpec
from ..memory.estimator import max_batch_size
from ..models.config import BlackMambaConfig, MixtralConfig
from ..models.params import model_memory_gb
from ..scenarios import Scenario, ScenarioGrid, SimulationCache, SweepPoint, SweepRunner
from .batchsize import BatchSizeObservation
from .throughput import ThroughputObservation

ModelConfig = Union[MixtralConfig, BlackMambaConfig]


def collect_batch_size_observations(
    cfg: ModelConfig,
    gpus: Sequence[GPUSpec],
    seq_lens: Sequence[int] = (64, 128, 256, 512),
    sparsities: Optional[Sequence[bool]] = None,
) -> List[BatchSizeObservation]:
    """Probe the memory oracle across GPUs/sequence lengths/sparsity.

    ``sparsities`` is given as dense flags; default covers both dense and
    sparse fine-tuning. Configurations that do not fit at batch size 1
    are kept (max 0) — they carry information about the memory intercept.
    """
    dense_flags = [True, False] if sparsities is None else list(sparsities)
    model_mem = model_memory_gb(cfg)
    observations = []
    for gpu in gpus:
        for seq_len in seq_lens:
            for dense in dense_flags:
                observations.append(
                    BatchSizeObservation(
                        gpu_memory_gb=gpu.memory_gb,
                        model_memory_gb=model_mem,
                        seq_len=seq_len,
                        sparsity=cfg.moe.sparsity(dense),
                        max_batch_size=max_batch_size(cfg, gpu, seq_len, dense),
                    )
                )
    return observations


def observations_from_sweep(points: Sequence[SweepPoint]) -> List[ThroughputObservation]:
    """Convert executed sweep points into Eq. 2 observations."""
    return [
        ThroughputObservation(
            batch_size=p.scenario.batch_size,
            sparsity=p.scenario.sparsity,
            throughput_qps=p.queries_per_second,
        )
        for p in points
    ]


def collect_throughput_observations(
    cfg: ModelConfig,
    gpu: GPUSpec,
    seq_len: int,
    dense: bool,
    batch_sizes: Optional[Sequence[int]] = None,
    simulator: Optional[GPUSimulator] = None,
    cache: Optional[SimulationCache] = None,
    jobs: int = 1,
    executor: str = "thread",
) -> List[ThroughputObservation]:
    """Sweep batch sizes through the scenario engine, as the paper sweeps
    hardware.

    Default batch sizes run from 1 to the memory-limited maximum for the
    configuration, which is what both Fig. 14's ground-truth dots and the
    fitting procedure use. The sweep goes through the (shared) simulation
    cache unless an explicit ``simulator`` bypasses it.
    """
    if batch_sizes is None:
        grid = ScenarioGrid.batch_sweep(cfg, gpu, seq_len=seq_len, dense=dense)
    else:
        grid = ScenarioGrid(
            Scenario(model=cfg, gpu=gpu, batch_size=b, seq_len=seq_len, dense=dense)
            for b in batch_sizes
        )
    if simulator is not None:
        # Uncached escape hatch for callers probing a custom simulator;
        # same grid (and batch-range policy), no memoization.
        return [
            ThroughputObservation(
                batch_size=s.batch_size,
                sparsity=s.sparsity,
                throughput_qps=simulator.throughput(cfg, s.batch_size, seq_len, dense=dense),
            )
            for s in grid
        ]
    runner = SweepRunner(cache=cache, jobs=jobs, executor=executor)
    return observations_from_sweep(runner.run(grid))
