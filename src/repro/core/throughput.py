"""The paper's Eq. 2 — logarithmic batch-size -> throughput model.

As printed, Eq. 2 reads ``Throughput = C2 * log(batch_size / sparsity * C3)
+ C4``. Taken literally, C3 enters only additively after the log
(``log(b) - log(s) + log(C3)``) and cannot "tune how much the MoE sparsity
affects the throughput" as the text describes — it is degenerate with the
intercept C4. We therefore implement the text's stated *intent* as the
default form::

    exponent:  Throughput = C2 * log(batch_size / sparsity**C3) + C4

where C3 genuinely attenuates sparsity's influence, and keep the literal
form available for comparison::

    literal:   Throughput = C2 * log(batch_size / (sparsity * C3)) + C4

Both are fitted with scipy curve fitting against measured (simulated)
throughput sweeps, and validated with the paper's RMSE metric (Figs. 14
and 15 report RMSE <= 0.79 on A40 and <= 0.55 on other GPUs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Sequence, Tuple

import numpy as np
from scipy.optimize import curve_fit

FormName = Literal["exponent", "literal"]


@dataclass(frozen=True)
class ThroughputObservation:
    """One measured point of the (batch size, sparsity) -> q/s surface."""

    batch_size: int
    sparsity: float
    throughput_qps: float


@dataclass
class ThroughputModel:
    """Eq. 2 with fitted coefficients.

    ``c2``: scaling coefficient (GPU/model/dataset dependent),
    ``c3``: MoE attenuation coefficient,
    ``c4``: intercept — conceptually the batch-size-1 throughput.
    """

    c2: float
    c3: float
    c4: float
    form: FormName = "exponent"

    def predict(self, batch_size: float, sparsity: float) -> float:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not 0.0 < sparsity <= 1.0:
            raise ValueError(f"sparsity must be in (0, 1], got {sparsity}")
        if self.form == "exponent":
            argument = batch_size / sparsity**self.c3
        else:
            argument = batch_size / (sparsity * self.c3)
        value = self.c2 * np.log(argument) + self.c4
        return float(max(0.0, value))

    def predict_many(self, observations: Sequence[ThroughputObservation]) -> np.ndarray:
        return np.array([self.predict(o.batch_size, o.sparsity) for o in observations])

    @classmethod
    def fit(
        cls,
        observations: Sequence[ThroughputObservation],
        form: FormName = "exponent",
    ) -> "ThroughputModel":
        """Fit (C2, C3, C4) as the paper does with scipy."""
        if len(observations) < 3:
            raise ValueError(f"need at least 3 observations, got {len(observations)}")
        batch = np.array([o.batch_size for o in observations], dtype=float)
        sparsity = np.array([o.sparsity for o in observations], dtype=float)
        target = np.array([o.throughput_qps for o in observations], dtype=float)

        if form == "exponent":

            def equation(x, c2, c3, c4):
                b, s = x
                return c2 * np.log(b / s**c3) + c4

            p0 = (max(target.std(), 0.1), 1.0, max(target.min(), 0.05))
            bounds = ([1e-6, -5.0, -10.0], [1e3, 5.0, 1e3])
        else:

            def equation(x, c2, c3, c4):
                b, s = x
                return c2 * np.log(b / (s * c3)) + c4

            p0 = (max(target.std(), 0.1), 1.0, max(target.min(), 0.05))
            bounds = ([1e-6, 1e-6, -1e3], [1e3, 1e3, 1e3])

        params, _ = curve_fit(equation, (batch, sparsity), target, p0=p0, bounds=bounds, maxfev=20000)
        c2, c3, c4 = (float(p) for p in params)
        return cls(c2=c2, c3=c3, c4=c4, form=form)

    def rmse(self, observations: Sequence[ThroughputObservation]) -> float:
        """The paper's validation metric (Figs. 14/15)."""
        predictions = self.predict_many(observations)
        target = np.array([o.throughput_qps for o in observations])
        return float(np.sqrt(np.mean((predictions - target) ** 2)))


def fit_dense_sparse(
    dense: Sequence[ThroughputObservation],
    sparse: Sequence[ThroughputObservation],
    form: FormName = "exponent",
) -> Tuple[ThroughputModel, float]:
    """Fit one model over a combined dense+sparse sweep (as in Fig. 14)
    and return it with its overall RMSE."""
    combined = list(dense) + list(sparse)
    model = ThroughputModel.fit(combined, form=form)
    return model, model.rmse(combined)
