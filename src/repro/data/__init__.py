"""Synthetic dataset substrate (S6) reproducing the paper's Table II corpora."""

from .dataloader import Batch, DataLoader, collate
from .datasets import (
    EvalDataset,
    EvalItem,
    IGNORE_INDEX,
    Query,
    SyntheticDataset,
    build_commonsense15k,
    build_gsm8k,
    build_hellaswag,
    build_math14k,
    build_pretraining_corpus,
)
from .distributions import SeqLenDistribution, empirical_median
from .registry import DATASET_STATS, BenchmarkSuite, DatasetStats, build_benchmark_suite
from .tokenizer import SPECIAL_TOKENS, Vocabulary, build_vocabulary
from .world import ArithmeticWorld, Fact, KnowledgeWorld, MathProblem

__all__ = [
    "ArithmeticWorld",
    "Batch",
    "BenchmarkSuite",
    "DATASET_STATS",
    "DataLoader",
    "DatasetStats",
    "EvalDataset",
    "EvalItem",
    "Fact",
    "IGNORE_INDEX",
    "KnowledgeWorld",
    "MathProblem",
    "Query",
    "SPECIAL_TOKENS",
    "SeqLenDistribution",
    "SyntheticDataset",
    "Vocabulary",
    "build_benchmark_suite",
    "build_commonsense15k",
    "build_gsm8k",
    "build_hellaswag",
    "build_math14k",
    "build_pretraining_corpus",
    "build_vocabulary",
    "collate",
    "empirical_median",
    "SPECIAL_TOKENS",
]
