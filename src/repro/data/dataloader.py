"""Batching with right-padding for fine-tuning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

import numpy as np

from .datasets import IGNORE_INDEX, Query, SyntheticDataset


@dataclass
class Batch:
    """Right-padded batch: pads carry ``pad_id`` inputs and masked labels."""

    input_ids: np.ndarray  # (batch, max_len) int64
    labels: np.ndarray  # (batch, max_len) int64, IGNORE_INDEX on pads/prompt
    lengths: np.ndarray  # (batch,) original lengths

    @property
    def batch_size(self) -> int:
        return int(self.input_ids.shape[0])

    @property
    def max_length(self) -> int:
        return int(self.input_ids.shape[1])

    @property
    def num_tokens(self) -> int:
        return int(self.lengths.sum())


def collate(queries: List[Query], pad_id: int) -> Batch:
    """Pad a list of queries to the longest sequence in the group."""
    if not queries:
        raise ValueError("cannot collate an empty list of queries")
    max_len = max(q.length for q in queries)
    input_ids = np.full((len(queries), max_len), pad_id, dtype=np.int64)
    labels = np.full((len(queries), max_len), IGNORE_INDEX, dtype=np.int64)
    lengths = np.zeros(len(queries), dtype=np.int64)
    for row, query in enumerate(queries):
        input_ids[row, : query.length] = query.input_ids
        labels[row, : query.length] = query.labels
        lengths[row] = query.length
    return Batch(input_ids=input_ids, labels=labels, lengths=lengths)


class DataLoader:
    """Shuffling mini-batch iterator over a :class:`SyntheticDataset`."""

    def __init__(
        self,
        dataset: SyntheticDataset,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)
        self._epoch = 0

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        return full if self.drop_last or remainder == 0 else full + 1

    def __iter__(self) -> Iterator[Batch]:
        order = np.arange(len(self.dataset))
        if self.shuffle:
            self._rng.shuffle(order)
        self._epoch += 1
        pad_id = self.dataset.vocab.pad_id
        for start in range(0, len(order), self.batch_size):
            chunk = order[start : start + self.batch_size]
            if self.drop_last and chunk.size < self.batch_size:
                return
            yield collate([self.dataset.queries[int(i)] for i in chunk], pad_id)
