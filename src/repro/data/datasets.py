"""Synthetic dataset construction for the four paper datasets.

A *query* follows the paper's definition: the concatenation of a prompt
and its ground-truth answer. Training queries carry label masks so the
loss covers only answer tokens (standard instruction fine-tuning).
Evaluation items are 4-way multiple choice (HellaSwag style) or
exact-match single answers (GSM8K style).

Each dataset embeds narrative filler tokens so its sequence-length
statistics follow the paper's Fig. 2 distributions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from .distributions import SeqLenDistribution
from .tokenizer import Vocabulary
from .world import ArithmeticWorld, KnowledgeWorld

IGNORE_INDEX = -100


@dataclass
class Query:
    """One fine-tuning example: ``input_ids`` with per-token ``labels``.

    Labels equal the next-token target on answer positions and
    ``IGNORE_INDEX`` elsewhere (prompt + filler).
    """

    input_ids: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.input_ids.shape != self.labels.shape:
            raise ValueError("input_ids and labels must have identical shapes")

    @property
    def length(self) -> int:
        return int(self.input_ids.shape[0])


@dataclass
class EvalItem:
    """A held-out evaluation question.

    ``choices`` holds candidate answer token sequences; ``correct_index``
    marks the truth. Exact-match datasets use a single-token answer with
    the full numeric vocabulary as implicit choices.
    """

    prompt_ids: np.ndarray
    choices: List[np.ndarray]
    correct_index: int
    kind: str  # "choice" (HellaSwag-style) or "exact" (GSM8K-style)


@dataclass
class SyntheticDataset:
    """A named collection of queries plus paper-facing metadata."""

    name: str
    task_type: str  # "commonsense" | "math"
    queries: List[Query]
    vocab: Vocabulary
    seq_len_distribution: SeqLenDistribution
    paper_num_queries: int
    paper_median_seq_len: int

    def __len__(self) -> int:
        return len(self.queries)

    def seq_lengths(self) -> np.ndarray:
        return np.array([q.length for q in self.queries], dtype=np.int64)

    def median_seq_len(self) -> float:
        return float(np.median(self.seq_lengths()))

    def subset(self, count: int, rng: Optional[np.random.Generator] = None) -> "SyntheticDataset":
        rng = rng if rng is not None else np.random.default_rng(0)
        count = min(count, len(self.queries))
        picks = rng.choice(len(self.queries), size=count, replace=False)
        return SyntheticDataset(
            name=self.name,
            task_type=self.task_type,
            queries=[self.queries[int(i)] for i in picks],
            vocab=self.vocab,
            seq_len_distribution=self.seq_len_distribution,
            paper_num_queries=self.paper_num_queries,
            paper_median_seq_len=self.paper_median_seq_len,
        )


@dataclass
class EvalDataset:
    """A named collection of evaluation items."""

    name: str
    task_type: str
    items: List[EvalItem]
    vocab: Vocabulary
    paper_num_queries: int
    paper_median_seq_len: int

    def __len__(self) -> int:
        return len(self.items)

    def subset(self, count: int, rng: Optional[np.random.Generator] = None) -> "EvalDataset":
        rng = rng if rng is not None else np.random.default_rng(0)
        count = min(count, len(self.items))
        picks = rng.choice(len(self.items), size=count, replace=False)
        return EvalDataset(
            name=self.name,
            task_type=self.task_type,
            items=[self.items[int(i)] for i in picks],
            vocab=self.vocab,
            paper_num_queries=self.paper_num_queries,
            paper_median_seq_len=self.paper_median_seq_len,
        )


# ---------------------------------------------------------------------------
# Query assembly helpers
# ---------------------------------------------------------------------------


def _filler_ids(vocab: Vocabulary, rng: np.random.Generator, count: int) -> List[int]:
    pool = vocab.categories["filler"]
    if count <= 0:
        return []
    picks = rng.integers(0, len(pool), size=count)
    return [pool[int(i)] for i in picks]


def _assemble_query(
    vocab: Vocabulary,
    prompt_tokens: Sequence[str],
    answer_tokens: Sequence[str],
    target_length: int,
    rng: np.random.Generator,
) -> Query:
    """BOS + filler narrative + prompt + <ans> + answer + EOS.

    Filler pads the sequence toward ``target_length`` so dataset length
    statistics follow the configured distribution. Labels supervise the
    answer tokens and EOS only.
    """
    prompt_ids = vocab.encode(list(prompt_tokens))
    answer_ids = vocab.encode(list(answer_tokens))
    core = 1 + len(prompt_ids) + 1 + len(answer_ids) + 1  # bos, <ans>, eos
    filler = _filler_ids(vocab, rng, target_length - core)

    ids = [vocab.bos_id, *filler, *prompt_ids, vocab.answer_id, *answer_ids, vocab.eos_id]
    input_ids = np.array(ids, dtype=np.int64)

    # Next-token labels: position t predicts token t+1. Supervise exactly
    # the positions whose *target* is an answer token or the final EOS.
    labels = np.full(len(ids), IGNORE_INDEX, dtype=np.int64)
    answer_start = len(ids) - len(answer_ids) - 1  # index of first answer token
    for position in range(answer_start - 1, len(ids) - 1):
        labels[position] = ids[position + 1]
    return Query(input_ids=input_ids, labels=labels)


# ---------------------------------------------------------------------------
# Dataset builders — one per paper dataset (Table II)
# ---------------------------------------------------------------------------


def build_commonsense15k(
    vocab: Vocabulary,
    world: KnowledgeWorld,
    size: int = 15000,
    seed: int = 1,
    length_scale: float = 1.0,
) -> SyntheticDataset:
    """Commonsense-15k: fact-recall fine-tuning queries (median len 79)."""
    rng = np.random.default_rng(seed)
    dist = SeqLenDistribution(median=79, sigma=0.45).scaled(length_scale)
    lengths = dist.sample(rng, size)
    queries = []
    for i in range(size):
        fact = world.sample_fact(rng)
        queries.append(
            _assemble_query(
                vocab,
                prompt_tokens=(fact.entity, fact.relation),
                answer_tokens=(fact.value,),
                target_length=int(lengths[i]),
                rng=rng,
            )
        )
    return SyntheticDataset(
        name="commonsense15k",
        task_type="commonsense",
        queries=queries,
        vocab=vocab,
        seq_len_distribution=dist,
        paper_num_queries=15000,
        paper_median_seq_len=79,
    )


def build_math14k(
    vocab: Vocabulary,
    world: ArithmeticWorld,
    size: int = 14000,
    seed: int = 2,
    length_scale: float = 1.0,
) -> SyntheticDataset:
    """MATH-14k: arithmetic fine-tuning queries (median len 174)."""
    rng = np.random.default_rng(seed)
    dist = SeqLenDistribution(median=174, sigma=0.45).scaled(length_scale)
    lengths = dist.sample(rng, size)
    queries = []
    for i in range(size):
        problem = world.sample_problem(rng)
        lhs, op, rhs = problem.operand_tokens()
        queries.append(
            _assemble_query(
                vocab,
                prompt_tokens=(lhs, op, rhs, "equals"),
                answer_tokens=(problem.answer_token,),
                target_length=int(lengths[i]),
                rng=rng,
            )
        )
    return SyntheticDataset(
        name="math14k",
        task_type="math",
        queries=queries,
        vocab=vocab,
        seq_len_distribution=dist,
        paper_num_queries=14000,
        paper_median_seq_len=174,
    )


def build_hellaswag(
    vocab: Vocabulary,
    world: KnowledgeWorld,
    size: int = 10000,
    seed: int = 3,
    num_choices: int = 4,
    length_scale: float = 1.0,
) -> EvalDataset:
    """HellaSwag stand-in: 4-way multiple choice over the fact base."""
    rng = np.random.default_rng(seed)
    dist = SeqLenDistribution(median=272, sigma=0.4).scaled(length_scale)
    lengths = dist.sample(rng, size)
    items = []
    for i in range(size):
        fact = world.sample_fact(rng)
        distractors = world.distractor_values(fact, rng, num_choices - 1)
        correct = int(rng.integers(0, num_choices))
        values = distractors[:correct] + [fact.value] + distractors[correct:]
        filler = _filler_ids(vocab, rng, int(lengths[i]) - 5)
        prompt = [vocab.bos_id, *filler, *vocab.encode([fact.entity, fact.relation]), vocab.answer_id]
        items.append(
            EvalItem(
                prompt_ids=np.array(prompt, dtype=np.int64),
                choices=[np.array(vocab.encode([value]), dtype=np.int64) for value in values],
                correct_index=correct,
                kind="choice",
            )
        )
    return EvalDataset(
        name="hellaswag",
        task_type="commonsense",
        items=items,
        vocab=vocab,
        paper_num_queries=10000,
        paper_median_seq_len=272,
    )


def build_pretraining_corpus(
    vocab: Vocabulary,
    size: int = 600,
    seed: int = 9,
    median_length: float = 24.0,
    shadow_seed: int = 10_007,
) -> SyntheticDataset:
    """Generic text for the light pre-training phase.

    Three sequence styles teach domain *structure* and generic QA
    *circuits* without leaking the evaluation facts:

    * narrative — filler tokens with occasional random domain tokens;
    * shadow commonsense QA — ``entity relation <ans> value`` answered
      from a **shadow fact table** (an independently seeded
      :class:`~repro.data.world.KnowledgeWorld`). Deterministic answers
      force attention to route the (entity, relation) pair to the answer
      position — the generic question-answering circuit every pre-trained
      LLM has — but the table disagrees with the evaluation world, so
      pre-fine-tune accuracy stays at chance (matching the paper's <25%
      HE / <10% GS baselines);
    * shadow math QA — ``a op b equals <ans> n`` answered by a fixed
      pseudo-arithmetic hash, for the same reason.

    Fine-tuning then only has to *rebind* the lookup tables — a low-rank
    edit that QLoRA adapters on the MoE layers can express.
    """
    from .world import KnowledgeWorld  # local import to avoid a cycle

    rng = np.random.default_rng(seed)
    shadow_world = KnowledgeWorld(vocab, seed=shadow_seed)
    dist = SeqLenDistribution(median=median_length, sigma=0.4, minimum=8, maximum=96)
    lengths = dist.sample(rng, size)
    numbers = vocab.categories["number"]
    max_number = len(numbers) - 1
    operators = ("plus", "minus", "times")
    interesting = (
        vocab.categories["entity"]
        + vocab.categories["relation"]
        + vocab.categories["value"]
        + numbers
    )
    filler = vocab.categories["filler"]

    def shadow_math_answer(lhs: int, rhs: int, op: str) -> int:
        # Deterministic but non-arithmetic: learnable structure, wrong math.
        return (lhs * 7 + rhs * 3 + operators.index(op) * 11) % (max_number + 1)

    def narrative(length: int) -> list:
        ids = [vocab.bos_id]
        while len(ids) < length - 1:
            pool = interesting if rng.random() < 0.2 else filler
            ids.append(pool[int(rng.integers(0, len(pool)))])
        ids.append(vocab.eos_id)
        return ids

    def shadow_commonsense(length: int) -> list:
        fact = shadow_world.sample_fact(rng)
        head = _filler_ids(vocab, rng, max(0, length - 7))
        body = vocab.encode([fact.entity, fact.relation])
        return [vocab.bos_id, *head, *body, vocab.answer_id, *vocab.encode([fact.value]), vocab.eos_id]

    def shadow_math(length: int) -> list:
        lhs = int(rng.integers(0, 21))
        rhs = int(rng.integers(0, 21))
        op = operators[int(rng.integers(0, 3))]
        answer = shadow_math_answer(lhs, rhs, op)
        head = _filler_ids(vocab, rng, max(0, length - 9))
        body = vocab.encode([f"n{lhs}", op, f"n{rhs}", "equals"])
        return [vocab.bos_id, *head, *body, vocab.answer_id, *vocab.encode([f"n{answer}"]), vocab.eos_id]

    builders = (narrative, shadow_commonsense, shadow_math)
    weights = (0.34, 0.33, 0.33)
    queries = []
    for i in range(size):
        style = rng.choice(len(builders), p=weights)
        ids = builders[int(style)](int(lengths[i]))
        arr = np.array(ids, dtype=np.int64)
        labels = np.full(len(ids), IGNORE_INDEX, dtype=np.int64)
        labels[:-1] = arr[1:]
        queries.append(Query(input_ids=arr, labels=labels))
    return SyntheticDataset(
        name="pretraining-corpus",
        task_type="generic",
        queries=queries,
        vocab=vocab,
        seq_len_distribution=dist,
        paper_num_queries=size,
        paper_median_seq_len=int(median_length),
    )


def build_gsm8k(
    vocab: Vocabulary,
    world: ArithmeticWorld,
    size: int = 1300,
    seed: int = 4,
    length_scale: float = 1.0,
) -> EvalDataset:
    """GSM8K stand-in: exact-match arithmetic answers."""
    rng = np.random.default_rng(seed)
    dist = SeqLenDistribution(median=148, sigma=0.4).scaled(length_scale)
    lengths = dist.sample(rng, size)
    items = []
    for i in range(size):
        problem = world.sample_problem(rng)
        lhs, op, rhs = problem.operand_tokens()
        filler = _filler_ids(vocab, rng, int(lengths[i]) - 7)
        prompt = [vocab.bos_id, *filler, *vocab.encode([lhs, op, rhs, "equals"]), vocab.answer_id]
        items.append(
            EvalItem(
                prompt_ids=np.array(prompt, dtype=np.int64),
                choices=[np.array(vocab.encode([problem.answer_token]), dtype=np.int64)],
                correct_index=0,
                kind="exact",
            )
        )
    return EvalDataset(
        name="gsm8k",
        task_type="math",
        items=items,
        vocab=vocab,
        paper_num_queries=1300,
        paper_median_seq_len=148,
    )
