"""Sequence-length distributions matching the paper's Fig. 2 / Table II.

The paper reports per-dataset median sequence lengths (CS 79, MATH 174,
HellaSwag 272, GSM8K 148) and shows right-skewed histograms spanning
roughly 0-400 tokens. A log-normal parameterized by its median captures
that shape: ``len = round(median * exp(sigma * Z))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class SeqLenDistribution:
    """Log-normal sequence-length model with hard clipping."""

    median: float
    sigma: float = 0.45
    minimum: int = 8
    maximum: int = 1024

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        draws = self.median * np.exp(self.sigma * rng.standard_normal(size))
        return np.clip(np.round(draws), self.minimum, self.maximum).astype(np.int64)

    def scaled(self, factor: float) -> "SeqLenDistribution":
        """Shrink the distribution (tiny-model experiments) keeping shape."""
        return SeqLenDistribution(
            median=max(4.0, self.median * factor),
            sigma=self.sigma,
            minimum=max(4, int(self.minimum * factor)),
            maximum=max(8, int(self.maximum * factor)),
        )

    def histogram(
        self, rng: np.random.Generator, size: int, bins: int = 40, upper: int = 400
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Binned frequency counts in the style of the paper's Fig. 2."""
        lengths = self.sample(rng, size)
        edges = np.linspace(0, upper, bins + 1)
        counts, _ = np.histogram(np.clip(lengths, 0, upper), bins=edges)
        return counts, edges


def empirical_median(lengths: np.ndarray) -> float:
    return float(np.median(lengths))
