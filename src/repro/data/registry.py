"""Dataset registry with the paper's Table II statistics.

``DATASET_STATS`` records the published numbers (query counts and median
sequence lengths); :func:`build_benchmark_suite` materializes synthetic
datasets — full-scale for statistics, or length-scaled-down for tiny-model
training experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .datasets import (
    EvalDataset,
    SyntheticDataset,
    build_commonsense15k,
    build_gsm8k,
    build_hellaswag,
    build_math14k,
)
from .tokenizer import Vocabulary, build_vocabulary
from .world import ArithmeticWorld, KnowledgeWorld


@dataclass(frozen=True)
class DatasetStats:
    """One row of the paper's Table II (or a Section V projection corpus)."""

    key: str
    display_name: str
    num_queries: int
    median_seq_len: int
    task_type: str
    role: str  # "train", "eval" or "projection"


DATASET_STATS: Dict[str, DatasetStats] = {
    "commonsense15k": DatasetStats("commonsense15k", "Commonsense 15K (CS)", 15000, 79, "commonsense", "train"),
    "math14k": DatasetStats("math14k", "Math 14K (MATH)", 14000, 174, "math", "train"),
    "hellaswag": DatasetStats("hellaswag", "Hellaswag (HE)", 10000, 272, "commonsense", "eval"),
    "gsm8k": DatasetStats("gsm8k", "GSM8K (GS)", 1300, 148, "math", "eval"),
    # Enterprise-scale corpus of the paper's Section V-C cost projection;
    # not part of Table II, so it only feeds the cost pipeline.
    "openorca": DatasetStats("openorca", "OpenOrca (projection)", 2_000_000, 200, "assistant", "projection"),
}


@dataclass
class BenchmarkSuite:
    """All four datasets built over one shared vocabulary and world."""

    vocab: Vocabulary
    commonsense15k: SyntheticDataset
    math14k: SyntheticDataset
    hellaswag: EvalDataset
    gsm8k: EvalDataset

    def train_dataset(self, key: str) -> SyntheticDataset:
        if key == "commonsense15k":
            return self.commonsense15k
        if key == "math14k":
            return self.math14k
        raise KeyError(f"{key!r} is not a training dataset")

    def eval_dataset(self, key: str) -> EvalDataset:
        if key == "hellaswag":
            return self.hellaswag
        if key == "gsm8k":
            return self.gsm8k
        raise KeyError(f"{key!r} is not an evaluation dataset")


def build_benchmark_suite(
    seed: int = 0,
    train_size: Optional[int] = None,
    eval_size: Optional[int] = None,
    length_scale: float = 1.0,
) -> BenchmarkSuite:
    """Construct the four synthetic datasets over a shared world.

    ``length_scale < 1`` shrinks sequence lengths proportionally for
    tiny-model training while preserving the distribution shape;
    ``train_size``/``eval_size`` override the paper-scale counts.
    """
    vocab = build_vocabulary()
    knowledge = KnowledgeWorld(vocab, seed=seed)
    arithmetic = ArithmeticWorld(vocab)
    cs_size = train_size if train_size is not None else DATASET_STATS["commonsense15k"].num_queries
    math_size = train_size if train_size is not None else DATASET_STATS["math14k"].num_queries
    he_size = eval_size if eval_size is not None else DATASET_STATS["hellaswag"].num_queries
    gs_size = eval_size if eval_size is not None else DATASET_STATS["gsm8k"].num_queries
    return BenchmarkSuite(
        vocab=vocab,
        commonsense15k=build_commonsense15k(
            vocab, knowledge, size=cs_size, seed=seed + 1, length_scale=length_scale
        ),
        math14k=build_math14k(
            vocab, arithmetic, size=math_size, seed=seed + 2, length_scale=length_scale
        ),
        hellaswag=build_hellaswag(
            vocab, knowledge, size=he_size, seed=seed + 3, length_scale=length_scale
        ),
        gsm8k=build_gsm8k(
            vocab, arithmetic, size=gs_size, seed=seed + 4, length_scale=length_scale
        ),
    )
