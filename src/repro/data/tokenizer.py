"""Deterministic word-level tokenizer for the synthetic datasets.

The vocabulary is constructed from the synthetic grammar (entities,
relations, attribute values, numbers, operators, filler words) rather than
learned, so every experiment is reproducible without external files. The
layout is stable across runs: special tokens first, then each category in
a fixed order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
SEP = "<sep>"
ANSWER = "<ans>"

SPECIAL_TOKENS = (PAD, BOS, EOS, SEP, ANSWER)


@dataclass
class Vocabulary:
    """Bidirectional token <-> id mapping with category bookkeeping."""

    token_to_id: Dict[str, int] = field(default_factory=dict)
    id_to_token: List[str] = field(default_factory=list)
    categories: Dict[str, List[int]] = field(default_factory=dict)

    def add(self, token: str, category: str = "misc") -> int:
        if token in self.token_to_id:
            return self.token_to_id[token]
        token_id = len(self.id_to_token)
        self.token_to_id[token] = token_id
        self.id_to_token.append(token)
        self.categories.setdefault(category, []).append(token_id)
        return token_id

    def add_many(self, tokens: Sequence[str], category: str) -> List[int]:
        return [self.add(token, category) for token in tokens]

    def encode(self, tokens: Sequence[str]) -> List[int]:
        try:
            return [self.token_to_id[token] for token in tokens]
        except KeyError as exc:
            raise KeyError(f"unknown token {exc.args[0]!r}") from exc

    def decode(self, ids: Sequence[int]) -> List[str]:
        return [self.id_to_token[int(i)] for i in ids]

    def __len__(self) -> int:
        return len(self.id_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self.token_to_id

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self.token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self.token_to_id[EOS]

    @property
    def sep_id(self) -> int:
        return self.token_to_id[SEP]

    @property
    def answer_id(self) -> int:
        return self.token_to_id[ANSWER]


def build_vocabulary(
    num_entities: int = 16,
    num_relations: int = 4,
    num_values: int = 16,
    max_number: int = 60,
    num_filler: int = 320,
) -> Vocabulary:
    """Construct the shared vocabulary used by all four synthetic datasets.

    Default sizes keep the total under 512 ids so the tiny model configs
    (vocab_size=512) can embed every token.
    """
    vocab = Vocabulary()
    for token in SPECIAL_TOKENS:
        vocab.add(token, "special")
    vocab.add_many([f"ent{i}" for i in range(num_entities)], "entity")
    vocab.add_many([f"rel{i}" for i in range(num_relations)], "relation")
    vocab.add_many([f"val{i}" for i in range(num_values)], "value")
    vocab.add_many([f"n{i}" for i in range(max_number + 1)], "number")
    vocab.add_many(["plus", "minus", "times", "equals"], "operator")
    vocab.add_many([f"w{i}" for i in range(num_filler)], "filler")
    return vocab
