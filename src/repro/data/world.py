"""Synthetic knowledge world behind the commonsense and math tasks.

The paper fine-tunes on two domains: commonsense question answering
(Commonsense-15k train / HellaSwag eval) and arithmetic reasoning
(MATH-14k train / GSM8K eval). The synthetic stand-ins preserve the
properties that drive the paper's findings:

* **Commonsense** = fact memorization over a small entity-relation
  knowledge base. A fine-tuned model answers by recalling facts; an
  untrained model is at chance on 4-way multiple choice (the paper's
  pre-trained baselines score under 25%).
* **Math** = compositional arithmetic over number tokens. The answer
  space is much larger and compositional, which is why small models learn
  it poorly (the paper: "math is harder for smaller LLMs to learn", and
  BlackMamba is inadequate on GSM8K).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .tokenizer import Vocabulary


@dataclass(frozen=True)
class Fact:
    """A (subject, relation) -> value triple."""

    entity: str
    relation: str
    value: str


@dataclass(frozen=True)
class MathProblem:
    """A small arithmetic problem ``a op b = c`` with single-token answer."""

    lhs: int
    rhs: int
    op: str  # "plus" | "minus" | "times"
    answer: int

    def operand_tokens(self) -> Tuple[str, str, str]:
        return (f"n{self.lhs}", self.op, f"n{self.rhs}")

    @property
    def answer_token(self) -> str:
        return f"n{self.answer}"


class KnowledgeWorld:
    """Deterministic fact base shared by the train and eval datasets.

    Using one world for Commonsense-15k (train) and HellaSwag (eval)
    mirrors the paper's setup where fine-tuning on one commonsense corpus
    transfers to another: the *knowledge* overlaps, the presentation
    differs.
    """

    def __init__(self, vocab: Vocabulary, seed: int = 0) -> None:
        self.vocab = vocab
        rng = np.random.default_rng(seed)
        entities = [vocab.id_to_token[i] for i in vocab.categories["entity"]]
        relations = [vocab.id_to_token[i] for i in vocab.categories["relation"]]
        values = [vocab.id_to_token[i] for i in vocab.categories["value"]]

        self.entities = entities
        self.relations = relations
        self.values = values
        self.facts: List[Fact] = []
        self._fact_index: Dict[Tuple[str, str], str] = {}
        for entity in entities:
            for relation in relations:
                value = values[int(rng.integers(0, len(values)))]
                self.facts.append(Fact(entity, relation, value))
                self._fact_index[(entity, relation)] = value

    def lookup(self, entity: str, relation: str) -> str:
        return self._fact_index[(entity, relation)]

    def sample_fact(self, rng: np.random.Generator) -> Fact:
        return self.facts[int(rng.integers(0, len(self.facts)))]

    def distractor_values(self, fact: Fact, rng: np.random.Generator, count: int) -> List[str]:
        """Wrong answers for multiple-choice items (unique, != truth)."""
        pool = [value for value in self.values if value != fact.value]
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[int(i)] for i in chosen]


class ArithmeticWorld:
    """Generator of small arithmetic problems with single-token answers.

    Operand ranges are chosen so every answer stays within the number
    vocabulary: a + b <= max_number, a - b >= 0, a * b <= max_number.
    """

    def __init__(self, vocab: Vocabulary, max_operand: int = 20) -> None:
        self.vocab = vocab
        self.max_number = len(vocab.categories["number"]) - 1
        self.max_operand = min(max_operand, self.max_number)

    def sample_problem(self, rng: np.random.Generator) -> MathProblem:
        op = ("plus", "minus", "times")[int(rng.integers(0, 3))]
        if op == "plus":
            lhs = int(rng.integers(0, self.max_operand + 1))
            rhs = int(rng.integers(0, min(self.max_operand, self.max_number - lhs) + 1))
            answer = lhs + rhs
        elif op == "minus":
            lhs = int(rng.integers(0, self.max_operand + 1))
            rhs = int(rng.integers(0, lhs + 1))
            answer = lhs - rhs
        else:
            lhs = int(rng.integers(0, int(np.sqrt(self.max_number)) + 1))
            rhs = int(rng.integers(0, self.max_number // max(1, lhs) + 1 if lhs else self.max_number + 1))
            rhs = min(rhs, self.max_number // max(1, lhs)) if lhs else rhs
            answer = lhs * rhs
        if not 0 <= answer <= self.max_number:
            raise AssertionError(f"answer {answer} escaped vocabulary range")
        return MathProblem(lhs=lhs, rhs=rhs, op=op, answer=answer)

    def distractor_answers(self, problem: MathProblem, rng: np.random.Generator, count: int) -> List[str]:
        wrong: List[int] = []
        while len(wrong) < count:
            candidate = int(rng.integers(0, self.max_number + 1))
            if candidate != problem.answer and candidate not in wrong:
                wrong.append(candidate)
        return [f"n{value}" for value in wrong]
