"""Developer tooling: the contract linter (substrate-free, stdlib-only).

The repo's determinism, atomicity and lock-discipline contracts
(ROADMAP: span-tree determinism, run-store "never reads the clock",
atomic write-then-rename persistence, process-stable sha256 digests)
were hand-enforced until this package: :mod:`repro.devtools.lint` is an
``ast``-based static-analysis pass that machine-checks them on every
push, the same way ``telemetry.schema.validate_file`` made the
documented event schema the enforced one.

Run it as ``python -m repro.devtools.lint src`` (see the README's
"Static analysis" section). The framework lives in
:mod:`~repro.devtools.framework` (findings, rule registry, inline
``# repro: allow[rule-id]`` suppressions, the committed baseline), the
repo-specific rules in :mod:`~repro.devtools.rules`.

This package deliberately imports nothing from the rest of ``repro`` —
it must be able to lint a tree that does not import cleanly.
"""

from .framework import (
    BASELINE_VERSION,
    Finding,
    LintResult,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    module_name_for,
    rule,
)
from . import rules as _rules  # noqa: F401  (registers the built-in rules)

__all__ = [
    "BASELINE_VERSION",
    "Finding",
    "LintResult",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "module_name_for",
    "rule",
]
