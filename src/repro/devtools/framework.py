"""The contract-linter framework: findings, rules, suppressions, baseline.

Pieces (all stdlib; the linter must run on a tree that does not import):

* :class:`Finding` — one violation: file, 1-based line, rule id, message.
  Its :meth:`~Finding.baseline_key` deliberately excludes the line
  number, so unrelated edits that shift a legacy finding up or down do
  not churn the committed baseline.
* :class:`Rule` + the :func:`rule` registration decorator — one
  contract each, with ``id``/``summary``/``rationale`` doubling as the
  ``--list-rules`` documentation.
* Inline suppressions — ``# repro: allow[rule-id]`` (comma-separate for
  several ids) on the offending line, or alone on the line above it.
  Every suppression must earn its keep: one that matches no finding is
  itself reported (rule id ``unused-suppression``), so stale escapes
  cannot accumulate.
* The committed baseline (``lint-baseline.json``) — legacy findings
  gate only on growth: a finding whose key is in the baseline is
  reported as *known* and does not fail the run; a baseline entry no
  finding matches is reported as *stale* so it can be pruned.

:func:`lint_paths` is the everything-wired entry point the CLI and the
tier-1 test share; :func:`lint_source` is the per-file core the fixture
tests drive directly.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

BASELINE_VERSION = 1

# Findings the framework itself emits (not registered rules).
PARSE_ERROR = "parse-error"
UNUSED_SUPPRESSION = "unused-suppression"

_SUPPRESSION_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-, ]+)\]")


# ---------------------------------------------------------------------------
# Findings
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule_id: str
    message: str

    @property
    def baseline_key(self) -> str:
        """The identity the baseline stores: path + rule + message, no
        line number — legacy findings survive unrelated line drift."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module, module: str) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        #: Dotted module name (``repro.telemetry.export``) when the file
        #: sits under a ``src/`` (or ``repro/``) root, else the stem —
        #: what the allow-list and layering rules match against.
        self.module = module

    def finding(self, node: ast.AST, rule_id: str, message: str) -> Finding:
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            rule_id=rule_id,
            message=message,
        )


class Rule:
    """One enforced contract. Subclasses set ``id``/``summary`` and a
    ``rationale`` tying the rule back to the repo contract it guards
    (shown by ``--list-rules``), and implement :meth:`check`."""

    id: str = ""
    summary: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def rule(cls):
    """Class decorator registering a :class:`Rule` subclass (by ``id``)."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _REGISTRY[cls.id] = cls()
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by id."""
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown rule {rule_id!r} (known: {known})") from None


# ---------------------------------------------------------------------------
# Module naming
# ---------------------------------------------------------------------------


def module_name_for(path: Path) -> str:
    """Dotted module name for a source file: the path under the nearest
    ``src/`` component (``src/repro/nn/linear.py`` → ``repro.nn.linear``),
    or under the outermost ``repro/`` component, else the bare stem.
    ``__init__.py`` names the package itself."""
    parts = list(Path(path).parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts.pop()
    for anchor in ("src",):
        if anchor in parts:
            tail = parts[parts.index(anchor) + 1 :]
            if tail:
                return ".".join(tail)
    if "repro" in parts:
        return ".".join(parts[parts.index("repro") :])
    return parts[-1] if parts else ""


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


@dataclass
class _Suppression:
    line: int  # the source line the comment sits on
    covers: int  # the line whose findings it silences
    rule_id: str
    used: bool = False


def _scan_suppressions(source: str, path: str) -> List[_Suppression]:
    """Suppressions from *comment tokens only* — the tokenizer (not a
    line regex) decides what is a comment, so a docstring that merely
    quotes the ``repro: allow[...]`` syntax stays inert."""
    suppressions: List[_Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []  # the ast parse will have reported the real problem
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        lineno, col = token.start
        # A comment alone on its line covers the next line; trailing a
        # statement it covers that statement's line.
        standalone = token.line[:col].strip() == ""
        covers = lineno + 1 if standalone else lineno
        for rule_id in match.group(1).split(","):
            rule_id = rule_id.strip()
            if rule_id:
                suppressions.append(_Suppression(lineno, covers, rule_id))
    return suppressions


# ---------------------------------------------------------------------------
# Per-file lint
# ---------------------------------------------------------------------------


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source text: run every rule, apply inline suppressions,
    report unused suppressions. Findings come back sorted by (line,
    rule id). A file that does not parse yields a single
    ``parse-error`` finding — the linter never raises on bad input."""
    posix = Path(path).as_posix() if path != "<string>" else path
    if module is None:
        module = module_name_for(Path(path)) if path != "<string>" else ""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=posix,
                line=exc.lineno or 1,
                rule_id=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(posix, source, tree, module)
    raw: List[Finding] = []
    for rule_obj in rules if rules is not None else all_rules():
        raw.extend(rule_obj.check(ctx))

    suppressions = _scan_suppressions(source, posix)
    kept: List[Finding] = []
    for finding in raw:
        silenced = False
        for sup in suppressions:
            if sup.rule_id == finding.rule_id and sup.covers == finding.line:
                sup.used = True
                silenced = True
        if not silenced:
            kept.append(finding)
    for sup in suppressions:
        if not sup.used:
            kept.append(
                Finding(
                    path=posix,
                    line=sup.line,
                    rule_id=UNUSED_SUPPRESSION,
                    message=(
                        f"suppression 'repro: allow[{sup.rule_id}]' matches "
                        f"no {sup.rule_id} finding on line {sup.covers}"
                    ),
                )
            )
    return sorted(kept)


# ---------------------------------------------------------------------------
# Tree walk + baseline
# ---------------------------------------------------------------------------


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``*.py`` under the given files/directories, sorted, once."""
    seen = {}
    for path in paths:
        path = Path(path)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            seen[candidate.as_posix()] = candidate
    return [seen[key] for key in sorted(seen)]


@dataclass
class LintResult:
    """The outcome of one lint run, baseline already applied."""

    findings: List[Finding] = field(default_factory=list)  # all, post-suppression
    new: List[Finding] = field(default_factory=list)  # not in baseline → gate
    known: List[Finding] = field(default_factory=list)  # in baseline → reported only
    stale_baseline: List[str] = field(default_factory=list)  # prunable entries
    files: int = 0

    @property
    def ok(self) -> bool:
        """Gate verdict: only *growth* fails — known findings don't."""
        return not self.new

    def to_json(self) -> Dict[str, object]:
        return {
            "version": BASELINE_VERSION,
            "files": self.files,
            "counts": {
                "findings": len(self.findings),
                "new": len(self.new),
                "known": len(self.known),
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.to_json() for f in self.findings],
            "new": [f.to_json() for f in self.new],
            "stale_baseline": list(self.stale_baseline),
            "ok": self.ok,
        }


def load_baseline(path: Optional[Path]) -> List[str]:
    """The baseline's finding keys; a missing file is an empty baseline."""
    if path is None or not Path(path).exists():
        return []
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline {path}: version {payload.get('version')!r} != {BASELINE_VERSION}"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list) or not all(isinstance(e, str) for e in entries):
        raise ValueError(f"baseline {path}: 'entries' must be a list of strings")
    return entries


def render_baseline(findings: Sequence[Finding]) -> str:
    """The committed-baseline JSON for the given findings (sorted,
    deduplicated keys; trailing newline so the file diffs cleanly)."""
    entries = sorted({f.baseline_key for f in findings})
    return json.dumps(
        {"version": BASELINE_VERSION, "entries": entries}, indent=2, sort_keys=True
    ) + "\n"


def apply_baseline(
    findings: Sequence[Finding], baseline: Sequence[str]
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, known) against the baseline and return
    the stale baseline entries nothing matched."""
    baseline_set = set(baseline)
    new = [f for f in findings if f.baseline_key not in baseline_set]
    known = [f for f in findings if f.baseline_key in baseline_set]
    matched = {f.baseline_key for f in known}
    stale = sorted(baseline_set - matched)
    return new, known, stale


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Sequence[str] = (),
) -> LintResult:
    """Lint every Python file under ``paths`` and fold in the baseline."""
    files = iter_python_files([Path(p) for p in paths])
    findings: List[Finding] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=str(file_path), rules=rules))
    findings.sort()
    new, known, stale = apply_baseline(findings, baseline)
    return LintResult(
        findings=findings,
        new=new,
        known=known,
        stale_baseline=stale,
        files=len(files),
    )
