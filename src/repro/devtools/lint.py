"""``python -m repro.devtools.lint`` — the contract linter CLI.

Usage::

    python -m repro.devtools.lint src              # human output
    python -m repro.devtools.lint src --json       # machine output
    python -m repro.devtools.lint --list-rules     # per-rule docs
    python -m repro.devtools.lint src --write-baseline

Exit codes: 0 — clean (or every finding baselined); 1 — new findings
(or unused suppressions, which are findings); 2 — usage/setup errors
(unknown rule id, unreadable baseline).

The baseline (``lint-baseline.json``, discovered in the current
directory or next to the linted tree, or given via ``--baseline``)
makes legacy findings gate only on growth: CI stays green while the
debt is paid down, but no new violation lands. ``--write-baseline``
snapshots the current findings into it.
"""

from __future__ import annotations

import argparse
import sys
import textwrap
from pathlib import Path
from typing import List, Optional, Sequence

from .framework import (
    LintResult,
    all_rules,
    get_rule,
    lint_paths,
    load_baseline,
    render_baseline,
)
from . import rules as _rules  # noqa: F401  (registers the built-in rules)

BASELINE_NAME = "lint-baseline.json"


def discover_baseline(paths: Sequence[Path]) -> Optional[Path]:
    """The default baseline: ``lint-baseline.json`` in the current
    directory, else beside (or above) the first linted path."""
    candidates = [Path.cwd()]
    if paths:
        first = Path(paths[0]).resolve()
        candidates.extend([first] if first.is_dir() else [first.parent])
        candidates.extend(first.parents)
    for directory in candidates:
        candidate = directory / BASELINE_NAME
        if candidate.is_file():
            return candidate
    return None


def list_rules() -> str:
    lines: List[str] = []
    for rule_obj in all_rules():
        lines.append(f"{rule_obj.id}: {rule_obj.summary}")
        lines.extend(
            textwrap.wrap(
                rule_obj.rationale, width=76, initial_indent="    ", subsequent_indent="    "
            )
        )
        lines.append("")
    return "\n".join(lines).rstrip()


def render_human(result: LintResult, baseline_path: Optional[Path]) -> str:
    lines: List[str] = []
    for finding in result.new:
        lines.append(finding.render())
    if result.known:
        lines.append(f"-- {len(result.known)} baselined finding(s) (not gating):")
        lines.extend(f"   {finding.render()}" for finding in result.known)
    if result.stale_baseline:
        lines.append(
            f"-- {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'} "
            f"(fixed or renamed — prune from {baseline_path or BASELINE_NAME}):"
        )
        lines.extend(f"   {entry}" for entry in result.stale_baseline)
    verdict = "ok" if result.ok else f"{len(result.new)} new finding(s)"
    lines.append(
        f"{result.files} file(s) linted, {len(result.findings)} finding(s) "
        f"({len(result.known)} baselined): {verdict}"
    )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="AST-based contract linter enforcing the repo's "
        "determinism, atomicity and lock-discipline invariants.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: ./src if present, else .)",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable report")
    parser.add_argument(
        "--rules",
        default=None,
        metavar="ID[,ID...]",
        help="run only these rule ids (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"baseline file (default: discover {BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline: every finding gates",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print per-rule documentation"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    paths = [Path(p) for p in (args.paths or [])]
    if not paths:
        paths = [Path("src")] if Path("src").is_dir() else [Path(".")]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    try:
        selected = (
            [get_rule(rule_id.strip()) for rule_id in args.rules.split(",") if rule_id.strip()]
            if args.rules
            else None
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.no_baseline:
        baseline_path = None
    elif args.baseline:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = discover_baseline(paths)
    try:
        baseline = load_baseline(baseline_path)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    result = lint_paths(paths, rules=selected, baseline=baseline)

    if args.write_baseline:
        target = baseline_path if baseline_path is not None else Path(BASELINE_NAME)
        target.write_text(render_baseline(result.findings), encoding="utf-8")
        print(f"wrote {len(result.findings)} finding(s) to {target}")
        return 0

    if args.json:
        from ..serialization import dumps

        print(dumps(result.to_json(), indent=2))
    else:
        print(render_human(result, baseline_path))
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
