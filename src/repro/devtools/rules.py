"""The repo-specific contract rules.

Each rule is one hand-enforced invariant from the ROADMAP contracts,
promoted to a machine check. The ``rationale`` strings double as the
``--list-rules`` documentation and name the contract each rule mirrors.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .framework import FileContext, Finding, Rule, rule

# ---------------------------------------------------------------------------
# Import resolution (shared by several rules)
# ---------------------------------------------------------------------------


class ImportMap:
    """Resolves local names back to their dotted import origins, so
    ``np.random.default_rng`` is recognized however numpy was imported
    (``import numpy as np``, ``from numpy import random``, ...).
    Relative imports resolve against the file's module name."""

    def __init__(self, ctx: FileContext) -> None:
        self.names: Dict[str, str] = {}
        parts = ctx.module.split(".") if ctx.module else []
        is_package = ctx.path.endswith("__init__.py")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.names[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.names[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    # ``from ..x import y`` in repro.a.b → base repro;
                    # a package __init__ counts as one level shallower.
                    keep = len(parts) - node.level + (1 if is_package else 0)
                    base = parts[: max(0, keep)]
                else:
                    base = []
                origin = ".".join(base + (node.module.split(".") if node.module else []))
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.names[local] = f"{origin}.{alias.name}" if origin else alias.name

    def resolve(self, node: ast.AST) -> str:
        """Dotted origin of a Name/Attribute chain (root substituted
        through the import map), or ``""`` for anything else."""
        chain: List[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return ""
        chain.append(self.names.get(node.id, node.id))
        return ".".join(reversed(chain))

    def imported_modules(self, ctx: FileContext) -> List[Tuple[str, ast.AST]]:
        """Every imported module as its resolved dotted name + node."""
        parts = ctx.module.split(".") if ctx.module else []
        is_package = ctx.path.endswith("__init__.py")
        out: List[Tuple[str, ast.AST]] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    out.append((alias.name, node))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    keep = len(parts) - node.level + (1 if is_package else 0)
                    base = parts[: max(0, keep)]
                else:
                    base = []
                origin = ".".join(base + (node.module.split(".") if node.module else []))
                for alias in node.names:
                    # ``from pkg import name`` may bind a submodule or an
                    # object; report both spellings and let the caller's
                    # prefix match decide.
                    out.append((f"{origin}.{alias.name}" if origin else alias.name, node))
                if origin:
                    out.append((origin, node))
        return out


def _module_in(module: str, prefixes: Iterable[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


# ---------------------------------------------------------------------------
# 1. no-wall-clock
# ---------------------------------------------------------------------------

WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: The measurement layer: the only modules allowed to read the clock.
#: ``repro.service`` joins it because a server legitimately reads the
#: clock — pricing-catalog TTLs, stale-while-revalidate age checks, run
#: store ingest timestamps — while the *plans it serves* stay clock-free
#: (the engine underneath is still linted).
WALL_CLOCK_ALLOWED = (
    "repro.telemetry",
    "repro.profiling",
    "repro.training.trainer",
    "repro.service",
)


@rule
class NoWallClock(Rule):
    id = "no-wall-clock"
    summary = "no wall-clock reads outside the measurement layer"
    rationale = (
        "Deterministic paths must take timestamps as arguments: the run "
        "store 'never reads the clock' (run ids are functions of their "
        "inputs, so tests and replays are deterministic), and results "
        "must be byte-identical at any --jobs/--executor. Only the "
        "measurement layer (telemetry, profiling, training.trainer) may "
        "call time.time()/perf_counter()/datetime.now()."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if _module_in(ctx.module, WALL_CLOCK_ALLOWED):
            return []
        imports = ImportMap(ctx)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = imports.resolve(node.func)
                if name in WALL_CLOCK_CALLS:
                    findings.append(
                        ctx.finding(
                            node,
                            self.id,
                            f"wall-clock read {name}() outside the measurement "
                            "layer; deterministic paths take timestamps as "
                            "arguments (run-store contract)",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# 2. no-unseeded-rng
# ---------------------------------------------------------------------------

#: stdlib ``random`` module-level functions — process-global hidden state.
STDLIB_RANDOM_FNS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "gauss",
        "getrandbits",
        "normalvariate",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "uniform",
    }
)

#: Legacy numpy global-state RNG entry points (np.random.seed and friends).
NUMPY_GLOBAL_RNG_FNS = frozenset(
    {
        "seed",
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "uniform",
        "normal",
        "standard_normal",
        "choice",
        "shuffle",
        "permutation",
    }
)


@rule
class NoUnseededRng(Rule):
    id = "no-unseeded-rng"
    summary = "no unseeded or global-state random generators"
    rationale = (
        "Reproducible-by-default: np.random.default_rng() with no seed "
        "draws fresh OS entropy, so two runs silently diverge — pass an "
        "explicit seed, thread an injected generator, or fall back via "
        "repro.rng.resolve_rng. The stdlib random module and legacy "
        "np.random.* functions share hidden process-global state and are "
        "banned outright (cf. the seeded PCG64-per-candidate contract in "
        "the spot Monte Carlo)."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap(ctx)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = imports.resolve(node.func)
            if name == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    findings.append(
                        ctx.finding(
                            node,
                            self.id,
                            "np.random.default_rng() without a seed — pass a "
                            "seed/generator or use repro.rng.resolve_rng "
                            "(reproducible-by-default contract)",
                        )
                    )
            elif name.startswith("numpy.random."):
                fn = name[len("numpy.random.") :]
                if fn in NUMPY_GLOBAL_RNG_FNS:
                    findings.append(
                        ctx.finding(
                            node,
                            self.id,
                            f"legacy global-state RNG np.random.{fn}() — use an "
                            "explicit np.random.Generator",
                        )
                    )
            elif name.startswith("random."):
                fn = name[len("random.") :]
                if fn in STDLIB_RANDOM_FNS:
                    findings.append(
                        ctx.finding(
                            node,
                            self.id,
                            f"stdlib random.{fn}() uses unseeded process-global "
                            "state — use an injected np.random.Generator",
                        )
                    )
        return findings


# ---------------------------------------------------------------------------
# 3. no-builtin-hash-persistence
# ---------------------------------------------------------------------------


@rule
class NoBuiltinHashPersistence(Rule):
    id = "no-builtin-hash-persistence"
    summary = "builtin hash() only inside __hash__"
    rationale = (
        "hash() is salted per interpreter process (PYTHONHASHSEED), so "
        "any key, digest, or filename derived from it breaks across "
        "runs — the bug class Scenario.digest() (sha256 over canonical "
        "text) was built to kill, and what keeps disk stores warm "
        "between processes. Builtin hash() is legitimate only when "
        "implementing __hash__ for in-process dict/set use."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        findings: List[Finding] = []
        rule_id = self.id
        make = ctx.finding

        class Visitor(ast.NodeVisitor):
            def __init__(self) -> None:
                self.stack: List[str] = []

            def _visit_func(self, node) -> None:
                self.stack.append(node.name)
                self.generic_visit(node)
                self.stack.pop()

            visit_FunctionDef = _visit_func
            visit_AsyncFunctionDef = _visit_func

            def visit_Call(self, node: ast.Call) -> None:
                if isinstance(node.func, ast.Name) and node.func.id == "hash":
                    if not self.stack or self.stack[-1] != "__hash__":
                        findings.append(
                            make(
                                node,
                                rule_id,
                                "builtin hash() outside __hash__ is salted per "
                                "process — use sha256 over canonical text for "
                                "persisted keys/digests/filenames "
                                "(Scenario.digest contract)",
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        return findings


# ---------------------------------------------------------------------------
# 4. atomic-writes
# ---------------------------------------------------------------------------

#: Persistence layers whose on-disk artifacts other processes read
#: concurrently; everything they write must be write-then-rename.
ATOMIC_WRITE_SCOPE = ("repro.scenarios", "repro.telemetry")

_PATH_WRITERS = frozenset({"write_text", "write_bytes"})


def _write_mode(node: ast.Call) -> Optional[str]:
    """The mode-string literal of an ``open()`` call, or None when the
    call has no literal mode (default ``"r"`` returns ``"r"``)."""
    mode_node: Optional[ast.AST] = None
    if len(node.args) >= 2:
        mode_node = node.args[1]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode_node = keyword.value
    if mode_node is None:
        return "r"
    if isinstance(mode_node, ast.Constant) and isinstance(mode_node.value, str):
        return mode_node.value
    return None


@rule
class AtomicWrites(Rule):
    id = "atomic-writes"
    summary = "persistence-layer writes go through temp-file + os.replace"
    rationale = (
        "DiskTraceStore/RunStore contract: concurrent readers (and "
        "crashed writers) must only ever see complete entries, so every "
        "truncating write under repro.scenarios / repro.telemetry uses "
        "the temp-file + os.replace idiom. A bare open(path, 'w') that "
        "dies mid-write leaves a truncated artifact the corruption-"
        "tolerant readers then count as corrupt. Append-only files "
        "(mode 'a', e.g. the run-store index) are their own contract "
        "and stay allowed."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _module_in(ctx.module, ATOMIC_WRITE_SCOPE):
            return []
        imports = ImportMap(ctx)

        # Calls blessed by an os.replace in the same (or an enclosing)
        # function: the write lands on a temp name and is renamed.
        blessed: Set[int] = set()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            has_replace = any(
                isinstance(sub, ast.Call)
                and imports.resolve(sub.func) == "os.replace"
                for sub in ast.walk(func)
            )
            if has_replace:
                blessed.update(id(sub) for sub in ast.walk(func))

        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or id(node) in blessed:
                continue
            name = imports.resolve(node.func)
            if name in ("open", "io.open"):
                mode = _write_mode(node)
                if mode is not None and not ("w" in mode or "x" in mode):
                    continue
                spelled = mode if mode is not None else "<dynamic>"
                findings.append(
                    ctx.finding(
                        node,
                        self.id,
                        f"non-atomic write open(..., {spelled!r}) with no "
                        "os.replace in the enclosing function — use the "
                        "temp-file + os.replace idiom (DiskTraceStore/"
                        "RunStore contract)",
                    )
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _PATH_WRITERS
            ):
                findings.append(
                    ctx.finding(
                        node,
                        self.id,
                        f".{node.func.attr}() truncates in place with no "
                        "os.replace in the enclosing function — use the "
                        "temp-file + os.replace idiom (DiskTraceStore/"
                        "RunStore contract)",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# 5. lock-discipline
# ---------------------------------------------------------------------------

#: Method calls that mutate their receiver in place.
MUTATING_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

_CONSTRUCTORS = ("__init__", "__new__", "__post_init__")


def _self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is ``self.attr`` (possibly subscripted)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutations(node: ast.AST) -> List[Tuple[str, ast.AST]]:
    """(attr, node) for each ``self.attr`` mutated by this statement."""
    out: List[Tuple[str, ast.AST]] = []
    if isinstance(node, ast.Assign):
        targets: List[ast.AST] = []
        for target in node.targets:
            targets.extend(target.elts if isinstance(target, ast.Tuple) else [target])
        for target in targets:
            attr = _self_attr(target)
            if attr is not None:
                out.append((attr, node))
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        attr = _self_attr(node.target)
        if attr is not None:
            out.append((attr, node))
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            attr = _self_attr(target)
            if attr is not None:
                out.append((attr, node))
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        if node.func.attr in MUTATING_METHODS:
            attr = _self_attr(node.func.value)
            if attr is not None:
                out.append((attr, node))
    return out


@rule
class LockDiscipline(Rule):
    id = "lock-discipline"
    summary = "lock-guarded shared state is only mutated under its lock"
    rationale = (
        "Tracer/MetricsRegistry/SimulationCache share state across "
        "sweep threads; their records, instrument tables and trace maps "
        "are mutated only inside 'with self._lock:'. A class that takes "
        "a threading.Lock and guards an attribute somewhere must guard "
        "it everywhere (outside __init__, where the object is not yet "
        "shared) — a single unlocked append is the race that corrupts "
        "span order or drops counter increments."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        imports = ImportMap(ctx)
        findings: List[Finding] = []
        for cls in [n for n in ast.walk(ctx.tree) if isinstance(n, ast.ClassDef)]:
            lock_attrs = {
                attr
                for node in ast.walk(cls)
                if isinstance(node, ast.Assign)
                and isinstance(node.value, ast.Call)
                and imports.resolve(node.value.func)
                in ("threading.Lock", "threading.RLock")
                for target in node.targets
                if (attr := _self_attr(target)) is not None
            }
            if not lock_attrs:
                continue
            # (attr, node, locked, method) for every self-mutation in the class.
            sites: List[Tuple[str, ast.AST, bool, str]] = []

            class Visitor(ast.NodeVisitor):
                def __init__(self, method: str) -> None:
                    self.method = method
                    self.depth = 0

                def visit_With(self, node: ast.With) -> None:
                    locked = any(
                        _self_attr(item.context_expr) in lock_attrs
                        for item in node.items
                    )
                    self.depth += 1 if locked else 0
                    self.generic_visit(node)
                    self.depth -= 1 if locked else 0

                def generic_visit(self, node: ast.AST) -> None:
                    for attr, site in _mutations(node):
                        sites.append((attr, site, self.depth > 0, self.method))
                    super().generic_visit(node)

            for method in cls.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    Visitor(method.name).visit(method)

            guarded = {attr for attr, _, locked, _ in sites if locked}
            for attr, site, locked, method in sites:
                if locked or method in _CONSTRUCTORS or attr not in guarded:
                    continue
                lock_name = sorted(lock_attrs)[0]
                findings.append(
                    ctx.finding(
                        site,
                        self.id,
                        f"{cls.name}.{method} mutates self.{attr} outside "
                        f"'with self.{lock_name}:' but {cls.name} guards "
                        f"self.{attr} with that lock elsewhere "
                        "(shared-state discipline)",
                    )
                )
        return findings


# ---------------------------------------------------------------------------
# 6. import-layering
# ---------------------------------------------------------------------------

#: Substrate layers: importable with zero observability/CLI machinery.
LOW_LAYERS = (
    "repro.core",
    "repro.gpu",
    "repro.nn",
    "repro.tensor",
    "repro.quant",
    "repro.memory",
    "repro.models",
    "repro.optim",
    "repro.data",
)

#: What the substrate must never depend on: observability, experiment
#: drivers, CLI entry points, and this linter.
HIGH_LAYERS = (
    "repro.telemetry",
    "repro.experiments",
    "repro.devtools",
    "repro.cluster.plan",
    "repro.spot.plan",
    "repro.service",
)


@rule
class ImportLayering(Rule):
    id = "import-layering"
    summary = "substrate layers never import telemetry/experiments/CLIs"
    rationale = (
        "The dependency direction the subsystems already follow: "
        "core/gpu/nn (and the other substrates) are leaf libraries that "
        "the scenario engine, planners and telemetry build on. A "
        "substrate module importing repro.telemetry or an experiment/"
        "CLI module inverts the layering, drags observability into "
        "every consumer, and invites the import cycles the engine's "
        "lazy preset imports were built to avoid."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not _module_in(ctx.module, LOW_LAYERS):
            return []
        imports = ImportMap(ctx)
        findings = []
        # One finding per import statement: ``from repro.telemetry import
        # Tracer`` resolves to both the module and the bound name — keep
        # the shortest matching target per node.
        per_node: Dict[Tuple[int, str], Tuple[str, ast.AST]] = {}
        for target, node in imports.imported_modules(ctx):
            if not _module_in(target, HIGH_LAYERS):
                continue
            key = (id(node), ".".join(target.split(".")[:2]))
            held = per_node.get(key)
            if held is None or len(target) < len(held[0]):
                per_node[key] = (target, node)
        layer = next(p for p in LOW_LAYERS if _module_in(ctx.module, (p,)))
        for target, node in per_node.values():
            findings.append(
                ctx.finding(
                    node,
                    self.id,
                    f"layer violation: {ctx.module} (substrate {layer}) "
                    f"imports {target} — substrates must stay importable "
                    "without telemetry/experiments/CLI layers",
                )
            )
        return findings
