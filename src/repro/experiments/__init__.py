"""Experiment suite (S13): one module per paper table/figure.

Every module exposes ``run(...) -> ExperimentResult``. The mapping to the
paper's artifacts is recorded in DESIGN.md's per-experiment index; the
benchmark harness under ``benchmarks/`` executes each of these and prints
the measured-vs-paper tables collected in EXPERIMENTS.md.
"""

from . import (
    cluster_plan,
    fig2_seqlen,
    fig3_accuracy,
    fig4_stages,
    fig5_layers,
    fig6_kernels,
    fig8_throughput,
    fig9_sm,
    fig10_dram,
    fig11_loadbalance,
    fig13_projection,
    fig14_fit_a40,
    fig15_fit_gpus,
    seqlen_sensitivity,
    spot_plan,
    table1_models,
    table2_datasets,
    table3_maxbatch,
    table4_cost,
)
from .common import ExperimentResult, ExperimentRow

ALL_EXPERIMENTS = {
    "table1": table1_models,
    "table2": table2_datasets,
    "fig2": fig2_seqlen,
    "fig3": fig3_accuracy,
    "table3": table3_maxbatch,
    "fig4": fig4_stages,
    "fig5": fig5_layers,
    "fig6": fig6_kernels,
    "fig8": fig8_throughput,
    "fig9": fig9_sm,
    "fig10": fig10_dram,
    "fig11": fig11_loadbalance,
    "fig13": fig13_projection,
    "fig14": fig14_fit_a40,
    "fig15": fig15_fit_gpus,
    "table4": table4_cost,
    "seqlen": seqlen_sensitivity,
    "cluster": cluster_plan,
    "spot": spot_plan,
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "ExperimentRow"]
