"""Cluster planning — the multi-GPU extension the paper leaves open.

Not a paper artifact: the paper closes with "extending this model to
multi-GPU systems is left for future exploration." This experiment runs
that exploration through the cluster subsystem for the Table IV workload
(Mixtral sparse on MATH-14k x 10 epochs) and reports the Pareto frontier
of (wall-clock, dollars), the planner's recommendation under a 24-hour
deadline, and the scaling-efficiency contrast between interconnects.
Reference values are the model's own structural claims, not published
numbers.
"""

from __future__ import annotations

from ..cluster import ClusterPlanner
from ..gpu import A40, H100
from ..scenarios import SimulationCache
from .common import ExperimentResult

DEADLINE_HOURS = 24.0
EPOCHS = 10


def run(jobs: int = 1, cache: SimulationCache | None = None,
        executor: str = "thread") -> ExperimentResult:
    result = ExperimentResult("cluster", "Cluster plan: Mixtral sparse, MATH-14k (Pareto)")
    planner = ClusterPlanner(
        "mixtral-8x7b", dataset="math14k", epochs=EPOCHS, cache=cache, jobs=jobs,
        executor=executor,
    )
    plan = planner.plan(
        gpus=(A40, H100),
        providers=("cudo",),
        densities=(False,),
        deadline_hours=DEADLINE_HOURS,
    )
    result.add("num_candidates", len(plan.candidates))
    result.add("num_feasible", len(plan.feasible))
    result.add("frontier_size", len(plan.frontier))
    for i, candidate in enumerate(plan.frontier):
        result.add(f"frontier_{i}_{candidate.label}_hours", candidate.hours)
        result.add(f"frontier_{i}_{candidate.label}_dollars", candidate.dollars)
    assert plan.cheapest is not None and plan.fastest is not None
    result.add("cheapest_feasible", plan.cheapest.label,
               note=f"${plan.cheapest.dollars:.2f} in {plan.cheapest.hours:.2f} h")
    result.add("fastest_feasible", plan.fastest.label,
               note=f"{plan.fastest.hours:.2f} h for ${plan.fastest.dollars:.2f}")

    # Structural claims of the data-parallel model, as explicit rows:
    # the cheapest GPU's scaling behavior at 8x vs 1x on NVLink.
    gpu = plan.cheapest.scenario.gpu_spec

    def candidate_at(n: int):
        return next(
            c for c in plan.candidates
            if c.scenario.gpu_spec == gpu and c.scenario.num_gpus == n
            and c.scenario.interconnect_spec.name == "NVLink"
        )

    nvlink8, single = candidate_at(8), candidate_at(1)
    result.add("qlora_x8_nvlink_efficiency", nvlink8.estimate.scaling_efficiency,
               note="adapter-only all-reduce: near-perfect scaling")
    result.add("x8_cost_premium_over_x1", nvlink8.dollars / single.dollars,
               note="multi-GPU buys time, not money (premium ~1.0)")

    # Parallelism-strategy claims: dense Mixtral at the HellaSwag padded
    # length fits no single A40, so pure data parallelism must skip the
    # cell — tensor parallelism shards it into fitting and prices it.
    tp_planner = ClusterPlanner(
        "mixtral-8x7b", dataset="hellaswag", epochs=EPOCHS, cache=cache,
        jobs=jobs, executor=executor,
    )
    tp_kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(True,))
    dp_plan = tp_planner.plan(parallelism="dp", **tp_kwargs)
    auto_plan = tp_planner.plan(parallelism="auto", **tp_kwargs)
    result.add("dense_hellaswag_dp_candidates", len(dp_plan.candidates),
               note="pure DP cannot fit the cell (skipped)")
    result.add("dense_hellaswag_auto_candidates", len(auto_plan.candidates),
               note="TP degrees shard the cell into fitting")
    assert auto_plan.cheapest is not None
    result.add("dense_hellaswag_auto_cheapest", auto_plan.cheapest.label,
               note=f"${auto_plan.cheapest.dollars:.2f} in "
                    f"{auto_plan.cheapest.hours:.2f} h")
    result.metadata["deadline_hours"] = DEADLINE_HOURS
    result.metadata["skipped"] = list(plan.skipped)
    result.metadata["dense_hellaswag_dp_skipped"] = list(dp_plan.skipped)
    return result
