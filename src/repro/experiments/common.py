"""Shared result containers for the experiment suite.

Every experiment module exposes ``run(...) -> ExperimentResult`` so that
benchmarks, examples and EXPERIMENTS.md generation all consume one shape:
labeled rows of measured values next to the paper's published reference
values (when the paper prints them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ExperimentRow:
    """One labeled measurement, optionally paired with the paper's value."""

    label: str
    measured: Any
    paper: Optional[Any] = None
    note: str = ""

    def matches_paper(self, rel_tol: float = 0.5) -> Optional[bool]:
        """Loose shape check: within ``rel_tol`` relative of the paper value.

        Returns None when either side is non-numeric or missing.
        """
        if self.paper is None:
            return None
        try:
            measured = float(self.measured)
            paper = float(self.paper)
        except (TypeError, ValueError):
            return None
        if paper == 0:
            return abs(measured) < 1e-9
        return abs(measured - paper) / abs(paper) <= rel_tol


@dataclass
class ExperimentResult:
    """A named experiment with its rows and free-form metadata."""

    experiment_id: str
    title: str
    rows: List[ExperimentRow] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add(self, label: str, measured: Any, paper: Optional[Any] = None, note: str = "") -> None:
        self.rows.append(ExperimentRow(label=label, measured=measured, paper=paper, note=note))

    def row(self, label: str) -> ExperimentRow:
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(f"no row labeled {label!r} in {self.experiment_id}")

    def to_table(self) -> str:
        width = max([len(r.label) for r in self.rows] + [12])
        lines = [f"== {self.experiment_id}: {self.title} ==",
                 f"{'case':<{width}}  {'measured':>14}  {'paper':>12}  note"]
        for r in self.rows:
            measured = f"{r.measured:.3f}" if isinstance(r.measured, float) else str(r.measured)
            paper = "" if r.paper is None else (
                f"{r.paper:.3f}" if isinstance(r.paper, float) else str(r.paper)
            )
            lines.append(f"{r.label:<{width}}  {measured:>14}  {paper:>12}  {r.note}")
        return "\n".join(lines)

    def measured_dict(self) -> Dict[str, Any]:
        return {r.label: r.measured for r in self.rows}
