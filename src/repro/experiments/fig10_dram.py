"""Fig. 10 — DRAM bandwidth utilization of MoE kernels vs batch size.

Headline insights: time-weighted memory utilization *decreases* with
batch size (weights amortize over the batch); matmul DRAM% falls while
dequant DRAM% is batch-independent; large batches turn the workload
compute-bound (Takeaway 5).
"""

from __future__ import annotations

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult
from .fig4_stages import BLACKMAMBA_POINTS, MIXTRAL_POINTS, SEQ_LEN


def run(gpu=A40, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("fig10", "DRAM bandwidth utilization of MoE kernels (%)")
    cache = resolve_cache(cache)
    for cfg, points in ((MIXTRAL_8X7B, MIXTRAL_POINTS), (BLACKMAMBA_2_8B, BLACKMAMBA_POINTS)):
        for dense, batch in points:
            trace = cache.trace(cfg, gpu, batch, SEQ_LEN, dense=dense)
            tag = f"{cfg.family}_{'D' if dense else 'S'}{batch}"
            for name, value in sorted(trace.dram_utilization_by_kernel("moe").items()):
                result.add(f"{tag}_{name}", value)
            result.add(f"{tag}_time_weighted", trace.time_weighted_dram("moe"))

    tw_s1 = cache.trace(MIXTRAL_8X7B, gpu, 1, SEQ_LEN, dense=False).time_weighted_dram("moe")
    tw_s32 = cache.trace(MIXTRAL_8X7B, gpu, 32, SEQ_LEN, dense=False).time_weighted_dram("moe")
    result.add("mixtral_tw_dram_drop_s1_to_s32", tw_s1 - tw_s32,
               note="positive: memory-bound -> compute-bound transition")
    return result
