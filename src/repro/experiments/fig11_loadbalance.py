"""Fig. 11 — expert token distribution before and after fine-tuning.

The paper routes 1,000 examples through each model before and after 10
epochs of fine-tuning and reports per-expert token shares and their
variance. To make variances comparable with the paper's 0-100 stacked
axes, loads are expressed as percentage shares across the 8 experts
(uniform = 12.5 each).

Setup detail that matters: production Mixtral is pre-trained balanced
(strong auxiliary loss), BlackMamba visibly less so (the paper's pre-FT
variances: Mixtral 55/21 vs BlackMamba 150/186). We mirror this with a
strong positive aux-loss weight for Mixtral pre-training and a small
*negative* (anti-balancing) weight for BlackMamba, recreating its skewed
pre-trained routing at tiny scale. Fine-tuning then runs without any
balancing term, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..data import build_benchmark_suite, build_pretraining_corpus
from ..models import (
    BLACKMAMBA_TINY,
    BlackMambaModel,
    MIXTRAL_TINY,
    MixtralModel,
    convert_to_qlora,
)
from ..training import FineTuner, measure_load_distribution, pretrain_language_model
from .common import ExperimentResult

PAPER_VARIANCE = {
    "mixtral_hellaswag_pre": 55.5,
    "mixtral_hellaswag_tuned": 112.3,
    "mixtral_gsm8k_pre": 21.2,
    "mixtral_gsm8k_tuned": 79.2,
    "blackmamba_hellaswag_pre": 150.7,
    "blackmamba_hellaswag_tuned": 93.3,
    "blackmamba_gsm8k_pre": 186.5,
    "blackmamba_gsm8k_tuned": 187.9,
}


@dataclass(frozen=True)
class Fig11Scale:
    train_size: int
    probe_queries: int
    pretrain_steps: int
    epochs: int

    @classmethod
    def preset(cls, name: str) -> "Fig11Scale":
        presets = {
            "smoke": cls(train_size=240, probe_queries=120, pretrain_steps=120, epochs=3),
            "bench": cls(train_size=600, probe_queries=300, pretrain_steps=300, epochs=5),
            "full": cls(train_size=1200, probe_queries=1000, pretrain_steps=600, epochs=10),
        }
        return presets[name]


def _share_variance(tokens_per_query: np.ndarray) -> float:
    total = tokens_per_query.sum()
    if total == 0:
        return 0.0
    shares = 100.0 * tokens_per_query / total
    return float(np.var(shares))


def run(scale: str = "bench", seed: int = 7) -> ExperimentResult:
    cfg = Fig11Scale.preset(scale)
    result = ExperimentResult("fig11", f"Expert load distribution pre/post fine-tuning ({scale})")
    suite = build_benchmark_suite(seed=seed, train_size=cfg.train_size, eval_size=60, length_scale=0.2)
    corpus = build_pretraining_corpus(suite.vocab, size=max(800, cfg.train_size))

    arms = [
        ("mixtral", "commonsense15k", "hellaswag", 5e-2),
        ("mixtral", "math14k", "gsm8k", 5e-2),
        ("blackmamba", "commonsense15k", "hellaswag", -0.15),
        ("blackmamba", "math14k", "gsm8k", -0.15),
    ]
    for family, train_key, probe_key, aux_weight in arms:
        rng = np.random.default_rng(seed)
        if family == "mixtral":
            model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
            ft_lr = 8e-3
        else:
            model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
            ft_lr = 2e-3
        model.set_sparsity(dense=False)
        pretrain_language_model(
            model, corpus, steps=cfg.pretrain_steps, batch_size=16,
            learning_rate=3e-3, aux_loss_weight=aux_weight, seed=seed,
        )
        train_ds = suite.train_dataset(train_key)

        pre = measure_load_distribution(model, train_ds, num_queries=cfg.probe_queries, label="pre")
        pre_var = _share_variance(pre.tokens_per_query)

        if family == "mixtral":
            convert_to_qlora(model, rng=rng)
            model.gradient_checkpointing = False
        tuner = FineTuner(model, train_ds, batch_size=16, learning_rate=ft_lr, seed=seed)
        tuner.train(num_epochs=cfg.epochs)

        post = measure_load_distribution(model, train_ds, num_queries=cfg.probe_queries, label="tuned")
        post_var = _share_variance(post.tokens_per_query)

        key = f"{family}_{probe_key}"
        result.add(f"{key}_pre_variance", pre_var, PAPER_VARIANCE[f"{key}_pre"])
        result.add(f"{key}_tuned_variance", post_var, PAPER_VARIANCE[f"{key}_tuned"])
        result.add(f"{key}_variance_delta", post_var - pre_var,
                   note="paper: fine-tuning raises Mixtral imbalance; model/dataset dependent")
        result.metadata[f"{key}_pre_shares"] = (100 * pre.normalized_shares).tolist()
        result.metadata[f"{key}_tuned_shares"] = (100 * post.normalized_shares).tolist()
    return result
