"""Fig. 13 — projected maximum batch size of Mixtral across GPUs.

Fits the paper's Eq. 1 on max-batch observations from the memory oracle
(our stand-in for "measure on four GPUs") and projects to hypothetical
100GB and 120GB GPUs. Both the literal two-coefficient form and the
extended form with a fitted fixed-overhead term are reported; the paper's
own projection line (28 @ 100GB, 35 @ 120GB) implies the large intercept
the extended form recovers.
"""

from __future__ import annotations

from ..core import BatchSizeModel, collect_batch_size_observations
from ..gpu import A40, A100_40, A100_80, H100
from ..memory import max_batch_size
from ..models import MIXTRAL_8X7B, BLACKMAMBA_2_8B
from .common import ExperimentResult

PAPER = {
    "projection_100gb": 28,
    "projection_120gb": 35,
    "mixtral_c1": 0.95,
    "blackmamba_c1": 0.88,
}

SEQ_LEN = 128
SPARSITY = 0.25


def run() -> ExperimentResult:
    result = ExperimentResult("fig13", "Projected max batch size vs GPU memory")
    gpus = [A100_40, A40, A100_80, H100]

    observations = collect_batch_size_observations(MIXTRAL_8X7B, gpus)
    literal = BatchSizeModel.fit(observations)
    extended = BatchSizeModel.fit(observations, fit_overhead=True)

    result.add("mixtral_c1_literal", literal.c1, PAPER["mixtral_c1"])
    result.add("mixtral_c1_extended", extended.c1, PAPER["mixtral_c1"])
    result.add("mixtral_overhead_gb", extended.overhead_gb,
               note="fixed memory beyond weights recovered by the fit")
    result.add("mixtral_rmse_literal", literal.rmse(observations))
    result.add("mixtral_rmse_extended", extended.rmse(observations))

    # Ground truth (oracle) and projection at seq 128, sparse.
    for gpu in gpus:
        result.add(
            f"oracle_{gpu.name}",
            max_batch_size(MIXTRAL_8X7B, gpu, SEQ_LEN, dense=False),
            note="memory-oracle ground truth",
        )
        result.add(f"projected_{gpu.name}", extended.predict(gpu.memory_gb, SEQ_LEN, SPARSITY))
    result.add("projection_100gb", extended.predict(100.0, SEQ_LEN, SPARSITY), PAPER["projection_100gb"])
    result.add("projection_120gb", extended.predict(120.0, SEQ_LEN, SPARSITY), PAPER["projection_120gb"])

    blackmamba_obs = collect_batch_size_observations(BLACKMAMBA_2_8B, gpus)
    blackmamba_fit = BatchSizeModel.fit(blackmamba_obs, fit_overhead=True)
    result.add("blackmamba_c1_extended", blackmamba_fit.c1, PAPER["blackmamba_c1"])
    return result
