"""Fig. 14 — Eq. 2 throughput-model fit and validation on the A40.

Four model x dataset combinations, each fitted over a combined
dense+sparse batch-size sweep executed through the scenario engine; the
paper reports RMSEs of 0.05 / 0.02 / 0.79 / 0.42.
"""

from __future__ import annotations

from ..core import collect_throughput_observations, fit_dense_sparse
from ..gpu import A40
from ..memory import EFFECTIVE_SEQ_LEN
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache
from .common import ExperimentResult

PAPER_RMSE = {
    "mixtral_commonsense15k": 0.05,
    "mixtral_math14k": 0.02,
    "blackmamba_commonsense15k": 0.79,
    "blackmamba_math14k": 0.42,
}


def run(
    gpu=A40,
    form: str = "exponent",
    jobs: int = 1,
    cache: SimulationCache | None = None,
    executor: str = "thread",
) -> ExperimentResult:
    result = ExperimentResult("fig14", f"Eq. 2 throughput fit on {gpu.name}")
    for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
        for dataset in ("commonsense15k", "math14k"):
            seq_len = EFFECTIVE_SEQ_LEN[dataset]
            dense = collect_throughput_observations(
                cfg, gpu, seq_len, dense=True, cache=cache, jobs=jobs,
                executor=executor,
            )
            sparse = collect_throughput_observations(
                cfg, gpu, seq_len, dense=False, cache=cache, jobs=jobs,
                executor=executor,
            )
            model, rmse = fit_dense_sparse(dense, sparse, form=form)
            key = f"{cfg.family}_{dataset}"
            result.add(f"{key}_rmse", rmse, PAPER_RMSE[key])
            result.add(f"{key}_c2", model.c2)
            result.add(f"{key}_c3", model.c3)
            result.add(f"{key}_c4", model.c4,
                       note="intercept ~ batch-1 throughput")
            result.metadata[f"{key}_observations"] = [
                (o.batch_size, o.sparsity, o.throughput_qps) for o in dense + sparse
            ]
    return result
