"""Fig. 15 — Eq. 2 validation on A100-40GB, A100-80GB and H100.

The paper validates the throughput model on Mixtral-CS for three more
GPUs with RMSE <= 0.55. The A100-40GB barely fits Mixtral (free memory
~3GB), so its sweep has very few feasible batch sizes — also visible in
the paper's plot, which only spans small batches for that GPU.
"""

from __future__ import annotations

from ..core import collect_throughput_observations, fit_dense_sparse
from ..gpu import A100_40, A100_80, H100
from ..memory import EFFECTIVE_SEQ_LEN, max_batch_size
from ..models import MIXTRAL_8X7B
from ..scenarios import SimulationCache
from .common import ExperimentResult

PAPER_RMSE = {
    "A100-40GB": 0.03,
    "A100-80GB": 0.09,
    "H100-80GB": 0.55,
}


def run(
    form: str = "exponent",
    jobs: int = 1,
    cache: SimulationCache | None = None,
    executor: str = "thread",
) -> ExperimentResult:
    result = ExperimentResult("fig15", "Eq. 2 throughput fit on other GPUs (Mixtral-CS)")
    seq_len = EFFECTIVE_SEQ_LEN["commonsense15k"]
    for gpu in (A100_40, A100_80, H100):
        dense = collect_throughput_observations(
            MIXTRAL_8X7B, gpu, seq_len, dense=True, cache=cache, jobs=jobs,
            executor=executor,
        )
        sparse = collect_throughput_observations(
            MIXTRAL_8X7B, gpu, seq_len, dense=False, cache=cache, jobs=jobs,
            executor=executor,
        )
        if len(dense) + len(sparse) < 3:
            result.add(f"{gpu.name}_rmse", float("nan"),
                       note="model does not fit on this GPU at this length")
            continue
        model, rmse = fit_dense_sparse(dense, sparse, form=form)
        result.add(f"{gpu.name}_rmse", rmse, PAPER_RMSE[gpu.name])
        result.add(f"{gpu.name}_max_sparse_batch", max_batch_size(MIXTRAL_8X7B, gpu, seq_len, dense=False))
        result.add(f"{gpu.name}_c2", model.c2)
    return result
