"""Fig. 2 — sequence-length distributions of the CS and MATH datasets."""

from __future__ import annotations

import numpy as np

from ..data import SeqLenDistribution
from .common import ExperimentResult

PAPER_MEDIANS = {"commonsense15k": 79.0, "math14k": 174.0}


def run(sample_size: int = 15000, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult("fig2", "Sequence length distributions")
    rng = np.random.default_rng(seed)
    for key, median in PAPER_MEDIANS.items():
        dist = SeqLenDistribution(median=median, sigma=0.45)
        lengths = dist.sample(rng, sample_size)
        counts, edges = dist.histogram(np.random.default_rng(seed + 1), sample_size)
        result.add(f"{key}_median", float(np.median(lengths)), median)
        result.add(f"{key}_p90", float(np.percentile(lengths, 90)),
                   note="right-skewed tail as in the paper's histograms")
        result.add(f"{key}_max_bin_le_400", int(counts.argmax()),
                   note="mode bin index of the 0..400 histogram")
        result.metadata[f"{key}_histogram"] = counts.tolist()
        result.metadata[f"{key}_bin_edges"] = edges.tolist()
    return result
