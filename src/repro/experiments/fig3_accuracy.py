"""Fig. 3 — testing accuracy of dense vs sparse fine-tuning over epochs.

Reproduced at tiny scale on the real training substrate: both model
families are lightly pre-trained on a shadow-world corpus (structural
QA circuits, no evaluation facts — see
:func:`repro.data.datasets.build_pretraining_corpus`), snapshotted, and
then fine-tuned per arm (dense / sparse x commonsense / math) from the
same checkpoint, evaluating after every epoch exactly as the paper does.

Validated claims (shape, not absolute values — the substrate models are
4-6 orders of magnitude smaller than the paper's):

* Takeaway 1: sparse fine-tuning reaches accuracy comparable to dense.
* Takeaway 2: accuracy converges within 10 epochs.
* Pre-fine-tuning baselines are weak (<25% HE, <10% GS).
* Math is the harder task; BlackMamba is inadequate on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..data import build_benchmark_suite, build_pretraining_corpus
from ..models import (
    BLACKMAMBA_TINY,
    BlackMambaModel,
    MIXTRAL_TINY,
    MixtralModel,
    convert_to_qlora,
)
from ..training import FineTuner, evaluate, pretrain_language_model
from .common import ExperimentResult

PAPER_PRE_FT = {"hellaswag": 0.25, "gsm8k": 0.10}  # "under" these values


@dataclass(frozen=True)
class Fig3Scale:
    """Experiment size; `bench` keeps the full grid tractable in CI."""

    train_size: int
    eval_items: int
    pretrain_steps: int
    epochs: int
    length_scale: float = 0.2

    @classmethod
    def preset(cls, name: str) -> "Fig3Scale":
        presets = {
            "smoke": cls(train_size=240, eval_items=40, pretrain_steps=120, epochs=3),
            "bench": cls(train_size=600, eval_items=60, pretrain_steps=400, epochs=6),
            "full": cls(train_size=1200, eval_items=120, pretrain_steps=600, epochs=10),
        }
        if name not in presets:
            raise KeyError(f"unknown preset {name!r}; options: {sorted(presets)}")
        return presets[name]


def _build_pretrained(family: str, scale: Fig3Scale, suite, corpus, seed: int):
    """Pretrain one family once; returns (constructor, state_dict)."""
    rng = np.random.default_rng(seed)
    if family == "mixtral":
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        lr = 3e-3
    else:
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        lr = 3e-3
    model.set_sparsity(dense=False)
    pretrain_language_model(model, corpus, steps=scale.pretrain_steps, batch_size=16, learning_rate=lr, seed=seed)
    return model.state_dict()


def _fresh_model(family: str, state: Dict[str, np.ndarray], dense: bool, seed: int):
    rng = np.random.default_rng(seed)
    if family == "mixtral":
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        model.load_state_dict(state)
        model.set_sparsity(dense=dense)
        convert_to_qlora(model, rng=rng)
        model.gradient_checkpointing = False  # numpy substrate: speed over memory
        return model, 8e-3
    model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
    model.load_state_dict(state)
    model.set_sparsity(dense=dense)
    return model, 2e-3


def run(scale: str = "bench", seed: int = 42) -> ExperimentResult:
    cfg = Fig3Scale.preset(scale)
    result = ExperimentResult("fig3", f"Accuracy vs epoch, dense vs sparse ({scale})")
    suite = build_benchmark_suite(
        seed=seed, train_size=cfg.train_size, eval_size=cfg.eval_items, length_scale=cfg.length_scale
    )
    corpus = build_pretraining_corpus(suite.vocab, size=max(800, cfg.train_size))

    arms = [
        ("mixtral", "commonsense15k", "hellaswag"),
        ("mixtral", "math14k", "gsm8k"),
        ("blackmamba", "commonsense15k", "hellaswag"),
        ("blackmamba", "math14k", "gsm8k"),
    ]
    pretrained: Dict[str, Dict[str, np.ndarray]] = {}
    best: Dict[str, float] = {}
    for family, train_key, eval_key in arms:
        if family not in pretrained:
            pretrained[family] = _build_pretrained(family, cfg, suite, corpus, seed)
        train_ds = suite.train_dataset(train_key)
        eval_ds = suite.eval_dataset(eval_key)
        for dense in (True, False):
            label = f"{family}_{train_key}_{'dense' if dense else 'sparse'}"
            model, lr = _fresh_model(family, pretrained[family], dense, seed + 1)
            pre_acc = evaluate(model, eval_ds, limit=cfg.eval_items)
            tuner = FineTuner(model, train_ds, batch_size=16, learning_rate=lr, seed=seed)
            history = tuner.train(
                num_epochs=cfg.epochs,
                eval_fn=lambda m=model, e=eval_ds: evaluate(m, e, limit=cfg.eval_items),
            )
            curve = [pre_acc] + [m.eval_accuracy for m in history.epochs]
            result.metadata[f"{label}_curve"] = curve
            result.add(f"{label}_pre_acc", pre_acc)
            result.add(f"{label}_best_acc", history.best_accuracy())
            result.add(f"{label}_final_acc", history.final_accuracy)
            best[label] = history.best_accuracy() or 0.0

    # Claim rows.
    for family, train_key, eval_key in arms:
        dense_best = best[f"{family}_{train_key}_dense"]
        sparse_best = best[f"{family}_{train_key}_sparse"]
        result.add(
            f"{family}_{train_key}_sparse_minus_dense",
            sparse_best - dense_best,
            note="Takeaway 1: sparse trains comparably to dense",
        )
    result.add(
        "mixtral_he_pre_ft_below_chance_bound",
        result.row("mixtral_commonsense15k_sparse_pre_acc").measured,
        PAPER_PRE_FT["hellaswag"],
        note="paper: pre-trained baseline under 25% on HE",
    )
    result.add(
        "blackmamba_gs_best",
        best["blackmamba_math14k_sparse"],
        note="paper: BlackMamba inadequate on math",
    )
    return result
