"""Fig. 4 — execution time breakdown into forward/backward/optimizer.

Profiling setup mirrors the paper: sequence length 128; batch size 1 and
the maximum supported batch per configuration, plus the sparse maximum.
"""

from __future__ import annotations

from typing import List, Tuple

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult

SEQ_LEN = 128

# (dense, batch) grid per model family as shown in the figure.
MIXTRAL_POINTS: List[Tuple[bool, int]] = [(True, 1), (True, 10), (False, 1), (False, 10), (False, 32)]
BLACKMAMBA_POINTS: List[Tuple[bool, int]] = [(True, 1), (True, 30), (False, 1), (False, 30), (False, 84)]

# Qualitative reference values stated in the paper's text.
PAPER_BLACKMAMBA_OPT_SHARE_B1 = 0.53  # "up to 53%" at sparse batch size 1


def run(gpu=A40, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("fig4", "Stage breakdown (forward/backward/optimizer)")
    cache = resolve_cache(cache)
    for cfg, points in ((MIXTRAL_8X7B, MIXTRAL_POINTS), (BLACKMAMBA_2_8B, BLACKMAMBA_POINTS)):
        for dense, batch in points:
            trace = cache.trace(cfg, gpu, batch, SEQ_LEN, dense=dense)
            stages = trace.stage_seconds()
            tag = f"{cfg.family}_{'D' if dense else 'S'}{batch}"
            result.add(f"{tag}_forward_s", stages["forward"])
            result.add(f"{tag}_backward_s", stages["backward"])
            result.add(f"{tag}_optimizer_s", stages["optimizer"])
            result.add(
                f"{tag}_bwd_over_fwd",
                stages["backward"] / stages["forward"],
                note="paper: backward typically exceeds forward",
            )
    sparse_b1 = cache.trace(BLACKMAMBA_2_8B, gpu, 1, SEQ_LEN, dense=False).stage_seconds()
    share = sparse_b1["optimizer"] / sum(sparse_b1.values())
    result.add("blackmamba_S1_optimizer_share", share, PAPER_BLACKMAMBA_OPT_SHARE_B1)
    mixtral_b1 = cache.trace(MIXTRAL_8X7B, gpu, 1, SEQ_LEN, dense=False).stage_seconds()
    result.add(
        "mixtral_S1_optimizer_share",
        mixtral_b1["optimizer"] / sum(mixtral_b1.values()),
        note="paper: negligible (LoRA-only updates)",
    )
    return result
