"""Fig. 5 — execution time breakdown by model layer category.

The paper's categories: Mixtral — input normalization, attention,
post-attention normalization, MoE; BlackMamba — RMS layernorm, Mamba,
MoE. Headline claim: the MoE layer averages ~85% of execution time.
"""

from __future__ import annotations

import numpy as np

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult
from .fig4_stages import BLACKMAMBA_POINTS, MIXTRAL_POINTS, SEQ_LEN

PAPER_MOE_SHARE_AVG = 0.85


def run(gpu=A40, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("fig5", "Layer-level time breakdown")
    cache = resolve_cache(cache)
    moe_shares = []
    for cfg, points in ((MIXTRAL_8X7B, MIXTRAL_POINTS), (BLACKMAMBA_2_8B, BLACKMAMBA_POINTS)):
        for dense, batch in points:
            trace = cache.trace(cfg, gpu, batch, SEQ_LEN, dense=dense)
            layers = trace.layer_seconds()
            layers.pop("optimizer", None)
            total = sum(layers.values())
            tag = f"{cfg.family}_{'D' if dense else 'S'}{batch}"
            for layer_name, seconds in sorted(layers.items()):
                result.add(f"{tag}_{layer_name}_share", seconds / total)
            moe_shares.append(trace.moe_fraction())
            result.add(f"{tag}_moe_share", trace.moe_fraction())
    result.add("average_moe_share", float(np.mean(moe_shares)), PAPER_MOE_SHARE_AVG,
               note="paper: MoE accounts for ~85% on average")
    return result
