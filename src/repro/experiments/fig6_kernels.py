"""Fig. 6 — kernel-level breakdown of the MoE layer.

Reports per-layer microseconds for the paper's exact kernel vocabulary,
for both families, across the Fig. 4 batch grid. Headline claims:
matrix multiplications dominate; dequantization is significant for
Mixtral especially at low sparsity/batch.
"""

from __future__ import annotations

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult
from .fig4_stages import BLACKMAMBA_POINTS, MIXTRAL_POINTS, SEQ_LEN

MIXTRAL_KERNELS = (
    "matmul(w2)", "w2_dequant", "matmul(w3)", "w3_dequant", "matmul(w1)",
    "w1_dequant", "softmax", "topk", "matmul(router)", "router_dequant",
)
BLACKMAMBA_KERNELS = (
    "matmul(w1)", "gelu", "matmul(w2)", "elementwise_mult", "top_k",
    "sigmoid", "matmul(router)",
)


def run(gpu=A40, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("fig6", "MoE kernel-level breakdown (us/layer)")
    cache = resolve_cache(cache)
    for cfg, points, kernel_names in (
        (MIXTRAL_8X7B, MIXTRAL_POINTS, MIXTRAL_KERNELS),
        (BLACKMAMBA_2_8B, BLACKMAMBA_POINTS, BLACKMAMBA_KERNELS),
    ):
        for dense, batch in points:
            trace = cache.trace(cfg, gpu, batch, SEQ_LEN, dense=dense)
            table = trace.kernel_seconds_by_name(layer="moe")
            tag = f"{cfg.family}_{'D' if dense else 'S'}{batch}"
            for name in kernel_names:
                result.add(f"{tag}_{name}_us", table.get(name, 0.0) * 1e6)
            matmul_us = sum(v for k, v in table.items() if k.startswith("matmul")) * 1e6
            total_us = sum(table.values()) * 1e6
            result.add(f"{tag}_matmul_share", matmul_us / total_us,
                       note="paper: matmuls are the largest component")
    return result
