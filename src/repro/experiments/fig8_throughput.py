"""Fig. 8 — query throughput across models, datasets and batch sizes."""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..gpu import A40, GPUSimulator
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from .common import ExperimentResult

# Paper values read off Fig. 8 (queries/second).
PAPER: Dict[str, float] = {
    "mixtral_commonsense15k_D1": 0.3,
    "mixtral_commonsense15k_D2": 0.5,
    "mixtral_commonsense15k_S1": 0.3,
    "mixtral_commonsense15k_S2": 0.7,
    "mixtral_commonsense15k_S8": 1.7,
    "mixtral_math14k_D1": 0.3,
    "mixtral_math14k_S1": 0.3,
    "mixtral_math14k_S3": 1.0,
    "blackmamba_commonsense15k_D1": 2.3,
    "blackmamba_commonsense15k_D6": 7.9,
    "blackmamba_commonsense15k_S1": 2.4,
    "blackmamba_commonsense15k_S6": 10.5,
    "blackmamba_commonsense15k_S20": 14.9,
    "blackmamba_math14k_D1": 2.2,
    "blackmamba_math14k_D2": 5.3,
    "blackmamba_math14k_S1": 2.2,
    "blackmamba_math14k_S2": 6.5,
    "blackmamba_math14k_S8": 11.6,
}

GRID: List[Tuple[object, str, bool, int]] = [
    (MIXTRAL_8X7B, "commonsense15k", True, 1),
    (MIXTRAL_8X7B, "commonsense15k", True, 2),
    (MIXTRAL_8X7B, "commonsense15k", False, 1),
    (MIXTRAL_8X7B, "commonsense15k", False, 2),
    (MIXTRAL_8X7B, "commonsense15k", False, 8),
    (MIXTRAL_8X7B, "math14k", True, 1),
    (MIXTRAL_8X7B, "math14k", False, 1),
    (MIXTRAL_8X7B, "math14k", False, 3),
    (BLACKMAMBA_2_8B, "commonsense15k", True, 1),
    (BLACKMAMBA_2_8B, "commonsense15k", True, 6),
    (BLACKMAMBA_2_8B, "commonsense15k", False, 1),
    (BLACKMAMBA_2_8B, "commonsense15k", False, 6),
    (BLACKMAMBA_2_8B, "commonsense15k", False, 20),
    (BLACKMAMBA_2_8B, "math14k", True, 1),
    (BLACKMAMBA_2_8B, "math14k", True, 2),
    (BLACKMAMBA_2_8B, "math14k", False, 1),
    (BLACKMAMBA_2_8B, "math14k", False, 2),
    (BLACKMAMBA_2_8B, "math14k", False, 8),
]

# The paper uses the datasets' real (median) lengths for throughput runs.
THROUGHPUT_SEQ_LEN = {"commonsense15k": 79, "math14k": 174}


def run(gpu=A40) -> ExperimentResult:
    result = ExperimentResult("fig8", "Fine-tuning throughput (queries/second)")
    sim = GPUSimulator(gpu)
    for cfg, dataset, dense, batch in GRID:
        label = f"{cfg.family}_{dataset}_{'D' if dense else 'S'}{batch}"
        qps = sim.throughput(cfg, batch, THROUGHPUT_SEQ_LEN[dataset], dense=dense)
        result.add(label, qps, PAPER.get(label))
    # Headline claims as explicit rows.
    sparse2 = result.row("mixtral_commonsense15k_S2").measured
    dense2 = result.row("mixtral_commonsense15k_D2").measured
    result.add("mixtral_CS_sparse_over_dense_b2", sparse2 / dense2, 0.7 / 0.5,
               note="sparse beats dense at equal batch size")
    s1 = result.row("mixtral_commonsense15k_S1").measured
    s8 = result.row("mixtral_commonsense15k_S8").measured
    result.add("mixtral_CS_s8_speedup_vs_s1", s8 / s1, 1.7 / 0.35,
               note="sub-linear scaling: 8x batch -> <8x throughput")
    return result
