"""Fig. 8 — query throughput across models, datasets and batch sizes.

The measurement grid is expressed as a :class:`ScenarioGrid`: the full
model x dataset x density x batch product narrowed to the cells the
paper actually plots, executed through the shared simulation cache.
"""

from __future__ import annotations

from typing import Dict

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import ScenarioGrid, SimulationCache, SweepRunner, register_preset
from .common import ExperimentResult

# Paper values read off Fig. 8 (queries/second).
PAPER: Dict[str, float] = {
    "mixtral_commonsense15k_D1": 0.3,
    "mixtral_commonsense15k_D2": 0.5,
    "mixtral_commonsense15k_S1": 0.3,
    "mixtral_commonsense15k_S2": 0.7,
    "mixtral_commonsense15k_S8": 1.7,
    "mixtral_math14k_D1": 0.3,
    "mixtral_math14k_S1": 0.3,
    "mixtral_math14k_S3": 1.0,
    "blackmamba_commonsense15k_D1": 2.3,
    "blackmamba_commonsense15k_D6": 7.9,
    "blackmamba_commonsense15k_S1": 2.4,
    "blackmamba_commonsense15k_S6": 10.5,
    "blackmamba_commonsense15k_S20": 14.9,
    "blackmamba_math14k_D1": 2.2,
    "blackmamba_math14k_D2": 5.3,
    "blackmamba_math14k_S1": 2.2,
    "blackmamba_math14k_S2": 6.5,
    "blackmamba_math14k_S8": 11.6,
}

# The paper uses the datasets' real (median) lengths for throughput runs;
# scenarios resolve them from the dataset registry (Table II medians).
THROUGHPUT_SEQ_LEN = {"commonsense15k": 79, "math14k": 174}


def grid(gpu=A40) -> ScenarioGrid:
    """The Fig. 8 measurement grid: full product, narrowed to the plotted
    cells. Grid order equals the figure's row order."""
    result = ScenarioGrid.product(
        models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
        gpus=(gpu,),
        datasets=("commonsense15k", "math14k"),
        dense=(True, False),
        batch_sizes=(1, 2, 3, 6, 8, 20),
    ).filter(lambda s: s.label() in PAPER)
    # Every PAPER cell must survive the product+filter; a new reading
    # whose batch size is missing from the axis would otherwise be
    # dropped silently (explicit raise so `python -O` keeps the guard).
    if len(result) != len(PAPER):
        missing = sorted(set(PAPER) - set(result.labels()))
        raise ValueError(f"PAPER cells missing from the fig8 grid axes: {missing}")
    return result


register_preset("fig8", grid, overwrite=True)  # idempotent across reloads


def run(gpu=A40, jobs: int = 1, cache: SimulationCache | None = None,
        executor: str = "thread") -> ExperimentResult:
    result = ExperimentResult("fig8", "Fine-tuning throughput (queries/second)")
    runner = SweepRunner(cache=cache, jobs=jobs, executor=executor)
    for point in runner.run(grid(gpu)):
        result.add(point.label, point.queries_per_second, PAPER.get(point.label))
    # Headline claims as explicit rows.
    sparse2 = result.row("mixtral_commonsense15k_S2").measured
    dense2 = result.row("mixtral_commonsense15k_D2").measured
    result.add("mixtral_CS_sparse_over_dense_b2", sparse2 / dense2, 0.7 / 0.5,
               note="sparse beats dense at equal batch size")
    s1 = result.row("mixtral_commonsense15k_S1").measured
    s8 = result.row("mixtral_commonsense15k_S8").measured
    result.add("mixtral_CS_s8_speedup_vs_s1", s8 / s1, 1.7 / 0.35,
               note="sub-linear scaling: 8x batch -> <8x throughput")
    return result
