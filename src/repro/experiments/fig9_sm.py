"""Fig. 9 — SM utilization of MoE kernels vs batch size.

Headline insights: SM utilization rises with batch size; sparse runs show
lower utilization than dense at equal batch; dequant stays high
regardless of batch size.
"""

from __future__ import annotations

from ..gpu import A40
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult
from .fig4_stages import BLACKMAMBA_POINTS, MIXTRAL_POINTS, SEQ_LEN


def run(gpu=A40, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("fig9", "SM utilization of MoE kernels (%)")
    cache = resolve_cache(cache)
    for cfg, points in ((MIXTRAL_8X7B, MIXTRAL_POINTS), (BLACKMAMBA_2_8B, BLACKMAMBA_POINTS)):
        for dense, batch in points:
            trace = cache.trace(cfg, gpu, batch, SEQ_LEN, dense=dense)
            tag = f"{cfg.family}_{'D' if dense else 'S'}{batch}"
            for name, value in sorted(trace.sm_utilization_by_kernel("moe").items()):
                result.add(f"{tag}_{name}", value)
            result.add(f"{tag}_time_weighted", trace.time_weighted_sm("moe"))

    # Explicit claim rows (Mixtral).
    sm_s1 = cache.trace(MIXTRAL_8X7B, gpu, 1, SEQ_LEN, dense=False)
    sm_s32 = cache.trace(MIXTRAL_8X7B, gpu, 32, SEQ_LEN, dense=False)
    result.add(
        "mixtral_matmul_w1_rise_s1_to_s32",
        sm_s32.sm_utilization_by_kernel()["matmul(w1)"] - sm_s1.sm_utilization_by_kernel()["matmul(w1)"],
        note="positive: matmul SM% grows with batch",
    )
    dq1 = sm_s1.sm_utilization_by_kernel()["w1_dequant"]
    dq32 = sm_s32.sm_utilization_by_kernel()["w1_dequant"]
    result.add("mixtral_dequant_batch_drift", abs(dq32 - dq1),
               note="near zero: dequant SM% is batch-independent")
    return result
