"""Run the experiment suite through the scenario engine and render a
paper-vs-measured report.

Usage::

    python -m repro.experiments.report             # fast artifacts only
    python -m repro.experiments.report --training  # include Fig. 3 / Fig. 11
    python -m repro.experiments.report --jobs 4    # parallel sweeps
    python -m repro.experiments.report --json      # machine-readable output

The text output mirrors EXPERIMENTS.md: one table per artifact with
measured values next to the paper's published numbers. All simulation
flows through the shared scenario cache, so a second report pass in the
same process performs zero redundant ``simulate_step`` calls.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Any, Dict, List

from ..scenarios import default_cache
from ..serialization import dumps, json_value as _json_value
from . import ALL_EXPERIMENTS
from .common import ExperimentResult

# Artifacts that require tiny-model training (minutes, not seconds).
TRAINING_EXPERIMENTS = ("fig3", "fig11")


def _run_module(module, **kwargs) -> ExperimentResult:
    """Call ``module.run`` with only the kwargs its signature accepts, so
    engine knobs (``jobs``) reach the refactored experiments without
    forcing every module onto one signature."""
    parameters = inspect.signature(module.run).parameters
    return module.run(**{k: v for k, v in kwargs.items() if k in parameters})


def collect_results(
    include_training: bool = False, scale: str = "smoke", jobs: int = 1
) -> Dict[str, ExperimentResult]:
    """Execute the suite; training artifacts only when requested."""
    results: Dict[str, ExperimentResult] = {}
    for key, module in ALL_EXPERIMENTS.items():
        if key in TRAINING_EXPERIMENTS and not include_training:
            continue
        results[key] = _run_module(module, scale=scale, jobs=jobs)
    return results


def report_payload(
    include_training: bool = False, scale: str = "smoke", jobs: int = 1
) -> Dict[str, Any]:
    """The report as a JSON-serializable structure (``--json``)."""
    results = collect_results(include_training=include_training, scale=scale, jobs=jobs)
    experiments = []
    for key, result in results.items():
        experiments.append(
            {
                "id": result.experiment_id,
                "title": result.title,
                "rows": [
                    {
                        "label": row.label,
                        "measured": _json_value(row.measured),
                        "paper": _json_value(row.paper),
                        "note": row.note,
                        "matches_paper": row.matches_paper(),
                    }
                    for row in result.rows
                ],
            }
        )
    stats = default_cache().stats()
    return {
        "experiments": experiments,
        "skipped": [k for k in TRAINING_EXPERIMENTS if k not in results],
        "jobs": jobs,
        "cache": {"hits": stats.hits, "misses": stats.misses, "entries": stats.entries},
    }


def run_report(include_training: bool = False, scale: str = "smoke", jobs: int = 1) -> str:
    """Execute experiments and return the combined report text."""
    results = collect_results(include_training=include_training, scale=scale, jobs=jobs)
    sections: List[str] = []
    for key in ALL_EXPERIMENTS:
        if key not in results:
            sections.append(f"== {key}: skipped (rerun with --training) ==")
            continue
        result = results[key]
        matched = sum(1 for r in result.rows if r.matches_paper() is True)
        compared = sum(1 for r in result.rows if r.matches_paper() is not None)
        sections.append(result.to_table())
        if compared:
            sections.append(f"   -> {matched}/{compared} paper-comparable rows within 50%")
    stats = default_cache().stats()
    sections.append(
        f"== scenario cache: {stats.hits} hits / {stats.misses} misses "
        f"({stats.entries} traces) =="
    )
    return "\n\n".join(sections)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--training", action="store_true",
                        help="also run the training-based experiments (Fig. 3, Fig. 11)")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "bench", "full"),
                        help="size preset for the training experiments")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker threads for the scenario sweeps (default 1; "
                             "thread-based, so wall-clock gains are GIL-limited "
                             "until a process-pool executor lands)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of tables")
    args = parser.parse_args(argv)
    if args.as_json:
        payload = report_payload(include_training=args.training, scale=args.scale,
                                 jobs=args.jobs)
        print(dumps(payload, indent=2))
    else:
        print(run_report(include_training=args.training, scale=args.scale, jobs=args.jobs))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
