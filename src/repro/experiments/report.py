"""Run the experiment suite and render a paper-vs-measured report.

Usage::

    python -m repro.experiments.report            # fast artifacts only
    python -m repro.experiments.report --training # include Fig. 3 / Fig. 11

The output mirrors EXPERIMENTS.md: one table per artifact with measured
values next to the paper's published numbers.
"""

from __future__ import annotations

import argparse
from typing import List

from . import ALL_EXPERIMENTS

# Artifacts that require tiny-model training (minutes, not seconds).
TRAINING_EXPERIMENTS = ("fig3", "fig11")


def run_report(include_training: bool = False, scale: str = "smoke") -> str:
    """Execute experiments and return the combined report text."""
    sections: List[str] = []
    for key, module in ALL_EXPERIMENTS.items():
        if key in TRAINING_EXPERIMENTS:
            if not include_training:
                sections.append(f"== {key}: skipped (rerun with --training) ==")
                continue
            result = module.run(scale=scale)
        else:
            result = module.run()
        matched = sum(1 for r in result.rows if r.matches_paper() is True)
        compared = sum(1 for r in result.rows if r.matches_paper() is not None)
        sections.append(result.to_table())
        if compared:
            sections.append(f"   -> {matched}/{compared} paper-comparable rows within 50%")
    return "\n\n".join(sections)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--training", action="store_true",
                        help="also run the training-based experiments (Fig. 3, Fig. 11)")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "bench", "full"),
                        help="size preset for the training experiments")
    args = parser.parse_args(argv)
    print(run_report(include_training=args.training, scale=args.scale))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
