"""Run the experiment suite through the scenario engine and render a
paper-vs-measured report.

Usage::

    python -m repro.experiments.report             # fast artifacts only
    python -m repro.experiments.report --training  # include Fig. 3 / Fig. 11
    python -m repro.experiments.report --jobs 4    # parallel sweeps
    python -m repro.experiments.report --jobs 4 --executor process
    python -m repro.experiments.report --cache-dir ~/.cache/repro-traces
    python -m repro.experiments.report --json      # machine-readable output

The text output mirrors EXPERIMENTS.md: one table per artifact with
measured values next to the paper's published numbers. All simulation
flows through the shared scenario cache, so a second report pass in the
same process performs zero redundant ``simulate_step`` calls — and with
``--cache-dir`` (or ``$REPRO_CACHE_DIR``) the cache gains a disk tier,
so a second report *process* starts warm too. ``--executor process``
fans the sweeps over a process pool whose workers share that store; the
report is byte-identical at any job count and executor.

``--telemetry``/``--telemetry-out``/``--run-store`` trace the run
(phase tree, JSONL event log, append-only run store for
``python -m repro.telemetry.analyze``/``compare``); see
:mod:`repro.telemetry.cli` for the shared contract.
"""

from __future__ import annotations

import argparse
import inspect
from typing import Any, Dict, List

from ..scenarios import default_cache, resolve_store
from ..serialization import dumps, json_value as _json_value
from ..telemetry import (
    add_telemetry_arguments,
    begin_telemetry,
    default_tracer,
    finish_telemetry,
)
from . import ALL_EXPERIMENTS
from .common import ExperimentResult

# Artifacts that require tiny-model training (minutes, not seconds).
TRAINING_EXPERIMENTS = ("fig3", "fig11")


def _run_module(module, **kwargs) -> ExperimentResult:
    """Call ``module.run`` with only the kwargs its signature accepts, so
    engine knobs (``jobs``) reach the refactored experiments without
    forcing every module onto one signature."""
    parameters = inspect.signature(module.run).parameters
    return module.run(**{k: v for k, v in kwargs.items() if k in parameters})


def collect_results(
    include_training: bool = False,
    scale: str = "smoke",
    jobs: int = 1,
    executor: str = "thread",
) -> Dict[str, ExperimentResult]:
    """Execute the suite; training artifacts only when requested."""
    results: Dict[str, ExperimentResult] = {}
    tracer = default_tracer()
    with tracer.span("report.collect", scale=scale):
        for key, module in ALL_EXPERIMENTS.items():
            if key in TRAINING_EXPERIMENTS and not include_training:
                continue
            with tracer.span(f"experiment.{key}"):
                results[key] = _run_module(
                    module, scale=scale, jobs=jobs, executor=executor
                )
    return results


def report_payload(
    include_training: bool = False,
    scale: str = "smoke",
    jobs: int = 1,
    executor: str = "thread",
) -> Dict[str, Any]:
    """The report as a JSON-serializable structure (``--json``).

    Everything in the payload is independent of ``jobs`` and
    ``executor`` (cache telemetry included — process-pool sweeps replay
    their accounting in grid order), so the JSON report is byte-identical
    at any parallelism setting.
    """
    results = collect_results(include_training=include_training, scale=scale,
                              jobs=jobs, executor=executor)
    experiments = []
    for key, result in results.items():
        experiments.append(
            {
                "id": result.experiment_id,
                "title": result.title,
                "rows": [
                    {
                        "label": row.label,
                        "measured": _json_value(row.measured),
                        "paper": _json_value(row.paper),
                        "note": row.note,
                        "matches_paper": row.matches_paper(),
                    }
                    for row in result.rows
                ],
            }
        )
    stats = default_cache().stats()
    return {
        "experiments": experiments,
        "skipped": [k for k in TRAINING_EXPERIMENTS if k not in results],
        "cache": {"hits": stats.hits, "misses": stats.misses,
                  "disk_hits": stats.disk_hits, "entries": stats.entries},
    }


def run_report(
    include_training: bool = False,
    scale: str = "smoke",
    jobs: int = 1,
    executor: str = "thread",
) -> str:
    """Execute experiments and return the combined report text."""
    results = collect_results(include_training=include_training, scale=scale,
                              jobs=jobs, executor=executor)
    sections: List[str] = []
    for key in ALL_EXPERIMENTS:
        if key not in results:
            sections.append(f"== {key}: skipped (rerun with --training) ==")
            continue
        result = results[key]
        matched = sum(1 for r in result.rows if r.matches_paper() is True)
        compared = sum(1 for r in result.rows if r.matches_paper() is not None)
        sections.append(result.to_table())
        if compared:
            sections.append(f"   -> {matched}/{compared} paper-comparable rows within 50%")
    stats = default_cache().stats()
    sections.append(
        f"== scenario cache: {stats.hits} hits / {stats.disk_hits} disk hits / "
        f"{stats.misses} misses ({stats.entries} traces, "
        f"{stats.simulations} simulations) =="
    )
    return "\n\n".join(sections)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--training", action="store_true",
                        help="also run the training-based experiments (Fig. 3, Fig. 11)")
    parser.add_argument("--scale", default="smoke", choices=("smoke", "bench", "full"),
                        help="size preset for the training experiments")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="sweep workers (default 1); with --executor thread "
                             "gains are GIL-limited, with --executor process the "
                             "sweeps use real cores")
    parser.add_argument("--executor", choices=("thread", "process"), default="thread",
                        help="sweep executor for --jobs > 1 (default: thread); "
                             "process workers share the --cache-dir store")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-backed trace store; report runs start warm from "
                             "it and warm it for the next run (default: "
                             "$REPRO_CACHE_DIR if set, else no persistence)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of tables")
    add_telemetry_arguments(parser)
    args = parser.parse_args(argv)
    # Attach the disk tier to the process-global cache so every consumer
    # (including experiments that don't take a cache argument) inherits it.
    default_cache().attach_store(resolve_store(args.cache_dir))
    begin_telemetry(args)
    if args.as_json:
        payload = report_payload(include_training=args.training, scale=args.scale,
                                 jobs=args.jobs, executor=args.executor)
        block = finish_telemetry(args, "repro.experiments.report", default_cache())
        if block is not None:
            payload["telemetry"] = block
        print(dumps(payload, indent=2))
    else:
        print(run_report(include_training=args.training, scale=args.scale,
                         jobs=args.jobs, executor=args.executor))
        finish_telemetry(args, "repro.experiments.report", default_cache())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
