"""Section IV-B6 — sensitivity of fine-tuning to sequence length.

The paper sweeps sequence lengths {64, 128, 256, 512, 1024}, at each
length choosing the batch size that fills GPU memory, and reports that
(a) Mixtral latency stays nearly constant (token budget per step is
memory-limited and roughly constant), (b) BlackMamba latency *drops*
~19-25% at long lengths, and (c) throughput is higher for shorter
sequences. The figure was omitted from the paper for space; we reproduce
the numbers.
"""

from __future__ import annotations

from typing import List

from ..gpu import A40
from ..memory import max_batch_size
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import SimulationCache, resolve_cache
from .common import ExperimentResult

SEQ_LENS: List[int] = [64, 128, 256, 512, 1024]


def run(gpu=A40, dense: bool = False, cache: SimulationCache | None = None) -> ExperimentResult:
    result = ExperimentResult("seqlen", "Sequence-length sensitivity at max batch size")
    cache = resolve_cache(cache)
    for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
        latencies = {}
        for seq_len in SEQ_LENS:
            batch = max_batch_size(cfg, gpu, seq_len, dense=dense)
            if batch < 1:
                result.add(f"{cfg.family}_seq{seq_len}_latency_s", float("nan"),
                           note="does not fit at batch size 1 (memory oracle)")
                continue
            trace = cache.trace(cfg, gpu, batch, seq_len, dense=dense)
            latencies[seq_len] = trace.total_seconds
            result.add(f"{cfg.family}_seq{seq_len}_batch", batch)
            result.add(f"{cfg.family}_seq{seq_len}_latency_s", trace.total_seconds)
            result.add(f"{cfg.family}_seq{seq_len}_tput_qps", trace.queries_per_second)
            result.add(f"{cfg.family}_seq{seq_len}_tokens_per_step", batch * seq_len)
        if len(latencies) >= 2:
            seqs = sorted(latencies)
            ratio = latencies[seqs[-1]] / latencies[seqs[0]]
            result.add(f"{cfg.family}_latency_ratio_longest_over_shortest", ratio,
                       note="paper: ~1.0 for Mixtral, ~0.75-0.81 for BlackMamba")
    return result
