"""Spot-market risk planning — preemption-aware cost beyond Eq. 2.

Not a paper artifact: the paper's Eq. 2 prices uninterrupted on-demand
hours. This experiment runs the Table IV workload (Mixtral sparse on
MATH-14k x 10 epochs) through the risk-adjusted planner and reports what
the spot tier changes: the expected saving of the recommendation, the
makespan inflation preemptions cause, the closed-form-vs-Monte-Carlo
agreement the subsystem is validated on, and the completion probability
backing the ">= 95% chance of finishing in 24 h" constraint. Reference
values are the model's own structural claims, not published numbers.
"""

from __future__ import annotations

from ..gpu import A40, H100
from ..scenarios import SimulationCache
from ..spot import ONDEMAND, SPOT, RiskAdjustedPlanner
from .common import ExperimentResult

DEADLINE_HOURS = 24.0
CONFIDENCE = 0.95
EPOCHS = 10
TRIALS = 256  # enough for stable p50/p95 at report speed


def run(jobs: int = 1, cache: SimulationCache | None = None,
        executor: str = "thread") -> ExperimentResult:
    result = ExperimentResult(
        "spot", "Spot risk plan: Mixtral sparse, MATH-14k (risk-adjusted Pareto)"
    )
    # risk_mode="both": percentiles come from the analytic serving path
    # while the batched Monte Carlo still runs, so the closed-form-vs-MC
    # agreement row below keeps validating the model every report pass.
    planner = RiskAdjustedPlanner(
        "mixtral-8x7b", dataset="math14k", epochs=EPOCHS, cache=cache, jobs=jobs,
        executor=executor, trials=TRIALS, risk_mode="both",
    )
    plan = planner.plan_spot(
        gpus=(A40, H100),
        providers=("cudo",),
        densities=(False,),
        deadline_hours=DEADLINE_HOURS,
        confidence=CONFIDENCE,
    )
    result.add("num_candidates", len(plan.candidates))
    result.add("num_spot_candidates", len(plan.spot_candidates))
    result.add("num_feasible", len(plan.feasible))
    result.add("risk_frontier_size", len(plan.frontier))
    assert plan.recommended is not None
    rec = plan.recommended
    result.add("recommended", rec.label,
               note=f"E[${rec.expected_dollars:.2f}] in E[{rec.expected_hours:.2f} h]")
    result.add("recommended_completion_probability", rec.completion_probability,
               note=f"target >= {CONFIDENCE} within {DEADLINE_HOURS:g} h")

    # Structural claims of the risk model, as explicit rows:
    # 1. Spot is admitted only when it saves money in expectation, so the
    #    recommendation never costs more than the best on-demand pick.
    cheapest_ondemand = min(
        (c for c in plan.candidates if c.tier == ONDEMAND),
        key=lambda c: c.expected_dollars,
    )
    result.add("recommended_saving_vs_ondemand",
               cheapest_ondemand.expected_dollars - rec.expected_dollars,
               note="spot discount net of preemption risk (>= 0 by construction)")
    # 2. Preemptions stretch the clock: every spot candidate's expected
    #    makespan is at least its uninterrupted one.
    spot = plan.spot_candidates
    inflation = max(c.expected_hours / c.ondemand_hours for c in spot)
    result.add("max_makespan_inflation", inflation,
               note="worst E[makespan] / on-demand makespan across spot candidates")
    # 3. The Monte Carlo validates the closed form: the sampled mean must
    #    track the analytical expectation on every candidate. (The p50
    #    acceptance check lives with the default-preset CLI tests, where
    #    jobs are long enough for the median to approach the mean; short
    #    jobs are legitimately skewed by the preemption tail.)
    mean_agreement = max(
        abs(c.mc_mean_hours - c.expected_hours) / c.expected_hours for c in spot
    )
    result.add("max_mc_mean_vs_closed_form", mean_agreement,
               note="sampled mean vs analytical expectation, all spot candidates")
    # 4. Cadences are Daly's closed-form optimum sqrt(2*MTBP*C) per
    #    candidate (no menu was given), so they shrink as the fleet
    #    hazard grows with cluster size.
    cadence_by_size = {}
    for c in spot:
        cadence_by_size.setdefault(c.scenario.num_gpus, c.policy.interval_minutes)
    sizes = sorted(cadence_by_size)
    result.add("daly_cadence_minutes_x1", cadence_by_size[sizes[0]],
               note="sqrt(2*MTBP*C) at the smallest fleet")
    result.add("daly_cadence_minutes_x8", cadence_by_size[sizes[-1]],
               note="fleet hazard up -> optimal cadence down")
    result.metadata["deadline_hours"] = DEADLINE_HOURS
    result.metadata["confidence"] = CONFIDENCE
    result.metadata["excluded"] = list(plan.excluded)
    result.metadata["skipped"] = list(plan.ondemand.skipped)
    return result
