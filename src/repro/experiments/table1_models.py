"""Table I — LLM model inventory (params, memory, layer counts)."""

from __future__ import annotations

from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B, model_memory_gb, param_breakdown
from .common import ExperimentResult

PAPER = {
    "mixtral_params_b": 47.0,
    "mixtral_memory_gb": 23.35,
    "mixtral_layers": 32,
    "mixtral_moe_experts": 8,
    "blackmamba_params_b": 2.8,
    "blackmamba_memory_gb": 5.6,
    "blackmamba_layers": 18,
    "blackmamba_moe_experts": 8,
}


def run() -> ExperimentResult:
    result = ExperimentResult("table1", "LLM model inventory")
    mixtral = param_breakdown(MIXTRAL_8X7B)
    result.add("mixtral_params_b", mixtral.total / 1e9, PAPER["mixtral_params_b"])
    result.add("mixtral_memory_gb", model_memory_gb(MIXTRAL_8X7B), PAPER["mixtral_memory_gb"])
    result.add("mixtral_layers", MIXTRAL_8X7B.num_layers, PAPER["mixtral_layers"])
    result.add("mixtral_moe_experts", MIXTRAL_8X7B.moe.num_experts, PAPER["mixtral_moe_experts"])

    blackmamba = param_breakdown(BLACKMAMBA_2_8B)
    result.add("blackmamba_params_b", blackmamba.total / 1e9, PAPER["blackmamba_params_b"])
    result.add("blackmamba_memory_gb", model_memory_gb(BLACKMAMBA_2_8B), PAPER["blackmamba_memory_gb"])
    result.add("blackmamba_layers", BLACKMAMBA_2_8B.num_layers, PAPER["blackmamba_layers"])
    result.add("blackmamba_moe_experts", BLACKMAMBA_2_8B.moe.num_experts, PAPER["blackmamba_moe_experts"])
    return result
