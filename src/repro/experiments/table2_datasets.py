"""Table II / Fig. 2 — dataset statistics and sequence-length medians."""

from __future__ import annotations

from ..data import DATASET_STATS, build_benchmark_suite
from .common import ExperimentResult


def run(sample_size: int = 4000, seed: int = 0) -> ExperimentResult:
    """Build the synthetic datasets and compare medians to Table II."""
    result = ExperimentResult("table2", "Dataset statistics")
    suite = build_benchmark_suite(seed=seed, train_size=sample_size, eval_size=max(200, sample_size // 10))
    for key, dataset in (
        ("commonsense15k", suite.commonsense15k),
        ("math14k", suite.math14k),
    ):
        stats = DATASET_STATS[key]
        result.add(f"{key}_median_seq_len", dataset.median_seq_len(), float(stats.median_seq_len))
        result.add(f"{key}_paper_num_queries", stats.num_queries, stats.num_queries,
                   note="generator supports full paper-scale count")
    for key in ("hellaswag", "gsm8k"):
        stats = DATASET_STATS[key]
        result.add(f"{key}_paper_num_queries", stats.num_queries, stats.num_queries)
        result.add(f"{key}_median_seq_len", float(stats.median_seq_len), float(stats.median_seq_len),
                   note="eval datasets generated at the paper's median")
    return result
