"""Table III — maximum batch sizes on the A40 for all model/dataset/sparsity
combinations, enumerated as a scenario grid over the memory oracle."""

from __future__ import annotations

from ..gpu import A40
from ..memory import max_batch_size_for_dataset
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from ..scenarios import ScenarioGrid, register_preset
from .common import ExperimentResult

PAPER = {
    ("mixtral", "commonsense15k", True): 2,
    ("mixtral", "commonsense15k", False): 8,
    ("mixtral", "math14k", True): 1,
    ("mixtral", "math14k", False): 3,
    ("blackmamba", "commonsense15k", True): 6,
    ("blackmamba", "commonsense15k", False): 20,
    ("blackmamba", "math14k", True): 2,
    ("blackmamba", "math14k", False): 8,
}


def grid(gpu=A40) -> ScenarioGrid:
    """Every Table III cell; the batch axis is degenerate because the
    oracle determines the batch size."""
    return ScenarioGrid.product(
        models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
        gpus=(gpu,),
        datasets=("commonsense15k", "math14k"),
        dense=(True, False),
    )


register_preset("table3", grid, overwrite=True)  # idempotent across reloads


def run() -> ExperimentResult:
    result = ExperimentResult("table3", "Maximum batch size on A40 (48GB)")
    for scenario in grid():
        cfg = scenario.config
        label = f"{cfg.family}_{scenario.dataset}_{'dense' if scenario.dense else 'sparse'}"
        measured = max_batch_size_for_dataset(
            cfg, scenario.gpu_spec, scenario.dataset, dense=scenario.dense
        )
        result.add(label, measured, PAPER[(cfg.family, scenario.dataset, scenario.dense)])
    return result
