"""Table III — maximum batch sizes on the A40 for all model/dataset/sparsity
combinations."""

from __future__ import annotations

from ..gpu import A40
from ..memory import max_batch_size_for_dataset
from ..models import BLACKMAMBA_2_8B, MIXTRAL_8X7B
from .common import ExperimentResult

PAPER = {
    ("mixtral", "commonsense15k", True): 2,
    ("mixtral", "commonsense15k", False): 8,
    ("mixtral", "math14k", True): 1,
    ("mixtral", "math14k", False): 3,
    ("blackmamba", "commonsense15k", True): 6,
    ("blackmamba", "commonsense15k", False): 20,
    ("blackmamba", "math14k", True): 2,
    ("blackmamba", "math14k", False): 8,
}


def run() -> ExperimentResult:
    result = ExperimentResult("table3", "Maximum batch size on A40 (48GB)")
    for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
        for dataset in ("commonsense15k", "math14k"):
            for dense in (True, False):
                label = f"{cfg.family}_{dataset}_{'dense' if dense else 'sparse'}"
                measured = max_batch_size_for_dataset(cfg, A40, dataset, dense=dense)
                result.add(label, measured, PAPER[(cfg.family, dataset, dense)])
    return result
