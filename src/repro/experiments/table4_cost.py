"""Table IV — estimated dollar cost of fine-tuning Mixtral (sparse).

Note on the paper's setup: Table IV is captioned "on GS" but its numbers
are only consistent with the MATH-14k query count (140k queries over 10
epochs at ~1 q/s is ~38h = ~$30 on the A40; the GS set's 1.3k queries
would cost ~$3). We therefore reproduce it as: batch size and throughput
at the GS sequence length, total queries from MATH-14k x 10 epochs. The
OpenOrca projection scales the same model to a 2M-query corpus.

The cost model runs its Eq. 2 calibration sweeps through the shared
simulation cache.
"""

from __future__ import annotations

from ..cloud import DEFAULT_CATALOG
from ..core import FineTuningCostModel, dataset_num_queries
from ..gpu import A40, A100_80, H100
from ..models import MIXTRAL_8X7B
from ..scenarios import SimulationCache
from .common import ExperimentResult

PAPER = {
    "A40": {"mbs": 4, "tput": 1.01, "price": 0.79, "cost": 32.7},
    "A100-80GB": {"mbs": 17, "tput": 2.74, "price": 1.67, "cost": 25.4},
    "H100-80GB": {"mbs": 17, "tput": 4.90, "price": 2.10, "cost": 17.9},
}
PAPER_OPENORCA_COST = 3460.0
EPOCHS = 10
GPU_CANDIDATES = (A40, A100_80, H100)


def run(jobs: int = 1, cache: SimulationCache | None = None,
        executor: str = "thread") -> ExperimentResult:
    result = ExperimentResult("table4", "Cost of fine-tuning Mixtral (sparse)")
    cost_model = FineTuningCostModel.for_dataset(
        MIXTRAL_8X7B, "gsm8k", dense=False, cache=cache, jobs=jobs, executor=executor
    )
    num_queries = dataset_num_queries("math14k")
    estimates = cost_model.rank_gpus(GPU_CANDIDATES, num_queries, epochs=EPOCHS)
    for estimate in estimates:
        paper = PAPER[estimate.gpu_name]
        result.add(f"{estimate.gpu_name}_mbs", estimate.max_batch_size, paper["mbs"])
        result.add(f"{estimate.gpu_name}_tput", estimate.throughput_qps, paper["tput"])
        result.add(f"{estimate.gpu_name}_price", estimate.dollars_per_hour, paper["price"])
        result.add(f"{estimate.gpu_name}_cost", estimate.dollars, paper["cost"])
    result.add("cheapest_gpu", estimates[0].gpu_name, "H100-80GB",
               note="paper: H100 is the most cost-effective option")

    # OpenOrca (2M queries) projection on the H100.
    orca_model = FineTuningCostModel.for_dataset(
        MIXTRAL_8X7B, "openorca", dense=False, cache=cache, jobs=jobs, executor=executor
    )
    orca = orca_model.estimate(H100, dataset_num_queries("openorca"), epochs=EPOCHS)
    result.add("openorca_h100_cost", orca.dollars, PAPER_OPENORCA_COST)
    result.metadata["catalog_providers"] = DEFAULT_CATALOG.providers()
    return result
