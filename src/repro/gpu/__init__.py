"""GPU execution simulator (substrate S8) — the paper's hardware stand-in."""

from .kernels import BACKWARD, FORWARD, KIND_PROFILES, Kernel, KernelKind, KindProfile, OPTIMIZER, STAGES
from .roofline import (
    COMPUTE_BOUND,
    KernelTiming,
    MEMORY_BOUND,
    OVERHEAD_BOUND,
    time_kernel,
    time_kernels,
    time_weighted_dram,
    time_weighted_sm,
)
from .multigpu import (
    DataParallelSimulator,
    INTERCONNECTS,
    Interconnect,
    MultiGPUEstimate,
    NVLINK,
    PCIE_GEN4,
    estimate_from_trace,
    get_interconnect,
    multi_gpu_cost_dollars,
    trainable_gradient_bytes,
)
from .simulator import DEFAULT_OVERHEADS, GPUSimulator, SoftwareOverhead
from .specs import A40, A100_40, A100_80, GPU_REGISTRY, GPUSpec, H100, get_gpu
from .trace import StepTrace
from .workload import blackmamba_step_kernels, experts_touched, mixtral_step_kernels

__all__ = [
    "A40",
    "A100_40",
    "A100_80",
    "BACKWARD",
    "COMPUTE_BOUND",
    "DEFAULT_OVERHEADS",
    "DataParallelSimulator",
    "FORWARD",
    "INTERCONNECTS",
    "Interconnect",
    "MultiGPUEstimate",
    "NVLINK",
    "PCIE_GEN4",
    "estimate_from_trace",
    "get_interconnect",
    "multi_gpu_cost_dollars",
    "trainable_gradient_bytes",
    "GPU_REGISTRY",
    "GPUSimulator",
    "GPUSpec",
    "H100",
    "KIND_PROFILES",
    "Kernel",
    "KernelKind",
    "KernelTiming",
    "KindProfile",
    "MEMORY_BOUND",
    "OPTIMIZER",
    "OVERHEAD_BOUND",
    "STAGES",
    "SoftwareOverhead",
    "StepTrace",
    "blackmamba_step_kernels",
    "experts_touched",
    "get_gpu",
    "mixtral_step_kernels",
    "time_kernel",
    "time_kernels",
    "time_weighted_dram",
    "time_weighted_sm",
]
