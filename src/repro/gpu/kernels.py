"""Kernel descriptions and per-kind execution profiles.

A :class:`Kernel` is a pure work description — floating-point operations,
bytes moved, and shape hints — produced by the workload builders in
:mod:`repro.gpu.workload`. The :class:`KindProfile` table encodes how each
kernel *class* behaves on a GPU:

* ``compute_eff`` — achievable fraction of the relevant peak throughput at
  full occupancy (tensor-core matmuls reach ~85%, elementwise ~60%, ...).
* ``mem_eff`` — achievable fraction of DRAM bandwidth.
* ``uses_tensor_cores`` — whether the compute bound uses FP16 tensor-core
  peak or the FP32/ALU peak.
* ``rows_half_sat`` — matmul efficiency grows with the GEMM M-dimension
  (rows per expert): small-batch fine-tuning under-fills tensor-core
  tiles. Efficiency scales as ``m / (m + rows_half_sat)``, which is what
  produces the paper's Fig. 9 "SM utilization rises with batch size" and
  the throughput saturation behind Eq. 2's logarithmic shape.
* ``issue_floor`` — minimum SM busy fraction for kernels that saturate
  instruction-issue pipelines while waiting on memory. NF4 dequantization
  is the canonical case: Fig. 9 shows it at high SM utilization regardless
  of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict


class KernelKind(Enum):
    MATMUL = "matmul"
    DEQUANT = "dequant"
    ELEMENTWISE = "elementwise"
    SOFTMAX = "softmax"
    TOPK = "topk"
    NORM = "norm"
    ATTENTION = "attention"
    SCAN = "scan"
    OPTIMIZER = "optimizer"


@dataclass(frozen=True)
class KindProfile:
    """Efficiency characteristics of one kernel class."""

    compute_eff: float
    mem_eff: float
    uses_tensor_cores: bool = False
    rows_half_sat: float = 0.0  # 0 disables row-saturation scaling
    issue_floor: float = 0.0


# Values marked (fitted) were calibrated once against the paper's measured
# A40/A100/H100 throughput and stage shares (see EXPERIMENTS.md).
KIND_PROFILES: Dict[KernelKind, KindProfile] = {
    KernelKind.MATMUL: KindProfile(
        compute_eff=0.85, mem_eff=0.80, uses_tensor_cores=True, rows_half_sat=448.0  # (fitted)
    ),
    KernelKind.DEQUANT: KindProfile(compute_eff=0.50, mem_eff=0.75, issue_floor=0.78),
    KernelKind.ELEMENTWISE: KindProfile(compute_eff=0.60, mem_eff=0.85, issue_floor=0.30),
    KernelKind.SOFTMAX: KindProfile(compute_eff=0.40, mem_eff=0.70, issue_floor=0.20),
    KernelKind.TOPK: KindProfile(compute_eff=0.25, mem_eff=0.50, issue_floor=0.15),
    KernelKind.NORM: KindProfile(compute_eff=0.45, mem_eff=0.80, issue_floor=0.25),
    KernelKind.ATTENTION: KindProfile(
        compute_eff=0.70, mem_eff=0.80, uses_tensor_cores=True, rows_half_sat=256.0
    ),
    KernelKind.SCAN: KindProfile(compute_eff=0.30, mem_eff=0.60, issue_floor=0.35),
    KernelKind.OPTIMIZER: KindProfile(compute_eff=0.50, mem_eff=0.65, issue_floor=0.20),  # (fitted)
}

FORWARD = "forward"
BACKWARD = "backward"
OPTIMIZER = "optimizer"

STAGES = (FORWARD, BACKWARD, OPTIMIZER)


@dataclass(frozen=True)
class Kernel:
    """One launched kernel: pure work description, no timing.

    Attributes
    ----------
    name:
        Display name following the paper's Fig. 6 vocabulary
        (``matmul(w1)``, ``w1_dequant``, ``topk``, ...).
    kind:
        Execution class used to look up the :class:`KindProfile`.
    flops:
        Floating-point operations (multiply-accumulate counted as 2).
    bytes:
        Total DRAM traffic, reads plus writes.
    rows:
        GEMM M-dimension hint (tokens per expert) for row-saturation
        scaling; 0 for non-matmul kernels.
    layer:
        Layer category for the Fig. 5 breakdown (``moe``, ``attention``,
        ``mamba``, ``norm``...).
    stage:
        ``forward`` / ``backward`` / ``optimizer`` (Fig. 4 breakdown).
    count:
        Number of identical launches folded into this record (e.g. one
        per decoder layer).
    eff_scale:
        Extra multiplier on achievable compute efficiency. Used to model
        the measured slowness of NF4-quantized GEMMs (bitsandbytes-style
        kernels run well below plain fp16 GEMM efficiency).
    """

    name: str
    kind: KernelKind
    flops: float
    bytes: float
    rows: float = 0.0
    layer: str = "other"
    stage: str = FORWARD
    count: int = 1
    eff_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.flops < 0 or self.bytes < 0:
            raise ValueError(f"kernel {self.name}: negative work ({self.flops}, {self.bytes})")
        if self.stage not in STAGES:
            raise ValueError(f"kernel {self.name}: unknown stage {self.stage!r}")
        if self.count < 1:
            raise ValueError(f"kernel {self.name}: count must be >= 1")

    @property
    def profile(self) -> KindProfile:
        return KIND_PROFILES[self.kind]
