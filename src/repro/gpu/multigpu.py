"""Multi-GPU collectives cost model (the paper's stated future work).

The paper closes with: "extending this model to multi-GPU systems is left
for future exploration." This module provides the communication substrate
for that extension: an :class:`Interconnect` prices the three ring
collectives every distributed-training layout is built from —

* **all-reduce** — ``2 * (N-1)/N * payload`` per GPU on the wire (the
  data-parallel gradient sync and the tensor-parallel activation sync);
* **all-gather** / **reduce-scatter** — each half of an all-reduce,
  ``(N-1)/N * payload`` per GPU (sharded-state layouts reassemble
  parameters and scatter gradient shards with these); a ring all-reduce
  is exactly a reduce-scatter followed by an all-gather.

The :mod:`repro.gpu.parallelism` strategy classes consume these
collectives to turn a cached per-device step trace into cluster-level
throughput. Two consequences the data-parallel model captures:

1. QLoRA fine-tuning data-parallelizes almost perfectly — its gradient
   set (LoRA adapters, ~0.9 GB for Mixtral) is tiny, so the all-reduce is
   negligible next to multi-second steps.
2. Full fine-tuning of BlackMamba moves 5.6 GB of gradients per step, so
   scaling efficiency degrades visibly on PCIe-class interconnects.

Under pure data parallelism memory is unchanged per GPU (every replica
holds the full state), so the single-GPU max batch size applies per
device; tensor parallelism shards state and work instead (see
:mod:`repro.gpu.parallelism` and the per-shard mode of
:mod:`repro.memory.estimator`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..models.config import BlackMambaConfig, MixtralConfig
from ..models.params import lora_adapter_parameters, param_breakdown
from .simulator import GPUSimulator, SoftwareOverhead
from .specs import GPUSpec

ModelConfig = Union[MixtralConfig, BlackMambaConfig]

# Per-parameter gradient payload on the wire (fp16 gradients).
GRADIENT_BYTES_PER_PARAM = 2.0


@dataclass(frozen=True)
class Interconnect:
    """GPU-to-GPU link used by the gradient all-reduce."""

    name: str
    bandwidth_gbs: float  # effective per-GPU all-reduce bandwidth
    latency_us: float = 20.0

    def allreduce_seconds(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring all-reduce time for ``payload_bytes`` across ``num_gpus``."""
        if num_gpus <= 1:
            return 0.0
        wire = 2.0 * (num_gpus - 1) / num_gpus * payload_bytes
        return wire / (self.bandwidth_gbs * 1e9) + 2 * (num_gpus - 1) * self.latency_us * 1e-6

    def allgather_seconds(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring all-gather time: each GPU receives the other shards of a
        ``payload_bytes`` tensor, ``(N-1)/N * payload`` on the wire."""
        if num_gpus <= 1:
            return 0.0
        wire = (num_gpus - 1) / num_gpus * payload_bytes
        return wire / (self.bandwidth_gbs * 1e9) + (num_gpus - 1) * self.latency_us * 1e-6

    def reducescatter_seconds(self, payload_bytes: float, num_gpus: int) -> float:
        """Ring reduce-scatter time: each GPU ends with its reduced shard
        of a ``payload_bytes`` tensor — the mirror image of all-gather, so
        the cost is identical and ``reduce-scatter + all-gather`` composes
        to exactly :meth:`allreduce_seconds`."""
        return self.allgather_seconds(payload_bytes, num_gpus)


PCIE_GEN4 = Interconnect("PCIe-Gen4", bandwidth_gbs=24.0)
NVLINK = Interconnect("NVLink", bandwidth_gbs=225.0)

INTERCONNECTS: Dict[str, Interconnect] = {
    "nvlink": NVLINK,
    "pcie-gen4": PCIE_GEN4,
}


def get_interconnect(name: Union[str, Interconnect]) -> Interconnect:
    """Resolve an interconnect by registry key or display name
    (case-insensitive); :class:`Interconnect` values pass through so ad-hoc
    links participate like ad-hoc GPU specs do."""
    if isinstance(name, Interconnect):
        return name
    lowered = name.lower()
    if lowered in INTERCONNECTS:
        return INTERCONNECTS[lowered]
    for link in INTERCONNECTS.values():
        if link.name.lower() == lowered:
            return link
    raise KeyError(f"unknown interconnect {name!r}; available: {sorted(INTERCONNECTS)}")


def trainable_gradient_bytes(cfg: ModelConfig) -> float:
    """Bytes of gradients synchronized per step under the paper's recipes."""
    if isinstance(cfg, MixtralConfig):
        return GRADIENT_BYTES_PER_PARAM * lora_adapter_parameters(cfg)
    return GRADIENT_BYTES_PER_PARAM * param_breakdown(cfg).total


@dataclass
class MultiGPUEstimate:
    """Cluster throughput estimate under one parallelism layout.

    The default field values describe pure data parallelism, so
    estimates built before the strategy layer existed compare equal to
    today's :class:`~repro.gpu.parallelism.DataParallel` output.
    """

    num_gpus: int
    per_gpu_batch: int  # per-device (per-TP-group) micro-batch
    step_seconds: float  # one full optimizer step, communication included
    allreduce_seconds: float  # the data-parallel gradient sync
    queries_per_second: float
    scaling_efficiency: float  # vs num_gpus x single-GPU throughput
    tensor_parallel: int = 1
    grad_accum: int = 1
    tp_comm_seconds: float = 0.0  # activation syncs per optimizer step

    @property
    def data_parallel(self) -> int:
        """Data-parallel ways: replica groups synced by the all-reduce."""
        return self.num_gpus // self.tensor_parallel


def estimate_from_trace(cfg: ModelConfig, trace, num_gpus: int,
                        interconnect: Interconnect,
                        strategy=None) -> MultiGPUEstimate:
    """Cluster estimate from an already-simulated per-device step trace.

    Without a ``strategy`` (or with the default data-parallel one) this
    is the original data-parallel model, bit for bit: every replica runs
    the identical per-device step, so one trace serves all cluster sizes
    — the cluster layer exploits this to scale a sweep from 1 to N GPUs
    without re-simulating the replica. A non-default
    :class:`~repro.gpu.parallelism.ParallelismStrategy` dispatches to its
    own collectives math (and expects the trace matching its layout —
    sharded for tensor parallelism).
    """
    if num_gpus < 1:
        raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
    if strategy is not None and not strategy.is_default:
        return strategy.estimate(cfg, trace, num_gpus, interconnect)
    comm = interconnect.allreduce_seconds(trainable_gradient_bytes(cfg), num_gpus)
    # Communication overlaps poorly with the tail of backward in naive
    # DDP over small adapter sets; model it as serialized.
    step = trace.total_seconds + comm
    throughput = num_gpus * trace.batch_size / step
    single = trace.queries_per_second
    efficiency = throughput / (num_gpus * single) if single > 0 else 0.0
    return MultiGPUEstimate(
        num_gpus=num_gpus,
        per_gpu_batch=trace.batch_size,
        step_seconds=step,
        allreduce_seconds=comm,
        queries_per_second=throughput,
        scaling_efficiency=efficiency,
    )


class DataParallelSimulator:
    """Data-parallel fine-tuning on ``num_gpus`` identical devices."""

    def __init__(
        self,
        gpu: GPUSpec,
        interconnect: Interconnect = NVLINK,
        overheads: Optional[Dict[str, SoftwareOverhead]] = None,
    ) -> None:
        self.gpu = gpu
        self.interconnect = interconnect
        self._single = GPUSimulator(gpu, overheads=overheads)

    def estimate(
        self,
        cfg: ModelConfig,
        per_gpu_batch: int,
        seq_len: int,
        num_gpus: int,
        dense: bool = False,
        **overrides,
    ) -> MultiGPUEstimate:
        if num_gpus < 1:
            raise ValueError(f"num_gpus must be >= 1, got {num_gpus}")
        trace = self._single.simulate_step(cfg, per_gpu_batch, seq_len, dense=dense, **overrides)
        return estimate_from_trace(cfg, trace, num_gpus, self.interconnect)

    def scaling_curve(
        self,
        cfg: ModelConfig,
        per_gpu_batch: int,
        seq_len: int,
        max_gpus: int = 8,
        dense: bool = False,
    ) -> Dict[int, MultiGPUEstimate]:
        return {
            n: self.estimate(cfg, per_gpu_batch, seq_len, n, dense=dense)
            for n in range(1, max_gpus + 1)
        }


def multi_gpu_cost_dollars(
    estimate: MultiGPUEstimate,
    num_queries: int,
    epochs: int,
    dollars_per_gpu_hour: float,
) -> float:
    """Total rental cost: N GPUs for the (shorter) wall-clock duration."""
    if estimate.queries_per_second <= 0:
        return float("inf")
    hours = num_queries * epochs / estimate.queries_per_second / 3600.0
    return hours * dollars_per_gpu_hour * estimate.num_gpus
