"""Parallelism strategies: how a fine-tuning job is laid out on GPUs.

A :class:`ParallelismStrategy` turns a cached *per-device* step trace
into a cluster-level throughput estimate by pricing the collectives the
layout needs on an :class:`~repro.gpu.multigpu.Interconnect`:

* :class:`DataParallel` — every GPU holds a full replica; one gradient
  all-reduce of the trainable parameters per optimizer step. With
  ``grad_accum == 1`` this is bit-identical to the original
  :func:`~repro.gpu.multigpu.estimate_from_trace` model.
* :class:`TensorParallel` — each layer's weights (and optimizer moments)
  are sharded across ``degree`` GPUs; every micro-batch pays two
  activation synchronizations per layer in forward and backward
  (Megatron-style, expressed as reduce-scatter + all-gather). GPUs
  beyond the TP degree form data-parallel groups, so one class covers
  pure TP (``degree == num_gpus``) and hybrid TP x DP; the gradient
  all-reduce then moves the *sharded* payload across the DP groups.
* the ``grad_accum`` axis (on either strategy) — run ``k`` micro-batches
  per optimizer step, trading per-device micro-batch for global batch at
  fixed memory while amortizing the optimizer update and gradient sync.

The per-device trace a strategy consumes must match its layout: tensor
parallelism simulates the *sharded* per-device workload (the scenario
layer keys those traces by the ``tensor_parallel`` workload override),
data parallelism the full replica. Strategies are frozen and hashable so
they can ride on scenarios and in cache keys.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import ClassVar, Tuple, Union

from .kernels import OPTIMIZER
from .multigpu import (
    Interconnect,
    ModelConfig,
    MultiGPUEstimate,
    estimate_from_trace as _data_parallel_estimate,
    trainable_gradient_bytes,
)
from .trace import StepTrace

# Activations cross TP sync points in fp16.
ACTIVATION_BYTES = 2.0

# Megatron-style sync points: one after the attention/mixer block and one
# after the FFN/MoE block, mirrored in backward.
TP_SYNCS_PER_LAYER = 2


@dataclass(frozen=True)
class ParallelismStrategy:
    """Pure data parallelism with an optional gradient-accumulation axis.

    Subclasses extend the layout; this base *is* the data-parallel
    strategy (:class:`DataParallel` is an alias-by-inheritance so specs
    read naturally).
    """

    grad_accum: int = 1

    kind: ClassVar[str] = "dp"

    def __post_init__(self) -> None:
        if self.grad_accum < 1:
            raise ValueError(f"grad_accum must be >= 1, got {self.grad_accum}")

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    @property
    def tensor_parallel(self) -> int:
        """TP degree; 1 means every GPU holds a full replica."""
        return 1

    @property
    def is_default(self) -> bool:
        """True for plain data parallelism without accumulation — the
        pre-strategy behavior every legacy artifact was produced with."""
        return self.tensor_parallel == 1 and self.grad_accum == 1

    def data_parallel_ways(self, num_gpus: int) -> int:
        return num_gpus // self.tensor_parallel

    def validate(self, num_gpus: int) -> None:
        """Reject layouts the cluster size cannot host."""
        t = self.tensor_parallel
        if num_gpus < t or num_gpus % t != 0:
            raise ValueError(
                f"tensor-parallel degree {t} does not divide num_gpus={num_gpus}"
            )

    def fits(self, num_gpus: int) -> bool:
        t = self.tensor_parallel
        return num_gpus >= t and num_gpus % t == 0

    def spec(self) -> str:
        """Canonical spelling, parseable by :func:`get_strategy`."""
        head = f"tp{self.tensor_parallel}" if self.tensor_parallel > 1 else "dp"
        return head if self.grad_accum == 1 else f"{head}-ga{self.grad_accum}"

    def global_batch_size(self, num_gpus: int, per_device_batch: int) -> int:
        """Queries contributing to one optimizer step across the fleet."""
        return self.data_parallel_ways(num_gpus) * self.grad_accum * per_device_batch

    # ------------------------------------------------------------------
    # Estimation
    # ------------------------------------------------------------------
    def _micro_and_optimizer_seconds(self, trace: StepTrace) -> Tuple[float, float]:
        """Split the per-device trace into the part every micro-batch
        repeats (forward + backward + host overhead) and the optimizer
        update paid once per accumulated step."""
        optimizer = trace.stage_seconds()[OPTIMIZER]
        return trace.total_seconds - optimizer, optimizer

    def estimate(
        self,
        cfg: ModelConfig,
        trace: StepTrace,
        num_gpus: int,
        interconnect: Interconnect,
    ) -> MultiGPUEstimate:
        """Cluster throughput from the per-device trace."""
        if self.is_default:
            return _data_parallel_estimate(cfg, trace, num_gpus, interconnect)
        self.validate(num_gpus)
        k = self.grad_accum
        micro, optimizer = self._micro_and_optimizer_seconds(trace)
        comm = interconnect.allreduce_seconds(trainable_gradient_bytes(cfg), num_gpus)
        compute = k * micro + optimizer
        step = compute + comm
        queries = num_gpus * k * trace.batch_size
        return MultiGPUEstimate(
            num_gpus=num_gpus,
            per_gpu_batch=trace.batch_size,
            step_seconds=step,
            allreduce_seconds=comm,
            queries_per_second=queries / step,
            scaling_efficiency=compute / step,
            tensor_parallel=1,
            grad_accum=k,
        )


class DataParallel(ParallelismStrategy):
    """Named alias of the base strategy: full replicas, gradient
    all-reduce, optional gradient accumulation."""


@dataclass(frozen=True)
class TensorParallel(ParallelismStrategy):
    """Megatron-style tensor parallelism, hybrid with DP beyond ``degree``."""

    degree: int = 2

    kind: ClassVar[str] = "tp"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.degree < 2:
            raise ValueError(
                f"TensorParallel degree must be >= 2 (use DataParallel), got {self.degree}"
            )

    @property
    def tensor_parallel(self) -> int:
        return self.degree

    def tp_comm_seconds_per_micro_batch(
        self, cfg: ModelConfig, trace: StepTrace, interconnect: Interconnect
    ) -> float:
        """Activation synchronization one micro-batch pays: two sync
        points per layer in forward, mirrored in backward, each a
        reduce-scatter + all-gather of the fp16 activations."""
        payload = ACTIVATION_BYTES * trace.batch_size * trace.seq_len * cfg.dim
        sync = interconnect.reducescatter_seconds(
            payload, self.degree
        ) + interconnect.allgather_seconds(payload, self.degree)
        return 2 * TP_SYNCS_PER_LAYER * cfg.num_layers * sync

    def estimate(
        self,
        cfg: ModelConfig,
        trace: StepTrace,
        num_gpus: int,
        interconnect: Interconnect,
    ) -> MultiGPUEstimate:
        """``trace`` must be the *sharded* per-device step (simulated with
        the ``tensor_parallel`` workload override at this degree)."""
        self.validate(num_gpus)
        t, k = self.degree, self.grad_accum
        dp_ways = num_gpus // t
        micro, optimizer = self._micro_and_optimizer_seconds(trace)
        tp_comm = self.tp_comm_seconds_per_micro_batch(cfg, trace, interconnect)
        # The DP gradient sync moves each group's *shard* of the
        # trainable gradients across the data-parallel groups.
        grad_comm = interconnect.allreduce_seconds(
            trainable_gradient_bytes(cfg) / t, dp_ways
        )
        compute = k * micro + optimizer
        step = compute + k * tp_comm + grad_comm
        queries = dp_ways * k * trace.batch_size
        return MultiGPUEstimate(
            num_gpus=num_gpus,
            per_gpu_batch=trace.batch_size,
            step_seconds=step,
            allreduce_seconds=grad_comm,
            queries_per_second=queries / step,
            scaling_efficiency=compute / step,
            tensor_parallel=t,
            grad_accum=k,
            tp_comm_seconds=k * tp_comm,
        )


DATA_PARALLEL = DataParallel()

_SPEC_RE = re.compile(r"^(?:dp|tp(?P<tp>[1-9]\d*))(?:-ga(?P<ga>[1-9]\d*))?$")


def get_strategy(spec: Union[str, ParallelismStrategy]) -> ParallelismStrategy:
    """Resolve a strategy spelling — ``"dp"``, ``"tp4"``, ``"dp-ga8"``,
    ``"tp4-ga2"`` (case-insensitive) — to a strategy instance; instances
    pass through so ad-hoc strategies participate like ad-hoc GPU specs.
    ``"tp1"`` normalizes to data parallelism."""
    if isinstance(spec, ParallelismStrategy):
        return spec
    match = _SPEC_RE.match(spec.lower())
    if match is None:
        raise KeyError(
            f"unknown parallelism strategy {spec!r}; expected 'dp', 'tpN' or "
            f"an optional '-gaK' suffix (e.g. 'tp4-ga2')"
        )
    grad_accum = int(match.group("ga") or 1)
    degree = int(match.group("tp") or 1)
    if degree == 1:
        return DataParallel(grad_accum=grad_accum)
    return TensorParallel(grad_accum=grad_accum, degree=degree)


def tp_degrees(max_tp: int) -> Tuple[int, ...]:
    """The tensor-parallel degrees the planner enumerates: powers of two
    in ``[2, max_tp]`` (degree 1 is the data-parallel strategy)."""
    if max_tp < 1:
        raise ValueError(f"max_tp must be >= 1, got {max_tp}")
    degrees = []
    degree = 2
    while degree <= max_tp:
        degrees.append(degree)
        degree *= 2
    return tuple(degrees)
