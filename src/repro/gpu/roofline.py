"""Roofline + occupancy timing model for simulated kernels.

For each kernel we compute a compute-bound time and a memory-bound time
and take the maximum (classic roofline), with two refinements that drive
the paper's observed behaviours:

1. **Row saturation** — tensor-core efficiency scales with the GEMM
   M-dimension (``rows / (rows + rows_half_sat)``). Small batches leave
   tensor-core tiles under-filled, which is exactly why the paper sees low
   SM utilization and sub-linear throughput at small batch sizes, and why
   throughput saturates at large ones (Takeaway 5 / Eq. 2's log shape).
2. **Issue floor** — instruction-dense but memory-bound kernels (NF4
   dequant above all) keep SM issue pipelines busy while waiting on DRAM,
   so their reported SM utilization stays high and batch-independent
   (Fig. 9 insight 3).

Reported metrics mirror Nsight Compute's:

* ``sm_utilization`` ≈ achieved compute throughput as % of peak, floored
  by the issue-busy term;
* ``dram_utilization`` ≈ achieved DRAM traffic as % of peak bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .kernels import Kernel
from .specs import GPUSpec

COMPUTE_BOUND = "compute"
MEMORY_BOUND = "memory"
OVERHEAD_BOUND = "overhead"


@dataclass(frozen=True)
class KernelTiming:
    """Timing and utilization for one (possibly folded) kernel launch."""

    kernel: Kernel
    seconds: float  # total for all `count` launches
    sm_utilization: float  # percent of SM throughput, time-weighted basis
    dram_utilization: float  # percent of peak DRAM bandwidth
    bound: str

    @property
    def name(self) -> str:
        return self.kernel.name

    @property
    def microseconds_per_launch(self) -> float:
        return self.seconds / self.kernel.count * 1e6


def _row_efficiency(kernel: Kernel) -> float:
    half_sat = kernel.profile.rows_half_sat
    if half_sat <= 0 or kernel.rows <= 0:
        return 1.0
    return kernel.rows / (kernel.rows + half_sat)


def time_kernel(kernel: Kernel, spec: GPUSpec) -> KernelTiming:
    """Roofline-time one kernel on ``spec``."""
    profile = kernel.profile
    peak_flops = spec.peak_fp16_flops if profile.uses_tensor_cores else spec.peak_fp32_flops
    row_eff = _row_efficiency(kernel)
    effective_compute = peak_flops * profile.compute_eff * row_eff * kernel.eff_scale
    effective_bandwidth = spec.peak_bandwidth * profile.mem_eff

    t_compute = kernel.flops / effective_compute if kernel.flops > 0 else 0.0
    t_memory = kernel.bytes / effective_bandwidth if kernel.bytes > 0 else 0.0
    t_overhead = spec.kernel_overhead_us * 1e-6
    t_work = max(t_compute, t_memory)
    per_launch = t_work + t_overhead

    if t_work <= t_overhead:
        bound = OVERHEAD_BOUND
    elif t_compute >= t_memory:
        bound = COMPUTE_BOUND
    else:
        bound = MEMORY_BOUND

    # Nsight-style utilization percentages.
    achieved_compute = kernel.flops / per_launch / peak_flops if per_launch > 0 else 0.0
    sm_util = max(achieved_compute, profile.issue_floor * min(1.0, t_memory / per_launch if per_launch else 0.0))
    if bound == COMPUTE_BOUND:
        # A compute-bound kernel keeps its SMs busy for the whole duration;
        # achieved FLOP fraction is scaled down by tile under-fill.
        sm_util = max(sm_util, profile.compute_eff * row_eff * (t_compute / per_launch))
    dram_util = kernel.bytes / per_launch / spec.peak_bandwidth if per_launch > 0 else 0.0

    return KernelTiming(
        kernel=kernel,
        seconds=per_launch * kernel.count,
        sm_utilization=100.0 * min(1.0, sm_util),
        dram_utilization=100.0 * min(1.0, dram_util),
        bound=bound,
    )


def time_kernels(kernels: List[Kernel], spec: GPUSpec) -> List[KernelTiming]:
    return [time_kernel(k, spec) for k in kernels]


def time_weighted_sm(timings: List[KernelTiming]) -> float:
    """Aggregate SM utilization weighted by kernel time (Fig. 9's last bar)."""
    total = sum(t.seconds for t in timings)
    if total == 0:
        return 0.0
    return sum(t.sm_utilization * t.seconds for t in timings) / total


def time_weighted_dram(timings: List[KernelTiming]) -> float:
    """Aggregate DRAM utilization weighted by kernel time (Fig. 10)."""
    total = sum(t.seconds for t in timings)
    if total == 0:
        return 0.0
    return sum(t.dram_utilization * t.seconds for t in timings) / total
