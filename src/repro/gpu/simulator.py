"""The GPU fine-tuning simulator — hardware substitute for the paper's A40.

Combines the workload builders (kernel inventories) with the roofline
timing model and a per-family software-overhead calibration into step
traces. Throughput, stage/layer/kernel breakdowns and SM/DRAM utilization
all come from the same trace, mirroring how the paper derives its Figs.
4-6 and 8-10 from one profiled run.

Calibration: GPU kernels explain only part of a measured fine-tuning
iteration; the PyTorch/LLaMA-Factory host stack adds per-launch and
per-step overheads that dominate at batch size 1. ``SoftwareOverhead``
captures this with two constants per model family, fitted once against
the paper's A40 throughput figures (Fig. 8) and documented in
EXPERIMENTS.md. The same constants are used for *all* GPUs, batch sizes
and datasets — nothing else is tuned per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..models.config import BlackMambaConfig, MixtralConfig
from .kernels import Kernel
from .roofline import time_kernels
from .specs import GPUSpec
from .trace import StepTrace
from .workload import blackmamba_step_kernels, mixtral_step_kernels

ModelConfig = Union[MixtralConfig, BlackMambaConfig]


@dataclass(frozen=True)
class SoftwareOverhead:
    """Host-side time not explained by GPU kernels.

    ``per_step_s`` covers optimizer bookkeeping, data movement and Python
    dispatch per iteration; ``per_launch_us`` covers framework overhead per
    kernel launch (scheduling, autograd bookkeeping) beyond the raw CUDA
    launch latency already in :class:`GPUSpec`; ``per_token_us`` covers
    work that scales with tokens but is not captured by the kernel model
    (tokenization, unfused glue ops, routing bookkeeping on the host).
    """

    per_step_s: float = 0.05
    per_launch_us: float = 25.0
    per_token_us: float = 0.0


# Fitted once against the paper's Fig. 8 / Table IV throughput points
# (21 points, log-RMSE 0.19; see EXPERIMENTS.md for the residual table).
DEFAULT_OVERHEADS: Dict[str, SoftwareOverhead] = {
    "mixtral": SoftwareOverhead(per_step_s=0.033, per_launch_us=8.1, per_token_us=1069.0),
    "blackmamba": SoftwareOverhead(per_step_s=0.045, per_launch_us=114.3, per_token_us=310.3),
}


class GPUSimulator:
    """Simulates fine-tuning steps of a model config on a GPU spec."""

    def __init__(
        self,
        gpu: GPUSpec,
        overheads: Optional[Dict[str, SoftwareOverhead]] = None,
    ) -> None:
        self.gpu = gpu
        self.overheads = dict(DEFAULT_OVERHEADS if overheads is None else overheads)

    # ------------------------------------------------------------------
    def _build_kernels(
        self,
        cfg: ModelConfig,
        batch_size: int,
        seq_len: int,
        dense: bool,
        **overrides,
    ) -> List[Kernel]:
        if isinstance(cfg, MixtralConfig):
            return mixtral_step_kernels(cfg, batch_size, seq_len, dense=dense, **overrides)
        if isinstance(cfg, BlackMambaConfig):
            return blackmamba_step_kernels(cfg, batch_size, seq_len, dense=dense, **overrides)
        raise TypeError(f"unsupported config type {type(cfg).__name__}")

    def simulate_step(
        self,
        cfg: ModelConfig,
        batch_size: int,
        seq_len: int,
        dense: bool = False,
        label: str = "",
        **overrides,
    ) -> StepTrace:
        """Time one fine-tuning iteration. ``overrides`` pass through to
        the workload builder (e.g. ``quantized=False`` for a
        no-quantization ablation of Mixtral)."""
        kernels = self._build_kernels(cfg, batch_size, seq_len, dense, **overrides)
        timings = time_kernels(kernels, self.gpu)
        overhead_cfg = self.overheads.get(cfg.family, SoftwareOverhead())
        launches = sum(k.count for k in kernels)
        software = (
            overhead_cfg.per_step_s
            + launches * overhead_cfg.per_launch_us * 1e-6
            + batch_size * seq_len * overhead_cfg.per_token_us * 1e-6
        )
        return StepTrace(
            gpu=self.gpu,
            batch_size=batch_size,
            seq_len=seq_len,
            dense=dense,
            timings=timings,
            software_overhead_seconds=software,
            label=label or f"{cfg.name}",
        )

    # ------------------------------------------------------------------
    def throughput(
        self,
        cfg: ModelConfig,
        batch_size: int,
        seq_len: int,
        dense: bool = False,
        **overrides,
    ) -> float:
        """Steady-state fine-tuning throughput in queries/second."""
        return self.simulate_step(cfg, batch_size, seq_len, dense=dense, **overrides).queries_per_second

    def throughput_sweep(
        self,
        cfg: ModelConfig,
        batch_sizes: List[int],
        seq_len: int,
        dense: bool = False,
        **overrides,
    ) -> Dict[int, float]:
        """Throughput at several batch sizes (the data behind Figs. 14/15)."""
        return {
            b: self.throughput(cfg, b, seq_len, dense=dense, **overrides) for b in batch_sizes
        }
