"""GPU hardware specifications.

The paper profiles on an NVIDIA A40 and validates its analytical model on
A100-40GB, A100-80GB and H100. These specs drive the roofline kernel
model: peak tensor-core FP16 throughput bounds compute-limited kernels,
DRAM bandwidth bounds memory-limited kernels, FP32/ALU throughput bounds
elementwise kernels, and SM count sets the occupancy scale.

Published numbers (NVIDIA datasheets, dense — not sparsity-doubled):

========== ====== ========== ======= ========== ==========
GPU        Memory Bandwidth  SMs     FP16 TC    FP32
========== ====== ========== ======= ========== ==========
A40        48 GB  696 GB/s   84      149.7 TF   37.4 TF
A100-40GB  40 GB  1555 GB/s  108     312 TF     19.5 TF
A100-80GB  80 GB  1935 GB/s  108     312 TF     19.5 TF
H100-80GB  80 GB  3350 GB/s  132     989.4 TF   66.9 TF
========== ====== ========== ======= ========== ==========
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict


@dataclass(frozen=True)
class GPUSpec:
    """Hardware parameters of one GPU model."""

    name: str
    memory_gb: float  # capacity in decimal GB (paper convention)
    mem_bandwidth_gbs: float  # peak DRAM bandwidth, GB/s
    sm_count: int
    fp16_tflops: float  # dense tensor-core peak
    fp32_tflops: float  # CUDA-core peak (bounds elementwise/ALU kernels)
    kernel_overhead_us: float = 6.0  # launch + sync latency per kernel

    @property
    def memory_bytes(self) -> float:
        return self.memory_gb * 1e9

    @property
    def peak_fp16_flops(self) -> float:
        return self.fp16_tflops * 1e12

    @property
    def peak_fp32_flops(self) -> float:
        return self.fp32_tflops * 1e12

    @property
    def peak_bandwidth(self) -> float:
        return self.mem_bandwidth_gbs * 1e9

    def with_memory(self, memory_gb: float, name: str = "") -> "GPUSpec":
        """A hypothetical variant with different capacity (Fig. 13's
        100GB/120GB future-GPU projection)."""
        return replace(self, memory_gb=memory_gb, name=name or f"{self.name}-{memory_gb:.0f}GB")


A40 = GPUSpec("A40", 48.0, 696.0, 84, 149.7, 37.4)
A100_40 = GPUSpec("A100-40GB", 40.0, 1555.0, 108, 312.0, 19.5)
A100_80 = GPUSpec("A100-80GB", 80.0, 1935.0, 108, 312.0, 19.5)
H100 = GPUSpec("H100-80GB", 80.0, 3350.0, 132, 989.4, 66.9)

GPU_REGISTRY: Dict[str, GPUSpec] = {
    spec.name: spec for spec in (A40, A100_40, A100_80, H100)
}


def get_gpu(name: str) -> GPUSpec:
    if name not in GPU_REGISTRY:
        raise KeyError(f"unknown GPU {name!r}; available: {sorted(GPU_REGISTRY)}")
    return GPU_REGISTRY[name]
