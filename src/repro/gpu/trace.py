"""Step traces: aggregation views over timed kernels.

A :class:`StepTrace` is the simulator's answer for one fine-tuning step.
Aggregations mirror the paper's figures: stage totals (Fig. 4), layer
totals (Fig. 5), per-kernel MoE breakdown (Fig. 6), per-kernel and
time-weighted SM/DRAM utilization (Figs. 9, 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from .kernels import BACKWARD, FORWARD, OPTIMIZER
from .roofline import KernelTiming, time_weighted_dram, time_weighted_sm
from .specs import GPUSpec


@dataclass
class StepTrace:
    """All timed kernels of one simulated fine-tuning step."""

    gpu: GPUSpec
    batch_size: int
    seq_len: int
    dense: bool
    timings: List[KernelTiming]
    software_overhead_seconds: float = 0.0
    label: str = ""

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def kernel_seconds(self) -> float:
        return sum(t.seconds for t in self.timings)

    @property
    def total_seconds(self) -> float:
        return self.kernel_seconds + self.software_overhead_seconds

    @property
    def queries_per_second(self) -> float:
        """Fine-tuning throughput in the paper's metric."""
        if self.total_seconds <= 0:
            return 0.0
        return self.batch_size / self.total_seconds

    # ------------------------------------------------------------------
    # Fig. 4: stage breakdown
    # ------------------------------------------------------------------
    def stage_seconds(self) -> Dict[str, float]:
        stages = {FORWARD: 0.0, BACKWARD: 0.0, OPTIMIZER: 0.0}
        for t in self.timings:
            stages[t.kernel.stage] += t.seconds
        # Host-side overhead is spread proportionally over fwd/bwd.
        compute = stages[FORWARD] + stages[BACKWARD]
        if compute > 0 and self.software_overhead_seconds > 0:
            for stage in (FORWARD, BACKWARD):
                stages[stage] += self.software_overhead_seconds * stages[stage] / compute
        return stages

    # ------------------------------------------------------------------
    # Fig. 5: layer breakdown
    # ------------------------------------------------------------------
    def layer_seconds(self) -> Dict[str, float]:
        layers: Dict[str, float] = {}
        for t in self.timings:
            layers[t.kernel.layer] = layers.get(t.kernel.layer, 0.0) + t.seconds
        return layers

    def moe_fraction(self) -> float:
        """Share of layer time spent in the MoE layer (paper: ~85%)."""
        layers = self.layer_seconds()
        layers.pop("optimizer", None)
        total = sum(layers.values())
        if total == 0:
            return 0.0
        return layers.get("moe", 0.0) / total

    # ------------------------------------------------------------------
    # Fig. 6: per-kernel breakdown within one layer category
    # ------------------------------------------------------------------
    def kernel_seconds_by_name(self, layer: Optional[str] = None, per_layer: bool = True) -> Dict[str, float]:
        """Seconds per kernel name (fwd+bwd combined, as in Fig. 6).

        With ``per_layer=True`` the totals are divided by the launch count
        so the numbers read as microsecond-scale per-layer costs.
        """
        out: Dict[str, float] = {}
        for t in self.timings:
            if layer is not None and t.kernel.layer != layer:
                continue
            value = t.seconds / (t.kernel.count if per_layer else 1)
            out[t.kernel.name] = out.get(t.kernel.name, 0.0) + value
        return out

    # ------------------------------------------------------------------
    # Figs. 9 / 10: utilization tables
    # ------------------------------------------------------------------
    def _utilization(self, metric: str, layer: Optional[str]) -> Dict[str, float]:
        groups: Dict[str, List[KernelTiming]] = {}
        for t in self.timings:
            if layer is not None and t.kernel.layer != layer:
                continue
            groups.setdefault(t.kernel.name, []).append(t)
        table = {}
        for name, items in groups.items():
            total = sum(t.seconds for t in items)
            value = sum(getattr(t, metric) * t.seconds for t in items) / total if total else 0.0
            table[name] = value
        return table

    def sm_utilization_by_kernel(self, layer: Optional[str] = "moe") -> Dict[str, float]:
        return self._utilization("sm_utilization", layer)

    def dram_utilization_by_kernel(self, layer: Optional[str] = "moe") -> Dict[str, float]:
        return self._utilization("dram_utilization", layer)

    def time_weighted_sm(self, layer: Optional[str] = "moe") -> float:
        items = [t for t in self.timings if layer is None or t.kernel.layer == layer]
        return time_weighted_sm(items)

    def time_weighted_dram(self, layer: Optional[str] = "moe") -> float:
        items = [t for t in self.timings if layer is None or t.kernel.layer == layer]
        return time_weighted_dram(items)

    # ------------------------------------------------------------------
    def summary(self) -> str:
        stages = self.stage_seconds()
        layers = self.layer_seconds()
        lines = [
            f"StepTrace[{self.label or 'step'}] on {self.gpu.name}: "
            f"bsz={self.batch_size} seq={self.seq_len} {'dense' if self.dense else 'sparse'}",
            f"  total {self.total_seconds:.3f}s -> {self.queries_per_second:.2f} queries/s",
            "  stages: " + ", ".join(f"{k}={v:.3f}s" for k, v in stages.items()),
            "  layers: " + ", ".join(f"{k}={v:.3f}s" for k, v in sorted(layers.items())),
            f"  MoE share: {100 * self.moe_fraction():.1f}%",
        ]
        return "\n".join(lines)
