"""Kernel-sequence builders for one fine-tuning step of each model.

These functions translate a model configuration plus run settings (batch
size, sequence length, dense/sparse routing, QLoRA quantization, gradient
checkpointing) into the list of kernels a training step launches, using
the exact kernel vocabulary of the paper's Fig. 6:

* Mixtral MoE: ``matmul(w2), w2_dequant, matmul(w3), w3_dequant,
  matmul(w1), w1_dequant, softmax, topk, matmul(router), router_dequant``
* BlackMamba MoE: ``matmul(w1), gelu, matmul(w2), elementwise_mult,
  top_k, sigmoid, matmul(router)``

Work accounting conventions:

* a multiply-accumulate counts as 2 FLOPs;
* activations move in fp16 (2 B), NF4 weights read 0.5 B/elem and write
  2 B/elem on dequant, optimizer state is fp32;
* the backward stage re-runs the forward under gradient checkpointing
  (Mixtral) and doubles matmul work for grad-input/grad-weight;
* LoRA adapter matmuls are folded into their host matmul kernels (<1% of
  FLOPs at rank 16).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..models.config import BlackMambaConfig, MixtralConfig
from ..models.params import (
    lora_adapter_parameters,
    param_breakdown,
    trainable_parameters,
)
from .kernels import BACKWARD, Kernel, KernelKind, OPTIMIZER

FP16 = 2.0
FP32 = 4.0
NF4 = 0.5
DEQUANT_BYTES = NF4 + FP16  # read packed codes, write fp16
DEQUANT_OPS_PER_ELEM = 6.0  # unpack, look up, scale

# NF4-quantized GEMMs (bitsandbytes-style) run far below plain fp16 GEMM
# efficiency; fitted against the paper's measured Mixtral throughput.
QUANTIZED_MATMUL_EFF = 0.49


def experts_touched(num_experts: int, top_k: int, tokens: int) -> float:
    """Expected number of distinct experts receiving at least one token.

    With top-k routing of ``tokens`` tokens over ``num_experts`` experts,
    each expert is missed with probability ``(1 - k/E)^tokens``; for the
    batch sizes of interest every expert is effectively touched, which is
    why the paper's dequant cost is sparsity-independent (Fig. 6).
    """
    if tokens <= 0:
        return 0.0
    miss = (1.0 - top_k / num_experts) ** tokens
    return max(1.0, num_experts * (1.0 - miss))


# ---------------------------------------------------------------------------
# Mixtral kernels
# ---------------------------------------------------------------------------


def _mixtral_attention_kernels(cfg: MixtralConfig, tokens: int, batch: int, seq: int, quantized: bool) -> List[Kernel]:
    d = cfg.dim
    d_kv = cfg.num_kv_heads * cfg.head_dim
    proj_elems = d * (d + 2 * d_kv + d)  # q, k, v, o weight elements
    kernels = []
    if quantized:
        kernels.append(
            Kernel(
                name="attn_dequant",
                kind=KernelKind.DEQUANT,
                flops=DEQUANT_OPS_PER_ELEM * proj_elems,
                bytes=DEQUANT_BYTES * proj_elems,
                layer="attention",
                count=cfg.num_layers,
            )
        )
    kernels.append(
        Kernel(
            name="matmul(qkvo)",
            kind=KernelKind.MATMUL,
            flops=2.0 * tokens * (d * d + 2 * d * d_kv + d * d),
            bytes=FP16 * (2 * tokens * d + proj_elems + tokens * (d + 2 * d_kv)),
            rows=tokens,
            layer="attention",
            count=cfg.num_layers,
            eff_scale=QUANTIZED_MATMUL_EFF if quantized else 1.0,
        )
    )
    kernels.append(
        Kernel(
            name="flash_attention",
            kind=KernelKind.ATTENTION,
            flops=4.0 * batch * seq * seq * d,
            bytes=FP16 * 4 * tokens * d,  # FlashAttention2 streams QKV + writes O
            rows=tokens,
            layer="attention",
            count=cfg.num_layers,
        )
    )
    return kernels


def _mixtral_moe_kernels(
    cfg: MixtralConfig, tokens: int, top_k: int, quantized: bool
) -> List[Kernel]:
    d = cfg.dim
    f = cfg.ffn_dim
    num_experts = cfg.moe.num_experts
    routed = top_k * tokens  # token-expert assignments
    touched = experts_touched(num_experts, top_k, tokens)
    rows_per_expert = routed / touched
    layers = cfg.num_layers

    kernels = []
    if quantized:
        kernels.append(
            Kernel(
                "router_dequant",
                KernelKind.DEQUANT,
                flops=DEQUANT_OPS_PER_ELEM * d * num_experts,
                bytes=DEQUANT_BYTES * d * num_experts,
                layer="moe",
                count=layers,
            )
        )
    kernels.append(
        Kernel(
            "matmul(router)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * d * num_experts,
            bytes=FP16 * (tokens * d + d * num_experts) + FP32 * tokens * num_experts,
            rows=tokens,
            layer="moe",
            count=layers,
            eff_scale=QUANTIZED_MATMUL_EFF if quantized else 1.0,
        )
    )
    kernels.append(
        Kernel(
            "softmax",
            KernelKind.SOFTMAX,
            flops=8.0 * tokens * num_experts,
            bytes=FP32 * 2 * tokens * num_experts,
            layer="moe",
            count=layers,
        )
    )
    kernels.append(
        Kernel(
            "topk",
            KernelKind.TOPK,
            flops=4.0 * tokens * num_experts * math.log2(num_experts),
            bytes=FP32 * 2 * tokens * num_experts,
            layer="moe",
            count=layers,
        )
    )
    # The three expert projections; w1/w3 are (d -> f), w2 is (f -> d).
    for name, in_dim, out_dim in (("w1", d, f), ("w3", d, f), ("w2", f, d)):
        weight_elems = touched * in_dim * out_dim
        if quantized:
            kernels.append(
                Kernel(
                    f"{name}_dequant",
                    KernelKind.DEQUANT,
                    flops=DEQUANT_OPS_PER_ELEM * weight_elems,
                    bytes=DEQUANT_BYTES * weight_elems,
                    layer="moe",
                    count=layers,
                )
            )
        kernels.append(
            Kernel(
                f"matmul({name})",
                KernelKind.MATMUL,
                flops=2.0 * routed * in_dim * out_dim,
                bytes=FP16 * (routed * in_dim + weight_elems + routed * out_dim),
                rows=rows_per_expert,
                layer="moe",
                count=layers,
                eff_scale=QUANTIZED_MATMUL_EFF if quantized else 1.0,
            )
        )
    return kernels


def _mixtral_norm_kernels(cfg: MixtralConfig, tokens: int) -> List[Kernel]:
    d = cfg.dim
    flops = 8.0 * tokens * d
    traffic = FP16 * 2 * tokens * d
    return [
        Kernel("input_norm", KernelKind.NORM, flops, traffic, layer="norm", count=cfg.num_layers),
        Kernel("post_attn_norm", KernelKind.NORM, flops, traffic, layer="norm", count=cfg.num_layers),
    ]


def _head_kernels(dim: int, vocab: int, tokens: int) -> List[Kernel]:
    return [
        Kernel(
            "embedding",
            KernelKind.ELEMENTWISE,
            flops=0.0,
            bytes=FP16 * tokens * dim,
            layer="embed",
        ),
        Kernel(
            "lm_head",
            KernelKind.MATMUL,
            flops=2.0 * tokens * dim * vocab,
            bytes=FP16 * (tokens * dim + dim * vocab + tokens * vocab),
            rows=tokens,
            layer="head",
        ),
    ]


def _as_backward(kernels: List[Kernel], matmul_scale: float, other_scale: float) -> List[Kernel]:
    """Clone forward kernels as backward-stage work.

    ``matmul_scale`` covers grad-input (+ grad-weight for full fine-tuning,
    + recomputation under checkpointing); ``other_scale`` covers the
    cheaper backward of pointwise/normalization kernels.
    """
    out = []
    for k in kernels:
        scale = matmul_scale if k.kind in (KernelKind.MATMUL, KernelKind.ATTENTION, KernelKind.DEQUANT) else other_scale
        out.append(
            Kernel(
                name=k.name,
                kind=k.kind,
                flops=k.flops * scale,
                bytes=k.bytes * scale,
                rows=k.rows,
                layer=k.layer,
                stage=BACKWARD,
                count=k.count,
                eff_scale=k.eff_scale,
            )
        )
    return out


def _shard_tensor_parallel(kernels: List[Kernel], tensor_parallel: int) -> List[Kernel]:
    """Per-device work under Megatron-style tensor parallelism.

    Weight-bearing kernels — matmuls, attention (head-sharded), NF4
    dequantization, the SSM scan (channel-sharded) and the optimizer
    update (sharded moments) — divide their FLOPs and traffic by the TP
    degree. Pointwise, normalization, softmax and top-k kernels operate
    on the replicated layer inputs/outputs and stay full-size, which is
    the conservative side of the approximation (real TP also shards the
    expert-side pointwise work). The activation synchronization this
    layout buys is priced separately by
    :class:`repro.gpu.parallelism.TensorParallel`, not here.
    """
    if tensor_parallel == 1:
        return kernels
    if tensor_parallel < 1 or tensor_parallel != int(tensor_parallel):
        raise ValueError(
            f"tensor_parallel must be a positive integer, got {tensor_parallel}"
        )
    sharded_kinds = (
        KernelKind.MATMUL,
        KernelKind.ATTENTION,
        KernelKind.DEQUANT,
        KernelKind.SCAN,
        KernelKind.OPTIMIZER,
    )
    out = []
    for k in kernels:
        if k.kind not in sharded_kinds:
            out.append(k)
            continue
        out.append(
            Kernel(
                name=k.name,
                kind=k.kind,
                flops=k.flops / tensor_parallel,
                bytes=k.bytes / tensor_parallel,
                rows=k.rows,
                layer=k.layer,
                stage=k.stage,
                count=k.count,
                eff_scale=k.eff_scale,
            )
        )
    return out


def _optimizer_kernel(trainable: int, state_bytes_per_param: float) -> Kernel:
    return Kernel(
        "adamw_update",
        KernelKind.OPTIMIZER,
        flops=12.0 * trainable,
        bytes=state_bytes_per_param * trainable,
        layer="optimizer",
        stage=OPTIMIZER,
    )


def mixtral_step_kernels(
    cfg: MixtralConfig,
    batch_size: int,
    seq_len: int,
    dense: bool = False,
    quantized: bool = True,
    lora: Optional[bool] = None,
    checkpointing: bool = True,
    include_backward: bool = True,
    include_optimizer: bool = True,
    tensor_parallel: int = 1,
) -> List[Kernel]:
    """Kernels of one Mixtral fine-tuning step (QLoRA defaults).

    ``quantized`` controls NF4 weight storage (dequant kernels, slower
    GEMMs); ``lora`` controls the training regime (adapters-only vs full
    fine-tuning) and defaults to ``quantized`` — the paper's QLoRA setup.
    Passing them separately enables ablations such as fp16 LoRA.
    ``tensor_parallel`` shards the weight-bearing work across a TP group
    (see :func:`_shard_tensor_parallel`); the resulting kernels describe
    *one device's* share of the step.

    The backward matmul scale is 1x grad-input under LoRA (frozen weights
    need no grad-weight GEMM), 2x under full fine-tuning, plus 1x
    recomputation when gradient checkpointing is on.
    """
    if batch_size < 1 or seq_len < 1:
        raise ValueError("batch_size and seq_len must be >= 1")
    lora = quantized if lora is None else lora
    tokens = batch_size * seq_len
    top_k = cfg.moe.top_k(dense)

    forward: List[Kernel] = []
    forward += _head_kernels(cfg.dim, cfg.vocab_size, tokens)[:1]  # embedding
    forward += _mixtral_norm_kernels(cfg, tokens)
    forward += _mixtral_attention_kernels(cfg, tokens, batch_size, seq_len, quantized)
    forward += _mixtral_moe_kernels(cfg, tokens, top_k, quantized)
    forward += _head_kernels(cfg.dim, cfg.vocab_size, tokens)[1:]  # lm_head

    kernels = list(forward)
    if include_backward:
        grad_terms = 1.0 if lora else 2.0  # grad-input (+ grad-weight)
        recompute = 1.0 if checkpointing else 0.0
        kernels += _as_backward(forward, matmul_scale=grad_terms + recompute, other_scale=1.0 + recompute)
    if include_optimizer:
        trainable = lora_adapter_parameters(cfg) if lora else param_breakdown(cfg).total
        # fp32 adapters: weight + grad + two moments, read and write.
        kernels.append(_optimizer_kernel(trainable, state_bytes_per_param=24.0 if lora else 34.0))
    return _shard_tensor_parallel(kernels, tensor_parallel)


# ---------------------------------------------------------------------------
# BlackMamba kernels
# ---------------------------------------------------------------------------


def _mamba_mixer_kernels(cfg: BlackMambaConfig, tokens: int) -> List[Kernel]:
    d = cfg.dim
    inner = cfg.inner_dim
    state = cfg.state_dim
    count = cfg.num_mamba_layers
    kernels = [
        Kernel(
            "matmul(in_proj)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * d * 2 * inner,
            bytes=FP16 * (tokens * d + d * 2 * inner + tokens * 2 * inner),
            rows=tokens,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "conv1d",
            KernelKind.ELEMENTWISE,
            flops=2.0 * tokens * inner * cfg.conv_kernel,
            bytes=FP16 * 2 * tokens * inner,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "matmul(x_proj)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * inner * (cfg.dt_rank + 2 * state),
            bytes=FP16 * (tokens * inner + inner * (cfg.dt_rank + 2 * state)),
            rows=tokens,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "matmul(dt_proj)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * cfg.dt_rank * inner,
            bytes=FP16 * (tokens * cfg.dt_rank + cfg.dt_rank * inner + tokens * inner),
            rows=tokens,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "ssm_scan",
            KernelKind.SCAN,
            flops=6.0 * tokens * inner * state,
            bytes=FP16 * 4 * tokens * inner * state,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "elementwise_gate",
            KernelKind.ELEMENTWISE,
            flops=6.0 * tokens * inner,
            bytes=FP16 * 3 * tokens * inner,
            layer="mamba",
            count=count,
        ),
        Kernel(
            "matmul(out_proj)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * inner * d,
            bytes=FP16 * (tokens * inner + inner * d + tokens * d),
            rows=tokens,
            layer="mamba",
            count=count,
        ),
    ]
    return kernels


def _blackmamba_moe_kernels(cfg: BlackMambaConfig, tokens: int, top_k: int) -> List[Kernel]:
    d = cfg.dim
    f = cfg.ffn_dim
    num_experts = cfg.moe.num_experts
    routed = top_k * tokens
    touched = experts_touched(num_experts, top_k, tokens)
    rows_per_expert = routed / touched
    count = cfg.num_moe_layers
    return [
        Kernel(
            "matmul(router)",
            KernelKind.MATMUL,
            flops=2.0 * tokens * d * num_experts,
            bytes=FP16 * (tokens * d + d * num_experts) + FP32 * tokens * num_experts,
            rows=tokens,
            layer="moe",
            count=count,
        ),
        Kernel(
            "sigmoid",
            KernelKind.ELEMENTWISE,
            flops=4.0 * tokens * num_experts,
            bytes=FP32 * 2 * tokens * num_experts,
            layer="moe",
            count=count,
        ),
        Kernel(
            "top_k",
            KernelKind.TOPK,
            flops=4.0 * tokens * num_experts * math.log2(num_experts),
            bytes=FP32 * 2 * tokens * num_experts,
            layer="moe",
            count=count,
        ),
        Kernel(
            "matmul(w1)",
            KernelKind.MATMUL,
            flops=2.0 * routed * d * f,
            bytes=FP16 * (routed * d + touched * d * f + routed * f),
            rows=rows_per_expert,
            layer="moe",
            count=count,
        ),
        Kernel(
            "gelu",
            KernelKind.ELEMENTWISE,
            flops=8.0 * routed * f,
            bytes=FP16 * 2 * routed * f,
            layer="moe",
            count=count,
        ),
        Kernel(
            "matmul(w2)",
            KernelKind.MATMUL,
            flops=2.0 * routed * f * d,
            bytes=FP16 * (routed * f + touched * f * d + routed * d),
            rows=rows_per_expert,
            layer="moe",
            count=count,
        ),
        Kernel(
            "elementwise_mult",
            KernelKind.ELEMENTWISE,
            flops=3.0 * routed * d,
            bytes=FP16 * 3 * routed * d,
            layer="moe",
            count=count,
        ),
    ]


def blackmamba_step_kernels(
    cfg: BlackMambaConfig,
    batch_size: int,
    seq_len: int,
    dense: bool = False,
    include_backward: bool = True,
    include_optimizer: bool = True,
    tensor_parallel: int = 1,
) -> List[Kernel]:
    """Kernels of one BlackMamba full-fine-tuning step.

    ``tensor_parallel`` shards the weight-bearing work across a TP group
    exactly as in :func:`mixtral_step_kernels`."""
    if batch_size < 1 or seq_len < 1:
        raise ValueError("batch_size and seq_len must be >= 1")
    tokens = batch_size * seq_len
    top_k = cfg.moe.top_k(dense)

    forward: List[Kernel] = []
    forward += _head_kernels(cfg.dim, cfg.vocab_size, tokens)[:1]
    forward.append(
        Kernel(
            "rms_layernorm",
            KernelKind.NORM,
            flops=8.0 * tokens * cfg.dim,
            bytes=FP16 * 2 * tokens * cfg.dim,
            layer="norm",
            count=cfg.num_layers,
        )
    )
    forward += _mamba_mixer_kernels(cfg, tokens)
    forward += _blackmamba_moe_kernels(cfg, tokens, top_k)
    forward += _head_kernels(cfg.dim, cfg.vocab_size, tokens)[1:]

    kernels = list(forward)
    if include_backward:
        # Full fine-tuning: grad-input + grad-weight GEMMs, no recompute.
        kernels += _as_backward(forward, matmul_scale=2.0, other_scale=1.2)
    if include_optimizer:
        trainable = trainable_parameters(cfg)
        # fp16 weights/grads + fp32 moments + fp32 master, read and write.
        kernels.append(_optimizer_kernel(trainable, state_bytes_per_param=34.0))
    return _shard_tensor_parallel(kernels, tensor_parallel)
