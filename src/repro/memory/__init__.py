"""Memory estimation substrate (S9) — the Table III max-batch-size oracle."""

from .estimator import (
    EFFECTIVE_SEQ_LEN,
    MEMORY_CONSTANTS,
    MemoryBreakdown,
    MemoryModelConstants,
    activation_gb_per_query,
    fits_in_memory,
    max_batch_size,
    max_batch_size_for_dataset,
    memory_breakdown,
)

__all__ = [
    "EFFECTIVE_SEQ_LEN",
    "MEMORY_CONSTANTS",
    "MemoryBreakdown",
    "MemoryModelConstants",
    "activation_gb_per_query",
    "fits_in_memory",
    "max_batch_size",
    "max_batch_size_for_dataset",
    "memory_breakdown",
]
