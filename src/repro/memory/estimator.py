"""GPU memory estimation and the empirical max-batch-size oracle.

This module is the reproduction's stand-in for the paper's "empirically
find the maximum batch size on real hardware" step (Table III). Fixed
memory (weights, adapters, gradients, optimizer state, framework
overhead) is computed from first principles; per-query activation memory
uses three constants per model family calibrated once against the
published Table III / Table IV batch sizes:

* ``framework_base_gb`` — CUDA context, cuBLAS workspaces, allocator
  fragmentation and (for QLoRA) gradient-checkpoint recompute buffers;
* ``activation_gb_per_token`` — resident activation bytes per *padded*
  token at dense routing, including logits, optimizer temporaries and
  fragmentation amplification;
* ``moe_activation_fraction`` — the share of activation memory that
  scales with MoE sparsity (expert intermediate buffers). This is the
  physical quantity behind the paper's Eq. 1 coefficient C1.

The sparsity scaling mirrors Eq. 1's denominator:
``per_token(sparsity) = a * ((1 - gamma) + gamma * sparsity)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from ..gpu.specs import GPUSpec
from ..models.config import BlackMambaConfig, MixtralConfig
from ..models.params import (
    lora_adapter_parameters,
    param_breakdown,
    model_memory_gb,
)

ModelConfig = Union[MixtralConfig, BlackMambaConfig]

GB = 1e9

# Median *padded* batch lengths per dataset: batches pad to their longest
# member, so the effective length exceeds the Table II median slightly
# (more for the wider MATH distribution). Calibrated with the memory
# constants below.
EFFECTIVE_SEQ_LEN: Dict[str, int] = {
    "commonsense15k": 80,
    "math14k": 185,
    "gsm8k": 150,
    "hellaswag": 280,
    "openorca": 205,  # enterprise-scale corpus used in the paper's Section V-C
}


@dataclass(frozen=True)
class MemoryModelConstants:
    """Per-family calibrated activation/overhead constants."""

    framework_base_gb: float
    activation_gb_per_token: float
    moe_activation_fraction: float  # gamma in the docstring formula


MEMORY_CONSTANTS: Dict[str, MemoryModelConstants] = {
    "mixtral": MemoryModelConstants(
        framework_base_gb=10.0,
        activation_gb_per_token=0.055,
        moe_activation_fraction=0.93,
    ),
    "blackmamba": MemoryModelConstants(
        framework_base_gb=3.0,
        activation_gb_per_token=0.0212,
        moe_activation_fraction=0.90,
    ),
}


@dataclass(frozen=True)
class MemoryBreakdown:
    """Resident GPU memory for one fine-tuning configuration (GB)."""

    weights_gb: float
    adapter_gb: float
    gradient_gb: float
    optimizer_gb: float
    framework_gb: float
    activation_gb_per_query: float  # at the given seq_len and sparsity

    @property
    def fixed_gb(self) -> float:
        """Batch-size-independent memory."""
        return (
            self.weights_gb
            + self.adapter_gb
            + self.gradient_gb
            + self.optimizer_gb
            + self.framework_gb
        )

    def total_gb(self, batch_size: int) -> float:
        return self.fixed_gb + batch_size * self.activation_gb_per_query


def _constants(cfg: ModelConfig) -> MemoryModelConstants:
    if cfg.family not in MEMORY_CONSTANTS:
        raise KeyError(f"no memory constants for family {cfg.family!r}")
    return MEMORY_CONSTANTS[cfg.family]


def _validate_tensor_parallel(tensor_parallel: int) -> None:
    if tensor_parallel < 1:
        raise ValueError(
            f"tensor_parallel must be >= 1, got {tensor_parallel}"
        )


def activation_gb_per_query(
    cfg: ModelConfig, seq_len: int, dense: bool, tensor_parallel: int = 1
) -> float:
    """Per-query activation memory at a padded sequence length.

    ``tensor_parallel > 1`` is the per-shard view: the MoE-scaling share
    of activation memory (``gamma``) is expert intermediate buffers,
    which tensor parallelism shards across the TP group; the remaining
    ``1 - gamma`` is replicated layer inputs/outputs and stays resident
    on every shard. The sparsity and sharding scalings therefore compose
    on the same term: ``(1 - gamma) + gamma * sparsity / t``.
    """
    if seq_len < 1:
        raise ValueError(f"seq_len must be >= 1, got {seq_len}")
    _validate_tensor_parallel(tensor_parallel)
    constants = _constants(cfg)
    sparsity = cfg.moe.sparsity(dense)
    gamma = constants.moe_activation_fraction
    scale = (1.0 - gamma) + gamma * sparsity / tensor_parallel
    return constants.activation_gb_per_token * seq_len * scale


def memory_breakdown(
    cfg: ModelConfig, seq_len: int, dense: bool, tensor_parallel: int = 1
) -> MemoryBreakdown:
    """Full memory accounting for the paper's fine-tuning recipes.

    Mixtral: NF4 weights + fp32 LoRA adapters/gradients/moments.
    BlackMamba: fp16 weights/gradients + fp32 Adam moments.

    ``tensor_parallel > 1`` returns the *per-shard* breakdown: weights,
    adapters, gradients and optimizer moments divide across the TP group
    (Megatron shards every projection, the embedding and the LM head);
    the framework base is per-device and does not shard; activations
    shard partially (see :func:`activation_gb_per_query`).
    """
    _validate_tensor_parallel(tensor_parallel)
    constants = _constants(cfg)
    shard = float(tensor_parallel)
    if isinstance(cfg, MixtralConfig):
        adapters = lora_adapter_parameters(cfg)
        return MemoryBreakdown(
            weights_gb=model_memory_gb(cfg) / shard,
            adapter_gb=4.0 * adapters / GB / shard,
            gradient_gb=4.0 * adapters / GB / shard,
            optimizer_gb=8.0 * adapters / GB / shard,
            framework_gb=constants.framework_base_gb,
            activation_gb_per_query=activation_gb_per_query(
                cfg, seq_len, dense, tensor_parallel
            ),
        )
    total = param_breakdown(cfg).total
    return MemoryBreakdown(
        weights_gb=2.0 * total / GB / shard,
        adapter_gb=0.0,
        gradient_gb=2.0 * total / GB / shard,
        optimizer_gb=8.0 * total / GB / shard,
        framework_gb=constants.framework_base_gb,
        activation_gb_per_query=activation_gb_per_query(
            cfg, seq_len, dense, tensor_parallel
        ),
    )


def max_batch_size(
    cfg: ModelConfig, gpu: GPUSpec, seq_len: int, dense: bool, tensor_parallel: int = 1
) -> int:
    """Largest batch fitting in GPU memory — the Table III oracle.

    With ``tensor_parallel > 1`` this is the largest *per-TP-group*
    micro-batch whose shard fits on each device."""
    breakdown = memory_breakdown(cfg, seq_len, dense, tensor_parallel)
    free = gpu.memory_gb - breakdown.fixed_gb
    if free <= 0:
        return 0
    return int(free // breakdown.activation_gb_per_query)


def max_batch_size_for_dataset(cfg: ModelConfig, gpu: GPUSpec, dataset_key: str, dense: bool) -> int:
    """Table III cell: max batch size using the dataset's padded length."""
    if dataset_key not in EFFECTIVE_SEQ_LEN:
        raise KeyError(f"unknown dataset {dataset_key!r}; known: {sorted(EFFECTIVE_SEQ_LEN)}")
    return max_batch_size(cfg, gpu, EFFECTIVE_SEQ_LEN[dataset_key], dense)


def fits_in_memory(cfg: ModelConfig, gpu: GPUSpec, batch_size: int, seq_len: int, dense: bool) -> bool:
    """Whether a configuration fits — used by property tests and sweeps."""
    breakdown = memory_breakdown(cfg, seq_len, dense)
    return breakdown.total_gb(batch_size) <= gpu.memory_gb
