"""Model zoo (substrate S5): Mixtral and BlackMamba families.

Paper-scale configs (:data:`MIXTRAL_8X7B`, :data:`BLACKMAMBA_2_8B`) are
used analytically — parameter counts, memory, FLOPs. Tiny configs
(:data:`MIXTRAL_TINY`, :data:`BLACKMAMBA_TINY`) instantiate real trainable
models on the autograd engine for the accuracy and load-balance studies.
"""

from .blackmamba import BlackMambaModel, MambaLayer, MoEFFNLayer
from .config import (
    BLACKMAMBA_2_8B,
    BLACKMAMBA_TINY,
    BlackMambaConfig,
    MIXTRAL_8X7B,
    MIXTRAL_TINY,
    MixtralConfig,
    MoESettings,
)
from .mixtral import MixtralBlock, MixtralModel, convert_to_qlora
from .params import (
    GB,
    ParamBreakdown,
    blackmamba_param_breakdown,
    lora_adapter_parameters,
    mixtral_param_breakdown,
    model_memory_gb,
    param_breakdown,
    trainable_parameters,
    weight_bytes_per_param,
)
from .registry import MODEL_REGISTRY, ModelSpec, get_model_spec

__all__ = [
    "BLACKMAMBA_2_8B",
    "BLACKMAMBA_TINY",
    "BlackMambaConfig",
    "BlackMambaModel",
    "GB",
    "MIXTRAL_8X7B",
    "MIXTRAL_TINY",
    "MODEL_REGISTRY",
    "MambaLayer",
    "MixtralBlock",
    "MixtralConfig",
    "MixtralModel",
    "MoEFFNLayer",
    "MoESettings",
    "ModelSpec",
    "ParamBreakdown",
    "blackmamba_param_breakdown",
    "convert_to_qlora",
    "get_model_spec",
    "lora_adapter_parameters",
    "mixtral_param_breakdown",
    "model_memory_gb",
    "param_breakdown",
    "trainable_parameters",
    "weight_bytes_per_param",
]
