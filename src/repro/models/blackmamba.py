"""BlackMamba-architecture state-space MoE language model.

BlackMamba (Anthony et al., 2024) interleaves Mamba mixer layers with MoE
layers of standard GELU FFN experts (the paper's Fig. 1 right path with
Fig. 7-bottom experts). The paper-scale config places 8 MoE layers among
18 total. Fine-tuning is *full*: every parameter trains, which is why the
optimizer stage is a major cost in the paper's Fig. 4.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..rng import resolve_rng
from ..tensor import Tensor, checkpoint
from .config import BlackMambaConfig


class MambaLayer(nn.Module):
    """Pre-norm Mamba mixer with residual."""

    def __init__(self, cfg: BlackMambaConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.norm = nn.RMSNorm(cfg.dim)
        self.mixer = nn.MambaMixer(
            cfg.dim,
            state_dim=cfg.state_dim,
            expand=cfg.expand,
            conv_kernel=cfg.conv_kernel,
            dt_rank=cfg.dt_rank,
            rng=rng,
        )

    def forward(self, hidden: Tensor) -> Tensor:
        return hidden + self.mixer(self.norm(hidden))


class MoEFFNLayer(nn.Module):
    """Pre-norm MoE of GELU experts with residual."""

    def __init__(self, cfg: BlackMambaConfig, rng: np.random.Generator) -> None:
        super().__init__()
        self.norm = nn.RMSNorm(cfg.dim)
        self.moe = nn.MoELayer(
            dim=cfg.dim,
            num_experts=cfg.moe.num_experts,
            top_k=cfg.moe.top_k_sparse,
            expert_factory=lambda: nn.GeluExpert(cfg.dim, cfg.ffn_dim, rng=rng),
            rng=rng,
        )

    def forward(self, hidden: Tensor) -> Tensor:
        return hidden + self.moe(self.norm(hidden))


class BlackMambaModel(nn.Module):
    """Causal language model over token ids; returns vocabulary logits."""

    def __init__(
        self,
        cfg: BlackMambaConfig,
        gradient_checkpointing: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.cfg = cfg
        self.gradient_checkpointing = gradient_checkpointing
        self.embed_tokens = nn.Embedding(cfg.vocab_size, cfg.dim, rng=rng)
        layers: List[nn.Module] = []
        for layer_type in cfg.layer_types():
            if layer_type == "mamba":
                layers.append(MambaLayer(cfg, rng))
            else:
                layers.append(MoEFFNLayer(cfg, rng))
        self.layers = nn.ModuleList(layers)
        self.norm = nn.RMSNorm(cfg.dim)
        self.lm_head = nn.Linear(cfg.dim, cfg.vocab_size, rng=rng)

    # ------------------------------------------------------------------
    def moe_layers(self) -> List[nn.MoELayer]:
        return [layer.moe for layer in self.layers if isinstance(layer, MoEFFNLayer)]

    def set_sparsity(self, dense: bool) -> None:
        for moe in self.moe_layers():
            moe.set_top_k(self.cfg.moe.top_k(dense))

    def set_aux_loss(self, enabled: bool) -> None:
        for moe in self.moe_layers():
            moe.track_aux_loss = enabled

    def collect_aux_loss(self) -> Optional[Tensor]:
        losses = [moe.aux_loss for moe in self.moe_layers() if moe.aux_loss is not None]
        if not losses:
            return None
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total / len(losses)

    def expert_load(self) -> np.ndarray:
        return np.sum([moe.cumulative_expert_counts for moe in self.moe_layers()], axis=0)

    def reset_expert_load(self) -> None:
        for moe in self.moe_layers():
            moe.reset_load_statistics()

    # ------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> Tensor:
        hidden = self.embed_tokens(token_ids)
        for layer in self.layers:
            if self.gradient_checkpointing and self.training:
                hidden = checkpoint(layer, hidden)
            else:
                hidden = layer(hidden)
        return self.lm_head(self.norm(hidden))
