"""Model configurations for the two evaluated families.

Each config carries every dimension needed by four consumers:

1. the trainable model constructors (tiny configs only — nobody allocates
   47B floats in numpy),
2. the analytic parameter counter (:mod:`repro.models.params`),
3. the memory estimator (:mod:`repro.memory`),
4. the GPU simulator's FLOP/byte workload builders (:mod:`repro.gpu`).

Paper-scale configs are tuned to match Table I: Mixtral-8x7B with 46.7B
parameters (23.35GB in NF4) over 32 layers, and BlackMamba-2.8B (5.6GB in
fp16) over 18 layers with 8 MoE layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List


@dataclass(frozen=True)
class MoESettings:
    """Mixture-of-experts knobs shared by both families."""

    num_experts: int = 8
    top_k_sparse: int = 2

    def sparsity(self, dense: bool) -> float:
        """Active-expert fraction: 1.0 dense, k/E sparse (paper's notation)."""
        return 1.0 if dense else self.top_k_sparse / self.num_experts

    def top_k(self, dense: bool) -> int:
        return self.num_experts if dense else self.top_k_sparse


@dataclass(frozen=True)
class MixtralConfig:
    """Decoder-only transformer with MoE FFN (Mixtral architecture)."""

    name: str = "mixtral-8x7b"
    vocab_size: int = 32000
    dim: int = 4096
    num_layers: int = 32
    num_heads: int = 32
    num_kv_heads: int = 8
    ffn_dim: int = 14336
    moe: MoESettings = field(default_factory=MoESettings)
    lora_rank: int = 16
    family: str = "mixtral"

    @property
    def head_dim(self) -> int:
        return self.dim // self.num_heads

    @property
    def num_moe_layers(self) -> int:
        return self.num_layers  # every Mixtral block has an MoE FFN

    def scaled(self, **overrides) -> "MixtralConfig":
        return replace(self, **overrides)


@dataclass(frozen=True)
class BlackMambaConfig:
    """State-space model alternating Mamba mixer layers and MoE layers."""

    name: str = "blackmamba-2.8b"
    vocab_size: int = 50254
    dim: int = 2048
    num_layers: int = 18
    num_moe_layers: int = 8
    ffn_dim: int = 8960
    state_dim: int = 16
    expand: int = 2
    conv_kernel: int = 4
    dt_rank: int = 128
    moe: MoESettings = field(default_factory=MoESettings)
    family: str = "blackmamba"

    @property
    def inner_dim(self) -> int:
        return self.expand * self.dim

    @property
    def num_mamba_layers(self) -> int:
        return self.num_layers - self.num_moe_layers

    def layer_types(self) -> List[str]:
        """Interleave: mamba at even slots, MoE at odd slots until the MoE
        budget is spent, remaining slots are mamba (18 layers / 8 MoE for
        the paper-scale model)."""
        types: List[str] = []
        moe_remaining = self.num_moe_layers
        for index in range(self.num_layers):
            if index % 2 == 1 and moe_remaining > 0:
                types.append("moe")
                moe_remaining -= 1
            else:
                types.append("mamba")
        if moe_remaining != 0:
            raise ValueError(
                f"cannot place {self.num_moe_layers} MoE layers in {self.num_layers} slots"
            )
        return types

    def scaled(self, **overrides) -> "BlackMambaConfig":
        return replace(self, **overrides)


# ---------------------------------------------------------------------------
# Paper-scale configurations (Table I)
# ---------------------------------------------------------------------------

MIXTRAL_8X7B = MixtralConfig()

BLACKMAMBA_2_8B = BlackMambaConfig()


# ---------------------------------------------------------------------------
# Tiny trainable configurations for the accuracy / load-balance experiments
# ---------------------------------------------------------------------------

MIXTRAL_TINY = MixtralConfig(
    name="mixtral-tiny",
    vocab_size=512,
    dim=48,
    num_layers=2,
    num_heads=4,
    num_kv_heads=2,
    ffn_dim=96,
    lora_rank=16,  # the paper's LoRA rank
)

BLACKMAMBA_TINY = BlackMambaConfig(
    name="blackmamba-tiny",
    vocab_size=512,
    dim=24,
    num_layers=4,
    num_moe_layers=2,
    ffn_dim=48,
    state_dim=4,
    expand=2,
    conv_kernel=4,
    dt_rank=4,
)
