"""Mixtral-architecture decoder-only MoE transformer.

Each block is: RMSNorm -> causal self-attention -> residual ->
RMSNorm -> top-k MoE of SwiGLU experts -> residual (the paper's Fig. 1
left path with Fig. 7-top experts).

The ``finetune_mode`` mirrors the paper's setup:

* ``"qlora"`` — every expert projection and the router are NF4-quantized
  and frozen with rank-``lora_rank`` adapters; attention/embeddings/norms
  are frozen; gradient checkpointing defaults on.
* ``"full"`` — everything dense and trainable (used for control
  experiments and tests).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .. import nn
from ..rng import resolve_rng
from ..tensor import Tensor, checkpoint
from .config import MixtralConfig


class MixtralBlock(nn.Module):
    """One decoder layer: attention sub-block plus MoE sub-block."""

    def __init__(self, cfg: MixtralConfig, finetune_mode: str, rng: np.random.Generator) -> None:
        super().__init__()
        quantize = finetune_mode == "qlora"
        lora_rank = cfg.lora_rank if finetune_mode == "qlora" else 0
        self.input_layernorm = nn.RMSNorm(cfg.dim)
        self.self_attn = nn.CausalSelfAttention(
            cfg.dim, cfg.num_heads, num_kv_heads=cfg.num_kv_heads, rng=rng
        )
        self.post_attention_layernorm = nn.RMSNorm(cfg.dim)
        self.moe = nn.MoELayer(
            dim=cfg.dim,
            num_experts=cfg.moe.num_experts,
            top_k=cfg.moe.top_k_sparse,
            expert_factory=lambda: nn.SwiGLUExpert(
                cfg.dim, cfg.ffn_dim, quantize=quantize, lora_rank=lora_rank, rng=rng
            ),
            rng=rng,
        )
        if finetune_mode == "qlora":
            # The paper's QLoRA config targets the router too.
            base = nn.QuantizedLinear.from_linear(self.moe.router.gate)
            self.moe.router.gate = nn.LoRALinear(base, rank=lora_rank, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        hidden = hidden + self.self_attn(self.input_layernorm(hidden))
        hidden = hidden + self.moe(self.post_attention_layernorm(hidden))
        return hidden


class MixtralModel(nn.Module):
    """Causal language model over token ids; returns vocabulary logits."""

    def __init__(
        self,
        cfg: MixtralConfig,
        finetune_mode: str = "qlora",
        gradient_checkpointing: Optional[bool] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if finetune_mode not in ("qlora", "full"):
            raise ValueError(f"finetune_mode must be 'qlora' or 'full', got {finetune_mode!r}")
        rng = resolve_rng(rng)
        self.cfg = cfg
        self.finetune_mode = finetune_mode
        # The paper enables gradient checkpointing for Mixtral QLoRA runs.
        self.gradient_checkpointing = (
            gradient_checkpointing if gradient_checkpointing is not None else finetune_mode == "qlora"
        )
        self.embed_tokens = nn.Embedding(cfg.vocab_size, cfg.dim, rng=rng)
        self.layers = nn.ModuleList(
            [MixtralBlock(cfg, finetune_mode, rng) for _ in range(cfg.num_layers)]
        )
        self.norm = nn.RMSNorm(cfg.dim)
        self.lm_head = nn.Linear(cfg.dim, cfg.vocab_size, rng=rng)
        if finetune_mode == "qlora":
            # Freeze everything that is not a LoRA adapter.
            for name, param in self.named_parameters():
                if "lora_" not in name:
                    param.requires_grad = False

    # ------------------------------------------------------------------
    def moe_layers(self) -> List[nn.MoELayer]:
        return [block.moe for block in self.layers]

    def set_sparsity(self, dense: bool) -> None:
        """Toggle between dense (all experts) and sparse (top-2) routing."""
        for moe in self.moe_layers():
            moe.set_top_k(self.cfg.moe.top_k(dense))

    def set_aux_loss(self, enabled: bool) -> None:
        for moe in self.moe_layers():
            moe.track_aux_loss = enabled

    def collect_aux_loss(self) -> Optional[Tensor]:
        losses = [moe.aux_loss for moe in self.moe_layers() if moe.aux_loss is not None]
        if not losses:
            return None
        total = losses[0]
        for extra in losses[1:]:
            total = total + extra
        return total / len(losses)

    def expert_load(self) -> np.ndarray:
        """Cumulative token counts per expert, summed over layers (Fig. 11)."""
        return np.sum([moe.cumulative_expert_counts for moe in self.moe_layers()], axis=0)

    def reset_expert_load(self) -> None:
        for moe in self.moe_layers():
            moe.reset_load_statistics()

    # ------------------------------------------------------------------
    def forward(self, token_ids: np.ndarray) -> Tensor:
        hidden = self.embed_tokens(token_ids)
        for block in self.layers:
            if self.gradient_checkpointing and self.training:
                hidden = checkpoint(block, hidden)
            else:
                hidden = block(hidden)
        return self.lm_head(self.norm(hidden))


def convert_to_qlora(model: MixtralModel, rng: Optional[np.random.Generator] = None) -> MixtralModel:
    """Convert a dense (``finetune_mode='full'``) model to QLoRA in place.

    This mirrors the paper's pipeline: start from a *pre-trained* dense
    checkpoint, NF4-quantize the MoE weights (experts and router), attach
    rank-``cfg.lora_rank`` adapters, and freeze everything else. Returns
    the same model object for convenience.
    """
    if model.finetune_mode == "qlora":
        return model
    rng = resolve_rng(rng)
    rank = model.cfg.lora_rank
    for block in model.layers:
        moe = block.moe
        for expert in moe.experts:
            expert.w1 = nn.LoRALinear(nn.QuantizedLinear.from_linear(expert.w1), rank=rank, rng=rng)
            expert.w3 = nn.LoRALinear(nn.QuantizedLinear.from_linear(expert.w3), rank=rank, rng=rng)
            expert.w2 = nn.LoRALinear(nn.QuantizedLinear.from_linear(expert.w2), rank=rank, rng=rng)
        moe.router.gate = nn.LoRALinear(
            nn.QuantizedLinear.from_linear(moe.router.gate), rank=rank, rng=rng
        )
    for name, param in model.named_parameters():
        if "lora_" not in name:
            param.requires_grad = False
    model.finetune_mode = "qlora"
    model.gradient_checkpointing = True
    return model
