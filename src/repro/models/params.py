"""Analytic parameter and memory accounting (reproduces Table I).

The breakdown formulas mirror the constructors in
:mod:`repro.models.mixtral` / :mod:`repro.models.blackmamba` exactly; a
unit test builds the tiny models and asserts the analytic count equals the
actual number of allocated parameters, which validates the paper-scale
numbers computed from the same formulas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Union

from .config import BlackMambaConfig, MixtralConfig

# The paper reports memory in decimal gigabytes (46.7B params x 0.5 B/param
# = 23.35 "GB" in Table I), so all capacity accounting uses GB = 1e9 bytes.
GB = 1e9

ModelConfig = Union[MixtralConfig, BlackMambaConfig]


@dataclass(frozen=True)
class ParamBreakdown:
    """Per-component parameter counts plus convenience totals."""

    components: Dict[str, int]

    @property
    def total(self) -> int:
        return sum(self.components.values())

    def total_bytes(self, bytes_per_param: float) -> float:
        return self.total * bytes_per_param

    def total_gb(self, bytes_per_param: float) -> float:
        return self.total_bytes(bytes_per_param) / GB


def mixtral_param_breakdown(cfg: MixtralConfig) -> ParamBreakdown:
    head_dim = cfg.head_dim
    attn = (
        cfg.dim * cfg.num_heads * head_dim  # q
        + cfg.dim * cfg.num_kv_heads * head_dim  # k
        + cfg.dim * cfg.num_kv_heads * head_dim  # v
        + cfg.num_heads * head_dim * cfg.dim  # o
    )
    expert = 3 * cfg.dim * cfg.ffn_dim  # w1, w2, w3
    moe = cfg.moe.num_experts * expert + cfg.dim * cfg.moe.num_experts  # + router
    norms = 2 * cfg.dim  # input + post-attention RMSNorm weights
    per_layer = attn + moe + norms
    return ParamBreakdown(
        components={
            "embedding": cfg.vocab_size * cfg.dim,
            "attention": cfg.num_layers * attn,
            "moe_experts": cfg.num_layers * cfg.moe.num_experts * expert,
            "moe_router": cfg.num_layers * cfg.dim * cfg.moe.num_experts,
            "norms": cfg.num_layers * norms + cfg.dim,  # + final norm
            "lm_head": cfg.vocab_size * cfg.dim,
        }
    )


def blackmamba_param_breakdown(cfg: BlackMambaConfig) -> ParamBreakdown:
    inner = cfg.inner_dim
    mamba = (
        cfg.dim * 2 * inner  # in_proj
        + inner * cfg.conv_kernel + inner  # depthwise conv weight + bias
        + inner * (cfg.dt_rank + 2 * cfg.state_dim)  # x_proj
        + cfg.dt_rank * inner + inner  # dt_proj weight + bias
        + inner * cfg.state_dim  # A_log
        + inner  # D skip
        + inner * cfg.dim  # out_proj
    )
    expert = 2 * cfg.dim * cfg.ffn_dim  # w1, w2
    moe = cfg.moe.num_experts * expert + cfg.dim * cfg.moe.num_experts
    norms = cfg.num_layers * cfg.dim + cfg.dim  # one pre-norm per layer + final
    return ParamBreakdown(
        components={
            "embedding": cfg.vocab_size * cfg.dim,
            "mamba": cfg.num_mamba_layers * mamba,
            "moe_experts": cfg.num_moe_layers * cfg.moe.num_experts * expert,
            "moe_router": cfg.num_moe_layers * cfg.dim * cfg.moe.num_experts,
            "norms": norms,
            "lm_head": cfg.vocab_size * cfg.dim,
        }
    )


def param_breakdown(cfg: ModelConfig) -> ParamBreakdown:
    if isinstance(cfg, MixtralConfig):
        return mixtral_param_breakdown(cfg)
    if isinstance(cfg, BlackMambaConfig):
        return blackmamba_param_breakdown(cfg)
    raise TypeError(f"unsupported config type {type(cfg).__name__}")


def lora_adapter_parameters(cfg: MixtralConfig) -> int:
    """Trainable parameters when QLoRA targets MoE experts and routers.

    Each adapted projection of shape (out, in) contributes
    ``rank * (in + out)``; the paper adapts w1/w2/w3 of every expert plus
    the router in every layer, with rank 16.
    """
    r = cfg.lora_rank
    per_expert = (
        r * (cfg.dim + cfg.ffn_dim)  # w1
        + r * (cfg.dim + cfg.ffn_dim)  # w3
        + r * (cfg.ffn_dim + cfg.dim)  # w2
    )
    per_router = r * (cfg.dim + cfg.moe.num_experts)
    per_layer = cfg.moe.num_experts * per_expert + per_router
    return cfg.num_layers * per_layer


def trainable_parameters(cfg: ModelConfig) -> int:
    """Paper setup: QLoRA adapters for Mixtral, everything for BlackMamba."""
    if isinstance(cfg, MixtralConfig):
        return lora_adapter_parameters(cfg)
    return param_breakdown(cfg).total


def weight_bytes_per_param(cfg: ModelConfig) -> float:
    """Storage precision of the frozen/base weights in the paper's setup:
    NF4 (0.5 B/param plus ~1.6% block-scale overhead) for Mixtral, fp16
    for BlackMamba."""
    if isinstance(cfg, MixtralConfig):
        return 0.5
    return 2.0


def model_memory_gb(cfg: ModelConfig) -> float:
    """Resident weight memory — reproduces Table I's "Mem consump." column."""
    return param_breakdown(cfg).total_gb(weight_bytes_per_param(cfg))
