"""Model registry: paper-scale specs and tiny trainable instantiations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Union

import numpy as np

from .blackmamba import BlackMambaModel
from .config import (
    BLACKMAMBA_2_8B,
    BLACKMAMBA_TINY,
    BlackMambaConfig,
    MIXTRAL_8X7B,
    MIXTRAL_TINY,
    MixtralConfig,
)
from .params import model_memory_gb, param_breakdown, trainable_parameters
from .mixtral import MixtralModel

ModelConfig = Union[MixtralConfig, BlackMambaConfig]


@dataclass(frozen=True)
class ModelSpec:
    """A named model with its fine-tuning recipe, as evaluated in the paper."""

    key: str
    config: ModelConfig
    finetune_method: str  # "qlora" or "full"
    display_name: str

    @property
    def family(self) -> str:
        return self.config.family

    @property
    def params_total(self) -> int:
        return param_breakdown(self.config).total

    @property
    def params_trainable(self) -> int:
        return trainable_parameters(self.config)

    @property
    def memory_gb(self) -> float:
        return model_memory_gb(self.config)

    def build(self, rng: Optional[np.random.Generator] = None):
        """Instantiate a trainable model. Paper-scale configs are refused —
        they exist for analytic use only."""
        if self.params_total > 50_000_000:
            raise ValueError(
                f"{self.key} is a paper-scale config ({self.params_total/1e9:.1f}B params); "
                "instantiate a tiny spec for actual training"
            )
        if isinstance(self.config, MixtralConfig):
            return MixtralModel(self.config, finetune_mode=self.finetune_method, rng=rng)
        return BlackMambaModel(self.config, rng=rng)


MODEL_REGISTRY: Dict[str, ModelSpec] = {
    "mixtral-8x7b": ModelSpec(
        key="mixtral-8x7b",
        config=MIXTRAL_8X7B,
        finetune_method="qlora",
        display_name="Mixtral",
    ),
    "blackmamba-2.8b": ModelSpec(
        key="blackmamba-2.8b",
        config=BLACKMAMBA_2_8B,
        finetune_method="full",
        display_name="BlackMamba",
    ),
    "mixtral-tiny": ModelSpec(
        key="mixtral-tiny",
        config=MIXTRAL_TINY,
        finetune_method="qlora",
        display_name="Mixtral (tiny)",
    ),
    "blackmamba-tiny": ModelSpec(
        key="blackmamba-tiny",
        config=BLACKMAMBA_TINY,
        finetune_method="full",
        display_name="BlackMamba (tiny)",
    ),
}


def get_model_spec(key: str) -> ModelSpec:
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {key!r}; available: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key]
