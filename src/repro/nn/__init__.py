"""Neural-network layer library (substrate S2).

Everything needed to assemble the paper's two model families: attention
and Mamba token mixers, RMSNorm, top-k routed MoE layers with SwiGLU or
GELU experts, LoRA/QLoRA adapters, and the causal-LM loss.
"""

from .attention import CausalSelfAttention
from .conv import CausalDepthwiseConv1d
from .embedding import Embedding
from .experts import GeluExpert, SwiGLUExpert
from .linear import Linear, LoRALinear, QuantizedLinear
from .loss import IGNORE_INDEX, cross_entropy, token_accuracy
from .mamba import MambaMixer
from .module import Module, ModuleList, Parameter
from .moe import MoELayer
from .norm import RMSNorm
from .router import RoutingDecision, TopKRouter

__all__ = [
    "CausalDepthwiseConv1d",
    "CausalSelfAttention",
    "Embedding",
    "GeluExpert",
    "IGNORE_INDEX",
    "Linear",
    "LoRALinear",
    "Module",
    "ModuleList",
    "MoELayer",
    "Parameter",
    "QuantizedLinear",
    "RMSNorm",
    "RoutingDecision",
    "SwiGLUExpert",
    "TopKRouter",
    "cross_entropy",
    "token_accuracy",
]
