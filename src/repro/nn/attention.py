"""Causal multi-head self-attention with grouped-query support.

Mixtral uses 32 query heads sharing 8 key/value heads (grouped-query
attention) plus FlashAttention2 kernels; functionally this module computes
the same attention — the fused-kernel effect only matters for the GPU
simulator, which models attention as a single efficient fused kernel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import resolve_rng
from ..tensor import Tensor, ops
from .linear import Linear
from .module import Module
from .rope import apply_rope, rope_angles

_NEG_INF = -1e9


class CausalSelfAttention(Module):
    """Multi-head causal self-attention over ``(batch, length, dim)`` inputs."""

    def __init__(
        self,
        dim: int,
        num_heads: int,
        num_kv_heads: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        num_kv_heads = num_kv_heads if num_kv_heads is not None else num_heads
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        if num_heads % num_kv_heads != 0:
            raise ValueError(f"num_heads {num_heads} not divisible by num_kv_heads {num_kv_heads}")
        rng = resolve_rng(rng)
        self.dim = dim
        self.num_heads = num_heads
        self.num_kv_heads = num_kv_heads
        self.head_dim = dim // num_heads
        self.q_proj = Linear(dim, num_heads * self.head_dim, rng=rng)
        self.k_proj = Linear(dim, num_kv_heads * self.head_dim, rng=rng)
        self.v_proj = Linear(dim, num_kv_heads * self.head_dim, rng=rng)
        self.o_proj = Linear(num_heads * self.head_dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, num_heads: int) -> Tensor:
        batch, length, _ = x.shape
        return x.reshape(batch, length, num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _repeat_kv(self, x: Tensor) -> Tensor:
        """Expand kv heads to match query heads (grouped-query attention)."""
        group = self.num_heads // self.num_kv_heads
        if group == 1:
            return x
        repeated = [x[:, head : head + 1] for head in range(self.num_kv_heads) for _ in range(group)]
        return ops.concat(repeated, axis=1)

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), self.num_heads)
        k = self._repeat_kv(self._split_heads(self.k_proj(x), self.num_kv_heads))
        v = self._repeat_kv(self._split_heads(self.v_proj(x), self.num_kv_heads))

        cos, sin = rope_angles(length, self.head_dim)
        q = apply_rope(q, cos, sin)
        k = apply_rope(k, cos, sin)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / np.sqrt(self.head_dim))
        causal = np.tril(np.ones((length, length), dtype=bool))
        scores = ops.where(causal, scores, _NEG_INF)
        weights = scores.softmax(axis=-1)
        context = weights @ v

        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.dim)
        return self.o_proj(merged)

    def __repr__(self) -> str:
        return (
            f"CausalSelfAttention(dim={self.dim}, heads={self.num_heads}, "
            f"kv_heads={self.num_kv_heads})"
        )
