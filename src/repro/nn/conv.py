"""Causal depthwise 1-D convolution (the short conv inside Mamba blocks)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import resolve_rng
from ..tensor import Tensor, ops
from .module import Module, Parameter


class CausalDepthwiseConv1d(Module):
    """Per-channel causal convolution over ``(batch, length, channels)``.

    ``y[:, t, c] = sum_j w[c, j] * x[:, t - K + 1 + j, c] + b[c]`` with zero
    padding on the left, so position ``t`` only sees positions ``<= t``.
    """

    def __init__(
        self,
        channels: int,
        kernel_size: int = 4,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ValueError(f"kernel_size must be positive, got {kernel_size}")
        rng = resolve_rng(rng)
        scale = 1.0 / np.sqrt(kernel_size)
        self.channels = channels
        self.kernel_size = kernel_size
        self.weight = Parameter(rng.uniform(-scale, scale, (channels, kernel_size)))
        self.bias = Parameter(np.zeros(channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        batch, length, channels = x.shape
        if channels != self.channels:
            raise ValueError(f"expected {self.channels} channels, got {channels}")
        padded = ops.pad(x, [(0, 0), (self.kernel_size - 1, 0), (0, 0)])
        out = None
        for j in range(self.kernel_size):
            tap = padded[:, j : j + length, :] * self.weight[:, j]
            out = tap if out is None else out + tap
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"CausalDepthwiseConv1d(channels={self.channels}, k={self.kernel_size})"
