"""Token embedding layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import resolve_rng
from ..tensor import Tensor, ops
from .module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer token ids to vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(rng.standard_normal((num_embeddings, embedding_dim)) * 0.02)

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise IndexError(
                f"token id out of range [0, {self.num_embeddings}): "
                f"min={ids.min()}, max={ids.max()}"
            )
        return ops.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding(vocab={self.num_embeddings}, dim={self.embedding_dim})"
