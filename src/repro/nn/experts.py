"""Expert feed-forward networks — the two architectures of the paper's Fig. 7.

* :class:`SwiGLUExpert` (Mixtral): three weight matrices. ``W1`` (gate) and
  ``W3`` (up) run in parallel, are combined as ``silu(x W1^T) * (x W3^T)``,
  and ``W2`` projects back down.
* :class:`GeluExpert` (BlackMamba): two serial matrices with a GELU between,
  ``W2(gelu(W1 x))``.

Both support dense trainable weights (full fine-tuning) or NF4-quantized
frozen weights with LoRA adapters (the Mixtral QLoRA configuration).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import resolve_rng
from ..tensor import Tensor, ops
from .linear import Linear, LoRALinear, QuantizedLinear
from .module import Module


def _maybe_adapt(layer: Linear, quantize: bool, lora_rank: int, rng) -> Module:
    """Optionally convert a dense projection into QLoRA form."""
    if not quantize and lora_rank <= 0:
        return layer
    base: Module = QuantizedLinear.from_linear(layer) if quantize else layer
    if lora_rank > 0:
        return LoRALinear(base, rank=lora_rank, rng=rng)
    base.freeze()
    return base


class SwiGLUExpert(Module):
    """Mixtral-style expert: ``W2(silu(W1 x) * (W3 x))``."""

    KERNEL_NAMES = ("matmul(w1)", "matmul(w3)", "matmul(w2)")

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        quantize: bool = False,
        lora_rank: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.w1 = _maybe_adapt(Linear(dim, hidden_dim, rng=rng), quantize, lora_rank, rng)
        self.w3 = _maybe_adapt(Linear(dim, hidden_dim, rng=rng), quantize, lora_rank, rng)
        self.w2 = _maybe_adapt(Linear(hidden_dim, dim, rng=rng), quantize, lora_rank, rng)

    def forward(self, x: Tensor) -> Tensor:
        gate = ops.silu(self.w1(x))
        up = self.w3(x)
        return self.w2(gate * up)

    @staticmethod
    def describe() -> str:
        """Structural summary matching the paper's Fig. 7 (top)."""
        return "x -> [W1 -> silu] * [W3] -> W2 -> out  (Swish-gated linear unit, 3 matrices)"


class GeluExpert(Module):
    """BlackMamba-style expert: ``W2(gelu(W1 x))``."""

    KERNEL_NAMES = ("matmul(w1)", "gelu", "matmul(w2)")

    def __init__(
        self,
        dim: int,
        hidden_dim: int,
        quantize: bool = False,
        lora_rank: int = 0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.dim = dim
        self.hidden_dim = hidden_dim
        self.w1 = _maybe_adapt(Linear(dim, hidden_dim, rng=rng), quantize, lora_rank, rng)
        self.w2 = _maybe_adapt(Linear(hidden_dim, dim, rng=rng), quantize, lora_rank, rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.w2(ops.gelu(self.w1(x)))

    @staticmethod
    def describe() -> str:
        """Structural summary matching the paper's Fig. 7 (bottom)."""
        return "x -> W1 -> gelu -> W2 -> out  (standard FFN, 2 serial matrices)"
