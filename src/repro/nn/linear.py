"""Linear projections: dense, NF4-quantized (frozen), and LoRA-wrapped.

These three classes are the building blocks of the paper's two fine-tuning
regimes:

* BlackMamba full fine-tuning → plain :class:`Linear` everywhere.
* Mixtral QLoRA → :class:`QuantizedLinear` frozen base weights that are
  dequantized on every forward (the Fig. 6 ``*_dequant`` kernels), with
  :class:`LoRALinear` adapters adding the trainable low-rank path.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..quant import QuantizedTensor, quantize
from ..rng import resolve_rng
from ..tensor import Tensor
from .module import Module, Parameter


def _kaiming_scale(fan_in: int) -> float:
    return float(1.0 / np.sqrt(fan_in))


class Linear(Module):
    """``y = x @ W^T + b`` with Kaiming-uniform style initialization."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        scale = _kaiming_scale(in_features)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(rng.uniform(-scale, scale, (out_features, in_features)))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:
        return f"Linear(in={self.in_features}, out={self.out_features}, bias={self.bias is not None})"


class QuantizedLinear(Module):
    """A frozen linear layer whose weight lives in NF4 and is dequantized per call.

    Mirrors QLoRA semantics: the 4-bit base weight receives no gradient;
    activations flow through the dequantized matrix, so gradients still
    propagate to the layer *input* (needed by LoRA adapters upstream).
    """

    def __init__(self, in_features: int, out_features: int, weight: np.ndarray, block_size: int = 64) -> None:
        super().__init__()
        if weight.shape != (out_features, in_features):
            raise ValueError(f"weight shape {weight.shape} != ({out_features}, {in_features})")
        self.in_features = in_features
        self.out_features = out_features
        self.quantized: QuantizedTensor = quantize(weight, block_size=block_size)
        self.dequant_calls = 0  # profiling hook: counts Fig. 6 dequant kernel launches

    @classmethod
    def from_linear(cls, linear: Linear, block_size: int = 64) -> "QuantizedLinear":
        if linear.bias is not None:
            raise ValueError("QuantizedLinear does not support bias")
        return cls(linear.in_features, linear.out_features, linear.weight.data, block_size=block_size)

    def forward(self, x: Tensor) -> Tensor:
        self.dequant_calls += 1
        weight = Tensor(self.quantized.dequantize(dtype=x.dtype))
        return x @ weight.T

    def __repr__(self) -> str:
        return f"QuantizedLinear(in={self.in_features}, out={self.out_features}, nf4)"


class LoRALinear(Module):
    """Low-Rank Adaptation around a frozen base projection.

    ``y = base(x) + (alpha / r) * (x @ A^T) @ B^T`` where ``A`` (r x in) is
    Gaussian-initialized and ``B`` (out x r) starts at zero so the adapter
    is a no-op at step 0 (Hu et al., 2021).
    """

    def __init__(
        self,
        base: Module,
        rank: int = 16,
        alpha: float = 16.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if rank <= 0:
            raise ValueError(f"LoRA rank must be positive, got {rank}")
        rng = resolve_rng(rng)
        in_features = base.in_features
        out_features = base.out_features
        self.base = base
        self.rank = rank
        self.alpha = alpha
        self.scaling = alpha / rank
        self.lora_a = Parameter(rng.standard_normal((rank, in_features)) * (1.0 / np.sqrt(in_features)))
        self.lora_b = Parameter(np.zeros((out_features, rank)))
        # The base weights never train under LoRA.
        self.base.freeze()

    @property
    def in_features(self) -> int:
        return self.base.in_features

    @property
    def out_features(self) -> int:
        return self.base.out_features

    def forward(self, x: Tensor) -> Tensor:
        frozen = self.base(x)
        low_rank = (x @ self.lora_a.T) @ self.lora_b.T
        return frozen + low_rank * self.scaling

    def num_adapter_parameters(self) -> int:
        return self.lora_a.size + self.lora_b.size

    def merged_weight(self) -> np.ndarray:
        """Return base + adapter as a dense matrix (for analysis only)."""
        if isinstance(self.base, QuantizedLinear):
            base_w = self.base.quantized.dequantize()
        else:
            base_w = self.base.weight.data
        return base_w + self.scaling * (self.lora_b.data @ self.lora_a.data)

    def __repr__(self) -> str:
        return f"LoRALinear(r={self.rank}, alpha={self.alpha}, base={self.base!r})"
