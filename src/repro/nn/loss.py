"""Loss functions for causal language-model fine-tuning."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops

IGNORE_INDEX = -100


def cross_entropy(logits: Tensor, targets: np.ndarray, ignore_index: int = IGNORE_INDEX) -> Tensor:
    """Mean token-level cross-entropy.

    Parameters
    ----------
    logits:
        ``(batch, length, vocab)`` or ``(tokens, vocab)`` tensor.
    targets:
        Integer array matching the leading shape of ``logits``. Positions
        equal to ``ignore_index`` (prompt tokens, padding) contribute
        nothing to the loss — this mirrors how instruction fine-tuning
        masks the prompt and trains only on the answer.
    """
    targets = np.asarray(targets)
    if logits.ndim == 3:
        batch, length, vocab = logits.shape
        logits = logits.reshape(batch * length, vocab)
        targets = targets.reshape(-1)
    elif logits.ndim != 2:
        raise ValueError(f"logits must be 2-D or 3-D, got shape {logits.shape}")

    keep = targets != ignore_index
    count = int(keep.sum())
    if count == 0:
        raise ValueError("all target positions are masked; nothing to train on")

    kept_rows = np.nonzero(keep)[0]
    log_probs = ops.log_softmax(logits, axis=-1)
    picked = log_probs[kept_rows, targets[kept_rows]]
    return -picked.sum() / count


def token_accuracy(logits: Tensor, targets: np.ndarray, ignore_index: int = IGNORE_INDEX) -> float:
    """Fraction of unmasked positions where argmax(logits) == target."""
    targets = np.asarray(targets)
    predictions = logits.data.argmax(axis=-1)
    keep = targets != ignore_index
    if keep.sum() == 0:
        return 0.0
    return float((predictions[keep] == targets[keep]).mean())
