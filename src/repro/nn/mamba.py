"""Selective state-space (Mamba) mixer.

BlackMamba replaces attention with Mamba layers (Gu & Dao, 2024). This is
a faithful small-scale implementation of the selective SSM:

1. ``in_proj`` expands the model dim to an inner dim and a gate path.
2. A short causal depthwise convolution plus SiLU shapes the inner signal.
3. ``x_proj``/``dt_proj`` produce the input-dependent step size ``delta``
   and the state matrices ``B_t`` and ``C_t`` (the *selective* part).
4. The diagonal recurrence ``h_t = exp(delta_t * A) h_{t-1} + delta_t B_t x_t``
   runs through the custom :func:`~repro.tensor.ops.scan_diag` kernel.
5. The output contracts the state with ``C_t``, adds a skip ``D`` path, is
   gated by ``silu(z)``, and projects back to the model dim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..rng import resolve_rng
from ..tensor import Tensor, ops
from .conv import CausalDepthwiseConv1d
from .linear import Linear
from .module import Module, Parameter


class MambaMixer(Module):
    """Selective SSM token mixer over ``(batch, length, dim)`` inputs."""

    def __init__(
        self,
        dim: int,
        state_dim: int = 8,
        expand: int = 2,
        conv_kernel: int = 4,
        dt_rank: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = resolve_rng(rng)
        self.dim = dim
        self.state_dim = state_dim
        self.inner_dim = expand * dim
        self.dt_rank = dt_rank if dt_rank is not None else max(1, dim // 8)

        self.in_proj = Linear(dim, 2 * self.inner_dim, rng=rng)
        self.conv = CausalDepthwiseConv1d(self.inner_dim, kernel_size=conv_kernel, rng=rng)
        self.x_proj = Linear(self.inner_dim, self.dt_rank + 2 * state_dim, rng=rng)
        self.dt_proj = Linear(self.dt_rank, self.inner_dim, bias=True, rng=rng)
        self.out_proj = Linear(self.inner_dim, dim, rng=rng)
        # S4D-real initialization: A_n = -(n+1), stored as log magnitude.
        a_init = np.tile(np.arange(1, state_dim + 1, dtype=np.float64), (self.inner_dim, 1))
        self.a_log = Parameter(np.log(a_init))
        self.d_skip = Parameter(np.ones(self.inner_dim))

    def forward(self, x: Tensor) -> Tensor:
        batch, length, _ = x.shape
        inner = self.inner_dim
        state = self.state_dim

        projected = self.in_proj(x)
        u = projected[:, :, :inner]
        z = projected[:, :, inner:]

        u = ops.silu(self.conv(u))

        params = self.x_proj(u)
        dt_raw = params[:, :, : self.dt_rank]
        b_t = params[:, :, self.dt_rank : self.dt_rank + state]
        c_t = params[:, :, self.dt_rank + state :]
        delta = ops.softplus(self.dt_proj(dt_raw))  # (batch, length, inner)

        # Discretize: decay = exp(delta * A) with A = -exp(a_log) (negative real).
        a_matrix = -ops.exp(self.a_log)  # (inner, state)
        delta_4d = delta.reshape(batch, length, inner, 1)
        decay = ops.exp(delta_4d * a_matrix)  # (batch, length, inner, state)

        # Input injection: delta_t * B_t * u_t, broadcast over the state axis.
        b_4d = b_t.reshape(batch, length, 1, state)
        u_4d = u.reshape(batch, length, inner, 1)
        driven = delta_4d * b_4d * u_4d  # (batch, length, inner, state)

        hidden = ops.scan_diag(
            decay.reshape(batch, length, inner * state),
            driven.reshape(batch, length, inner * state),
        ).reshape(batch, length, inner, state)

        # Output contraction with C_t plus the direct (skip) path.
        c_4d = c_t.reshape(batch, length, 1, state)
        y = (hidden * c_4d).sum(axis=-1) + u * self.d_skip

        gated = y * ops.silu(z)
        return self.out_proj(gated)

    def __repr__(self) -> str:
        return (
            f"MambaMixer(dim={self.dim}, inner={self.inner_dim}, "
            f"state={self.state_dim}, dt_rank={self.dt_rank})"
        )
