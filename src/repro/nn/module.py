"""Module / Parameter containers for the layer library.

A :class:`Module` automatically registers :class:`Parameter` and child
``Module`` attributes, exposes recursive iteration over parameters, and a
train/eval switch — the minimal subset of the familiar torch.nn surface
needed by the paper's fine-tuning stack.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A tensor that is trainable by default and discoverable by Modules."""

    def __init__(self, data, requires_grad: bool = True, name: str = "") -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all layers.

    Subclasses implement :meth:`forward`; calling the module invokes it.
    Attribute assignment of :class:`Parameter` or ``Module`` instances
    registers them for recursive traversal.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _name, param in self.named_parameters():
            yield param

    def trainable_parameters(self) -> Iterator[Parameter]:
        for param in self.parameters():
            if param.requires_grad:
                yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _name, module in self.named_modules():
            yield module

    # ------------------------------------------------------------------
    # State management
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (used before LoRA injection)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def num_parameters(self, trainable_only: bool = False) -> int:
        total = 0
        for param in self.parameters():
            if trainable_only and not param.requires_grad:
                continue
            total += param.size
        return total

    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            if param.shape != state[name].shape:
                raise ValueError(f"shape mismatch for {name}: {param.shape} vs {state[name].shape}")
            param.data = state[name].copy()

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any):
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """An indexable container of submodules (e.g. decoder blocks, experts)."""

    def __init__(self, modules: Optional[list] = None) -> None:
        super().__init__()
        self._items: list = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> None:
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module

    def __getitem__(self, index: int) -> Module:
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)
