"""Mixture-of-Experts layer — an executable version of the paper's Fig. 12.

The pseudocode in the paper:

1. hidden states go to the router, which produces router logits;
2. logits determine the top-k experts per token;
3. tokens are grouped and dispatched to their assigned experts;
4. expert outputs are combined, weighted by the (renormalized) gate
   probabilities.

Dense fine-tuning sets ``top_k = num_experts`` (all experts active);
sparse fine-tuning uses ``top_k = 2`` of 8, matching the paper's setup.
The layer tracks per-expert token counts for the Fig. 11 load-imbalance
study and exposes a Switch-style auxiliary load-balancing loss used when
"pre-training" the tiny models into a balanced routing state.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..tensor import Tensor, ops
from ..tensor.grad_mode import is_grad_enabled
from .module import Module, ModuleList
from .router import TopKRouter


class MoELayer(Module):
    """Top-k routed mixture of expert FFNs over ``(batch, length, dim)``."""

    def __init__(
        self,
        dim: int,
        num_experts: int,
        top_k: int,
        expert_factory: Callable[[], Module],
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.dim = dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.router = TopKRouter(dim, num_experts, top_k, rng=rng)
        self.experts = ModuleList([expert_factory() for _ in range(num_experts)])
        # Profiling / characterization hooks.
        self.last_expert_counts: Optional[np.ndarray] = None
        self.cumulative_expert_counts = np.zeros(num_experts, dtype=np.int64)
        self.aux_loss: Optional[Tensor] = None
        self.track_aux_loss = False

    @property
    def sparsity(self) -> float:
        """Fraction of experts active per token (paper's sparsity knob)."""
        return self.top_k / self.num_experts

    def set_top_k(self, top_k: int) -> None:
        """Switch between dense (k = E) and sparse (k < E) fine-tuning."""
        if not 1 <= top_k <= self.num_experts:
            raise ValueError(f"top_k={top_k} out of range [1, {self.num_experts}]")
        self.top_k = top_k
        self.router.top_k = top_k

    def reset_load_statistics(self) -> None:
        self.last_expert_counts = None
        self.cumulative_expert_counts = np.zeros(self.num_experts, dtype=np.int64)

    def forward(self, x: Tensor) -> Tensor:
        batch, length, dim = x.shape
        num_tokens = batch * length
        flat = x.reshape(num_tokens, dim)

        decision = self.router(flat)
        # Under gradient checkpointing the block body executes twice (once
        # recording-free, once during recomputation). Count routing stats on
        # exactly one of those executions: the grad-enabled one while
        # training, or any execution in eval mode.
        if is_grad_enabled() or not self.training:
            self.last_expert_counts = decision.expert_counts
            self.cumulative_expert_counts += decision.expert_counts
        if self.track_aux_loss:
            self.aux_loss = self._load_balancing_loss(decision)

        combined = None
        for expert_id, expert in enumerate(self.experts):
            token_ids = np.nonzero((decision.expert_indices == expert_id).any(axis=-1))[0]
            if token_ids.size == 0:
                continue
            rows = ops.take_rows(flat, token_ids)
            expert_out = expert(rows)
            gate = decision.gates_full[token_ids, expert_id].reshape(token_ids.size, 1)
            contribution = ops.scatter_rows(expert_out * gate, token_ids, num_tokens)
            combined = contribution if combined is None else combined + contribution

        if combined is None:  # no tokens at all (empty input)
            combined = flat * 0.0
        return combined.reshape(batch, length, dim)

    def _load_balancing_loss(self, decision) -> Tensor:
        """Switch-Transformer auxiliary loss: E * sum_e f_e * P_e.

        ``f_e`` is the fraction of tokens dispatched to expert ``e`` (data)
        and ``P_e`` the mean router probability (differentiable). Minimized
        when routing is uniform.
        """
        num_tokens = max(1, int(decision.expert_counts.sum() // self.top_k))
        fractions = decision.expert_counts.astype(np.float64) / (num_tokens * self.top_k)
        mean_probs = decision.router_probs.mean(axis=0)
        return (mean_probs * Tensor(fractions)).sum() * float(self.num_experts)

    def __repr__(self) -> str:
        return (
            f"MoELayer(dim={self.dim}, experts={self.num_experts}, "
            f"top_k={self.top_k}, sparsity={self.sparsity:.3f})"
        )
