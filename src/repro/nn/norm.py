"""Root-mean-square layer normalization.

Both evaluated models use RMSNorm (the paper's Fig. 5 layer categories
"input normalization" / "post attention norm." for Mixtral and
"RMS layernorm" for BlackMamba).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, ops
from .module import Module, Parameter


class RMSNorm(Module):
    """``y = x / sqrt(mean(x^2) + eps) * weight`` over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-6) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.weight = Parameter(np.ones(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean_square = (x * x).mean(axis=-1, keepdims=True)
        normalized = x / ops.sqrt(mean_square + self.eps)
        return normalized * self.weight

    def __repr__(self) -> str:
        return f"RMSNorm(dim={self.dim}, eps={self.eps})"
