"""Rotary positional embeddings (RoPE), as used by Mixtral.

RoPE rotates query/key head dimensions pairwise by position-dependent
angles, encoding *relative* position in the attention dot products. The
rotation matrices are constants, so autograd flows through plain
elementwise arithmetic.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..tensor import Tensor, ops


def rope_angles(length: int, head_dim: int, base: float = 10000.0) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(cos, sin)`` tables of shape ``(length, head_dim)``.

    Each half-dimension pair ``(2i, 2i+1)`` rotates with frequency
    ``base**(-2i/head_dim)``; the tables duplicate the per-pair values so
    they can be applied with the rotate-half trick.
    """
    if head_dim % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {head_dim}")
    inv_freq = base ** (-np.arange(0, head_dim, 2, dtype=np.float64) / head_dim)
    positions = np.arange(length, dtype=np.float64)
    angles = np.outer(positions, inv_freq)  # (length, head_dim/2)
    doubled = np.concatenate([angles, angles], axis=-1)
    return np.cos(doubled), np.sin(doubled)


def _rotate_half(x: Tensor) -> Tensor:
    half = x.shape[-1] // 2
    first = x[..., :half]
    second = x[..., half:]
    return ops.concat([-second, first], axis=-1)


def apply_rope(x: Tensor, cos: np.ndarray, sin: np.ndarray) -> Tensor:
    """Rotate ``(batch, heads, length, head_dim)`` by the angle tables."""
    cos_t = Tensor(cos)  # broadcast over batch and heads
    sin_t = Tensor(sin)
    return x * cos_t + _rotate_half(x) * sin_t
