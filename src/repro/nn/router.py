"""Top-k gating router for Mixture-of-Experts layers.

Implements the routing step of the paper's Fig. 12 pseudocode: a linear
router produces per-expert logits for every token; the top-k experts are
selected; the selected logits are renormalized with a softmax to produce
gate weights. Routing decisions (which experts) are data — only the gate
*weights* carry gradients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..tensor import Tensor
from .linear import Linear
from .module import Module


@dataclass
class RoutingDecision:
    """Routing output for one batch of flattened tokens.

    Attributes
    ----------
    expert_indices:
        ``(tokens, k)`` int array of chosen expert ids per token.
    gates_full:
        ``(tokens, num_experts)`` tensor of gate weights, zero for experts
        that were not selected; rows sum to one. Differentiable.
    router_probs:
        ``(tokens, num_experts)`` full softmax over router logits
        (differentiable; used by the load-balancing auxiliary loss).
    expert_counts:
        ``(num_experts,)`` int array: tokens routed to each expert — the
        raw data behind the paper's Fig. 11 load-imbalance study.
    """

    expert_indices: np.ndarray
    gates_full: Tensor
    router_probs: Tensor
    expert_counts: np.ndarray


class TopKRouter(Module):
    """Linear router with top-k selection and renormalized softmax gates."""

    def __init__(
        self,
        dim: int,
        num_experts: int,
        top_k: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if not 1 <= top_k <= num_experts:
            raise ValueError(f"top_k={top_k} must be in [1, {num_experts}]")
        self.dim = dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.gate = Linear(dim, num_experts, rng=rng)

    def forward(self, flat_tokens: Tensor) -> RoutingDecision:
        """Route ``(tokens, dim)`` hidden states to ``top_k`` experts each."""
        logits = self.gate(flat_tokens)  # (tokens, num_experts)
        num_tokens = logits.shape[0]

        # Expert choice is a data-level decision (no gradient through argmax).
        raw = logits.data
        expert_indices = np.argpartition(-raw, self.top_k - 1, axis=-1)[:, : self.top_k]

        # Gate weights: softmax over the selected logits only, implemented as
        # a masked renormalized softmax so gradients flow to the router.
        selected = np.zeros_like(raw, dtype=bool)
        np.put_along_axis(selected, expert_indices, True, axis=-1)
        probs = logits.softmax(axis=-1)
        masked = probs * Tensor(selected.astype(raw.dtype))
        gates_full = masked / masked.sum(axis=-1, keepdims=True)

        counts = np.bincount(expert_indices.reshape(-1), minlength=self.num_experts)
        return RoutingDecision(
            expert_indices=expert_indices,
            gates_full=gates_full,
            router_probs=probs,
            expert_counts=counts,
        )

    def __repr__(self) -> str:
        return f"TopKRouter(dim={self.dim}, experts={self.num_experts}, k={self.top_k})"
