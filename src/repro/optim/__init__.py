"""Optimizers and schedules (substrate S3)."""

from .adamw import AdamW
from .optimizer import Optimizer
from .scheduler import ConstantLR, LRScheduler, WarmupCosineLR
from .sgd import SGD

__all__ = ["AdamW", "ConstantLR", "LRScheduler", "Optimizer", "SGD", "WarmupCosineLR"]
