"""AdamW — the fine-tuning optimizer used throughout the paper's study.

Keeps two fp32 moment buffers per trainable parameter; this 8-bytes/param
state is what the memory estimator charges for the optimizer, and the
elementwise update sweep is what the GPU simulator models as the
"optimizer" stage of Fig. 4.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class AdamW(Optimizer):
    """Decoupled weight decay Adam (Loshchilov & Hutter, 2019)."""

    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 5e-5,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._moment1: Dict[int, np.ndarray] = {}
        self._moment2: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        bias1 = 1.0 - self.beta1**self.step_count
        bias2 = 1.0 - self.beta2**self.step_count
        for param in self.params:
            if param.grad is None:
                continue
            grad = param.grad
            m = self._moment1.get(id(param))
            v = self._moment2.get(id(param))
            m = (1 - self.beta1) * grad if m is None else self.beta1 * m + (1 - self.beta1) * grad
            v = (1 - self.beta2) * grad**2 if v is None else self.beta2 * v + (1 - self.beta2) * grad**2
            self._moment1[id(param)] = m
            self._moment2[id(param)] = v
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay > 0.0:
                param.data = param.data * (1.0 - self.lr * self.weight_decay)
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_bytes(self) -> int:
        """Optimizer memory footprint (two fp32 moments per parameter)."""
        return sum(2 * 4 * p.size for p in self.params)
