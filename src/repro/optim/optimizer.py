"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter


class Optimizer:
    """Holds a parameter list and a learning rate; subclasses apply updates.

    Only parameters with ``requires_grad=True`` are updated — under QLoRA
    this reduces the optimizer's working set to the LoRA adapters, which is
    exactly why the paper's Fig. 4 shows a negligible optimizer stage for
    Mixtral versus up to 53% of step time for fully-fine-tuned BlackMamba.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params: List[Parameter] = [p for p in params if p.requires_grad]
        if not self.params:
            raise ValueError("optimizer received no trainable parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    def num_optimized_parameters(self) -> int:
        return sum(p.size for p in self.params)
