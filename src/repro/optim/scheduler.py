"""Learning-rate schedules."""

from __future__ import annotations

import math

from .optimizer import Optimizer


class LRScheduler:
    """Base class: subclasses compute the lr for a given step."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.current_step = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        self.current_step += 1
        new_lr = self.lr_at(self.current_step)
        self.optimizer.lr = new_lr
        return new_lr


class ConstantLR(LRScheduler):
    """The paper fine-tunes with a constant 5e-5 learning rate."""

    def lr_at(self, step: int) -> float:
        return self.base_lr


class WarmupCosineLR(LRScheduler):
    """Linear warmup followed by cosine decay to ``min_lr``."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_steps <= warmup_steps:
            raise ValueError("total_steps must exceed warmup_steps")
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.min_lr = min_lr

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base_lr * step / max(1, self.warmup_steps)
        progress = (step - self.warmup_steps) / (self.total_steps - self.warmup_steps)
        progress = min(1.0, progress)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
