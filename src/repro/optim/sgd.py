"""Stochastic gradient descent with optional momentum."""

from __future__ import annotations

from typing import Dict, Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class SGD(Optimizer):
    """Classic SGD: ``p -= lr * (grad + momentum buffer)``."""

    def __init__(self, params: Iterable[Parameter], lr: float, momentum: float = 0.0) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.step_count += 1
        for param in self.params:
            if param.grad is None:
                continue
            update = param.grad
            if self.momentum > 0.0:
                buf = self._velocity.get(id(param))
                buf = update if buf is None else self.momentum * buf + update
                self._velocity[id(param)] = buf
                update = buf
            param.data = param.data - self.lr * update
