"""Profiling substrate (S10): Nsight-style reports + wall-clock stage timers."""

from .report import ProfileReport, compare_traces
from .wallclock import StageTimings, measure_throughput, profile_training_stages

__all__ = [
    "ProfileReport",
    "StageTimings",
    "compare_traces",
    "measure_throughput",
    "profile_training_stages",
]
