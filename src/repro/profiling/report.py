"""Nsight-style textual reports over simulated step traces.

The paper's hardware evaluation presents three views of one profiled
step: stage breakdown (Fig. 4), layer breakdown (Fig. 5) and kernel-level
tables with SM/DRAM utilization (Figs. 6, 9, 10). :class:`ProfileReport`
renders all three from a :class:`~repro.gpu.trace.StepTrace` so examples
and benchmarks can print paper-comparable tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..gpu.trace import StepTrace


def _bar(fraction: float, width: int = 28) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


@dataclass
class ProfileReport:
    """Formatted views over one simulated fine-tuning step."""

    trace: StepTrace

    def stage_table(self) -> str:
        """Fig. 4-style forward/backward/optimizer breakdown."""
        stages = self.trace.stage_seconds()
        total = sum(stages.values())
        lines = [f"Stage breakdown ({self.trace.label}, total {total:.3f}s):"]
        for stage in ("forward", "backward", "optimizer"):
            seconds = stages.get(stage, 0.0)
            share = seconds / total if total else 0.0
            lines.append(f"  {stage:<10} {seconds:8.3f}s  {100 * share:5.1f}%  {_bar(share)}")
        return "\n".join(lines)

    def layer_table(self) -> str:
        """Fig. 5-style per-layer-category breakdown."""
        layers = self.trace.layer_seconds()
        layers.pop("optimizer", None)
        total = sum(layers.values())
        lines = [f"Layer breakdown ({self.trace.label}, compute total {total:.3f}s):"]
        for name, seconds in sorted(layers.items(), key=lambda kv: -kv[1]):
            share = seconds / total if total else 0.0
            lines.append(f"  {name:<12} {seconds:8.3f}s  {100 * share:5.1f}%  {_bar(share)}")
        return "\n".join(lines)

    def kernel_table(self, layer: Optional[str] = "moe") -> str:
        """Fig. 6-style kernel breakdown (per-layer microseconds)."""
        per_kernel = self.trace.kernel_seconds_by_name(layer=layer)
        sm = self.trace.sm_utilization_by_kernel(layer=layer)
        dram = self.trace.dram_utilization_by_kernel(layer=layer)
        total = sum(per_kernel.values())
        header = f"{'kernel':<18} {'us/layer':>10} {'share':>7} {'SM%':>6} {'DRAM%':>7}"
        lines = [f"Kernel breakdown, layer={layer!r} ({self.trace.label}):", header]
        for name, seconds in sorted(per_kernel.items(), key=lambda kv: -kv[1]):
            share = seconds / total if total else 0.0
            lines.append(
                f"{name:<18} {seconds * 1e6:10.0f} {100 * share:6.1f}% "
                f"{sm.get(name, 0.0):5.0f} {dram.get(name, 0.0):6.0f}"
            )
        lines.append(
            f"{'time_weighted':<18} {total * 1e6:10.0f} {'100.0%':>7} "
            f"{self.trace.time_weighted_sm(layer):5.0f} {self.trace.time_weighted_dram(layer):6.0f}"
        )
        return "\n".join(lines)

    def full_report(self) -> str:
        return "\n\n".join(
            [
                self.trace.summary(),
                self.stage_table(),
                self.layer_table(),
                self.kernel_table("moe"),
            ]
        )


def compare_traces(traces: List[StepTrace], metric: str = "queries_per_second") -> str:
    """Side-by-side one-metric comparison (e.g. the Fig. 8 bar groups)."""
    lines = [f"{'configuration':<40} {metric:>18}"]
    for trace in traces:
        value = getattr(trace, metric)
        value = value() if callable(value) else value
        lines.append(f"{trace.label:<40} {value:18.3f}")
    return "\n".join(lines)
