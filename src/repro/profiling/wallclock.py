"""Wall-clock profiling of the *real* tiny-model training substrate.

Complements the simulator: measures actual forward/backward/optimizer
stage times of the numpy training stack, giving a second, independent
source for the paper's Fig. 4-style stage breakdown (on tiny models). The
qualitative claims — backward > forward, optimizer share large under full
fine-tuning and negligible under LoRA — are checkable on real executions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..data import DataLoader, SyntheticDataset
from ..nn import cross_entropy
from ..optim import AdamW


@dataclass
class StageTimings:
    """Accumulated wall-clock seconds per training stage."""

    forward: float = 0.0
    backward: float = 0.0
    optimizer: float = 0.0
    steps: int = 0

    @property
    def total(self) -> float:
        return self.forward + self.backward + self.optimizer

    def shares(self) -> Dict[str, float]:
        total = self.total
        if total == 0:
            return {"forward": 0.0, "backward": 0.0, "optimizer": 0.0}
        return {
            "forward": self.forward / total,
            "backward": self.backward / total,
            "optimizer": self.optimizer / total,
        }


def profile_training_stages(
    model,
    dataset: SyntheticDataset,
    batch_size: int = 8,
    num_steps: int = 10,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> StageTimings:
    """Time forward/backward/optimizer across ``num_steps`` real steps."""
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
    optimizer = AdamW(model.parameters(), lr=learning_rate)
    timings = StageTimings()
    model.train()
    steps_done = 0
    while steps_done < num_steps:
        for batch in loader:
            start = time.perf_counter()
            logits = model(batch.input_ids)
            loss = cross_entropy(logits, batch.labels)
            after_forward = time.perf_counter()
            optimizer.zero_grad()
            loss.backward()
            after_backward = time.perf_counter()
            optimizer.step()
            after_optimizer = time.perf_counter()

            timings.forward += after_forward - start
            timings.backward += after_backward - after_forward
            timings.optimizer += after_optimizer - after_backward
            timings.steps += 1
            steps_done += 1
            if steps_done >= num_steps:
                break
    return timings


def measure_throughput(
    model,
    dataset: SyntheticDataset,
    batch_size: int,
    num_queries: int = 200,
    learning_rate: float = 1e-3,
    seed: int = 0,
) -> float:
    """Measured queries/second of real tiny-model fine-tuning."""
    subset = dataset.subset(num_queries, rng=np.random.default_rng(seed))
    loader = DataLoader(subset, batch_size=batch_size, shuffle=False, seed=seed)
    optimizer = AdamW(model.parameters(), lr=learning_rate)
    model.train()
    processed = 0
    start = time.perf_counter()
    for batch in loader:
        logits = model(batch.input_ids)
        loss = cross_entropy(logits, batch.labels)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        processed += batch.batch_size
    elapsed = time.perf_counter() - start
    return processed / elapsed if elapsed > 0 else 0.0
