"""NF4 blockwise quantization substrate (S4) — the QLoRA weight format."""

from .nf4 import (
    DEFAULT_BLOCK_SIZE,
    NF4_CODEBOOK,
    QuantizedTensor,
    quantization_error,
    quantize,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "NF4_CODEBOOK",
    "QuantizedTensor",
    "quantization_error",
    "quantize",
]
