"""NF4 blockwise quantization (the QLoRA weight format).

QLoRA stores frozen base weights as 4-bit NormalFloat (NF4) codes with a
per-block absmax scale, and dequantizes them on the fly inside every
forward pass. This module reimplements that scheme:

* :data:`NF4_CODEBOOK` — the 16 NF4 levels (quantiles of a standard
  normal, normalized to [-1, 1]) from Dettmers et al., 2023.
* :func:`quantize` / :class:`QuantizedTensor` — blockwise encode with
  packed 4-bit codes (two codes per byte) plus per-block scales.
* :meth:`QuantizedTensor.dequantize` — exact decode used by the
  quantized-linear layer; this is the operation that shows up as the
  ``*_dequant`` kernels of the paper's Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

# The 16 NormalFloat-4 levels from the QLoRA paper (bitsandbytes values).
NF4_CODEBOOK = np.array(
    [
        -1.0,
        -0.6961928009986877,
        -0.5250730514526367,
        -0.39491748809814453,
        -0.28444138169288635,
        -0.18477343022823334,
        -0.09105003625154495,
        0.0,
        0.07958029955625534,
        0.16093020141124725,
        0.24611230194568634,
        0.33791524171829224,
        0.44070982933044434,
        0.5626170039176941,
        0.7229568362236023,
        1.0,
    ],
    dtype=np.float64,
)

# Decision boundaries (midpoints) for nearest-level encoding via searchsorted.
_NF4_BOUNDARIES = (NF4_CODEBOOK[1:] + NF4_CODEBOOK[:-1]) / 2.0

DEFAULT_BLOCK_SIZE = 64


@dataclass
class QuantizedTensor:
    """A 4-bit NF4-encoded tensor with per-block absmax scales.

    Attributes
    ----------
    packed:
        uint8 array with two 4-bit codes per byte (high nibble first).
    scales:
        float32 per-block absmax scale factors.
    shape:
        Original (unquantized) shape.
    block_size:
        Elements per quantization block.
    """

    packed: np.ndarray
    scales: np.ndarray
    shape: Tuple[int, ...]
    block_size: int = DEFAULT_BLOCK_SIZE

    @property
    def num_elements(self) -> int:
        return int(np.prod(self.shape))

    @property
    def nominal_bytes(self) -> int:
        """Storage cost: 0.5 bytes/element plus fp32 scale per block."""
        return self.packed.nbytes + self.scales.nbytes

    def dequantize(self, dtype=np.float64) -> np.ndarray:
        """Decode back to floating point (the QLoRA forward-pass dequant)."""
        n = self.num_elements
        padded = _ceil_to(n, self.block_size)
        codes = np.empty(padded, dtype=np.uint8)
        codes[0::2] = self.packed >> 4
        codes[1::2] = self.packed & 0x0F
        values = NF4_CODEBOOK[codes].reshape(-1, self.block_size)
        values = values * self.scales[:, None]
        return values.reshape(-1)[:n].reshape(self.shape).astype(dtype)


def _ceil_to(n: int, multiple: int) -> int:
    return ((n + multiple - 1) // multiple) * multiple


def quantize(weight: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> QuantizedTensor:
    """Encode ``weight`` as blockwise NF4.

    Each block of ``block_size`` consecutive elements is scaled by its
    absolute maximum and mapped to the nearest NF4 level.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    flat = np.asarray(weight, dtype=np.float64).reshape(-1)
    n = flat.size
    padded = _ceil_to(n, block_size)
    buffer = np.zeros(padded, dtype=np.float64)
    buffer[:n] = flat
    blocks = buffer.reshape(-1, block_size)

    scales = np.abs(blocks).max(axis=1)
    scales = np.where(scales == 0.0, 1.0, scales)  # all-zero blocks decode to 0
    normalized = blocks / scales[:, None]
    codes = np.searchsorted(_NF4_BOUNDARIES, normalized.reshape(-1)).astype(np.uint8)

    packed = (codes[0::2] << 4) | codes[1::2]
    return QuantizedTensor(
        packed=packed,
        scales=scales.astype(np.float32),
        shape=tuple(np.asarray(weight).shape),
        block_size=block_size,
    )


def quantization_error(weight: np.ndarray, block_size: int = DEFAULT_BLOCK_SIZE) -> float:
    """RMS round-trip error, normalized by the RMS of the input."""
    qt = quantize(weight, block_size=block_size)
    reconstructed = qt.dequantize()
    rms = float(np.sqrt(np.mean(np.asarray(weight, dtype=np.float64) ** 2)))
    if rms == 0.0:
        return 0.0
    return float(np.sqrt(np.mean((reconstructed - weight) ** 2))) / rms
