"""Seeded-by-default random generators: one resolution rule for the repo.

Every layer that initializes random state (the :mod:`repro.nn` modules,
the model builders, :func:`repro.tensor.randn`) takes an optional
``rng``.  Before this module the ``None`` fallback was a bare
``np.random.default_rng()`` — fresh OS entropy on every call — so two
runs that forgot to thread a generator silently produced different
weights, breaking the repo's reproducible-by-default contract (and the
``no-unseeded-rng`` lint rule that now enforces it).

:func:`resolve_rng` mirrors :func:`repro.scenarios.resolve_cache` /
:func:`repro.telemetry.resolve_tracer`: the explicit argument wins, and
"nothing supplied" uniformly means "a fresh generator seeded with
:data:`DEFAULT_SEED`" — deterministic across processes and interpreter
runs, and independent between call sites (each fallback is its own
stream, so construction order does not couple two modules' weights).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

# The seed behind every implicit generator. Arbitrary but fixed: changing
# it changes every default-initialized weight in the repo, so treat it
# like a file-format version.
DEFAULT_SEED = 20240693  # arXiv:2408.04693, the source paper


def resolve_rng(rng: Optional[np.random.Generator] = None) -> np.random.Generator:
    """The given generator, or a fresh seeded default when ``None``.

    The fallback is seeded with :data:`DEFAULT_SEED`, so call sites that
    do not thread an explicit generator are reproducible by default —
    two ``Linear(4, 4)`` constructions in different processes build the
    same weights. Callers who want decorrelated streams pass their own
    generator (as every test and experiment already does).
    """
    return rng if rng is not None else np.random.default_rng(DEFAULT_SEED)
