"""Unified scenario engine (S14) — first-class sweeps over the
characterization space.

The paper's workflow is sweep -> fit -> project. This package makes the
sweep a first-class object:

* :class:`Scenario` — a frozen, hashable point of the (model, dataset,
  GPU, density, batch, seq_len, overrides) space;
* :class:`ScenarioGrid` — declarative enumeration (cartesian products,
  batch sweeps, filters, named presets);
* :class:`SimulationCache` — memoized ``simulate_step`` traces keyed by
  scenario, with hit/miss accounting;
* :class:`SweepRunner` — deterministic (optionally parallel) grid
  execution feeding experiment results.

Every experiment, the Eq. 2 fitting helpers and the cost model run their
sweeps through this engine, so one process simulates each distinct point
exactly once no matter how many consumers ask for it.
"""

from .cache import (
    CacheStats,
    SimulationCache,
    default_cache,
    reset_default_cache,
    resolve_cache,
)
from .grid import ScenarioGrid, preset, preset_names, register_preset
from .runner import SweepPoint, SweepRunner
from .scenario import Scenario, freeze_overrides

__all__ = [
    "CacheStats",
    "Scenario",
    "ScenarioGrid",
    "SimulationCache",
    "SweepPoint",
    "SweepRunner",
    "default_cache",
    "freeze_overrides",
    "preset",
    "preset_names",
    "register_preset",
    "reset_default_cache",
    "resolve_cache",
]
