"""Unified scenario engine (S14) — first-class sweeps over the
characterization space.

The paper's workflow is sweep -> fit -> project. This package makes the
sweep a first-class object:

* :class:`Scenario` — a frozen, hashable point of the (model, dataset,
  GPU, density, batch, seq_len, overrides) space;
* :class:`ScenarioGrid` — declarative enumeration (cartesian products,
  batch sweeps, filters, named presets);
* :class:`SimulationCache` — memoized ``simulate_step`` traces keyed by
  scenario, with hit/miss accounting, optionally tiered onto a
  :class:`DiskTraceStore` so warmth survives the process;
* :class:`DiskTraceStore` — persistent traces keyed by
  :meth:`Scenario.digest` (sha256 of the canonical scenario text), with
  versioned entries, atomic writes and corruption tolerance;
* :class:`SweepRunner` — deterministic (optionally parallel) grid
  execution feeding experiment results; ``executor="process"`` fans
  grids out over a process pool whose workers warm the shared store.

Every experiment, the Eq. 2 fitting helpers and the cost model run their
sweeps through this engine, so one process simulates each distinct point
exactly once no matter how many consumers ask for it — and with a cache
dir attached, across processes too.
"""

from .cache import (
    CacheStats,
    SimulationCache,
    default_cache,
    reset_default_cache,
    resolve_cache,
)
from .grid import ScenarioGrid, preset, preset_names, register_preset
from .runner import SweepPoint, SweepRunner
from .scenario import Scenario, canonical_value, freeze_overrides
from .singleflight import InFlightMap, SingleFlight
from .store import ENV_CACHE_DIR, DiskTraceStore, resolve_store

__all__ = [
    "CacheStats",
    "DiskTraceStore",
    "ENV_CACHE_DIR",
    "InFlightMap",
    "Scenario",
    "ScenarioGrid",
    "SimulationCache",
    "SingleFlight",
    "SweepPoint",
    "SweepRunner",
    "canonical_value",
    "default_cache",
    "freeze_overrides",
    "preset",
    "preset_names",
    "register_preset",
    "reset_default_cache",
    "resolve_cache",
    "resolve_store",
]
