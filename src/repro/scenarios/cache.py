"""Memoized simulation: one trace per scenario, shared by every consumer.

``GPUSimulator.simulate_step`` rebuilds the full kernel inventory and
rooflines every kernel on each call, so before this layer existed the
same (config, batch, seq_len, density) point was re-simulated many times
across figure reproduction, Eq. 2 fitting and cost ranking.
:class:`SimulationCache` memoizes step traces by
:meth:`Scenario.key <repro.scenarios.scenario.Scenario.key>` and exposes
hit/miss counters so benchmarks (and the acceptance criterion "zero
redundant simulations on a warm report pass") can verify sharing.

A process-global default cache backs every consumer that is not handed an
explicit one, so independent experiments executed in one process share
traces. Traces are pure functions of the scenario, so cross-consumer
reuse is always sound.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..gpu.simulator import GPUSimulator, SoftwareOverhead
from ..gpu.specs import GPUSpec
from ..gpu.trace import StepTrace
from .scenario import ModelConfig, Scenario, freeze_overrides


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the cache's accounting counters."""

    hits: int
    misses: int
    entries: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class SimulationCache:
    """Memoizes :meth:`GPUSimulator.simulate_step` traces by scenario key.

    Thread-safe: a sweep running with ``jobs > 1`` shares one cache. Each
    simulator instance is also cached per GPU spec so repeated sweeps on
    the same hardware reuse one simulator.

    Scenario subclasses that extend the space with axes the per-device
    step does not depend on (``repro.cluster.ClusterScenario``'s
    ``num_gpus``/``interconnect``) inherit :meth:`Scenario.key` unchanged,
    so all their variants share one memoized replica trace here.
    """

    def __init__(self, overheads: Optional[Dict[str, SoftwareOverhead]] = None) -> None:
        self._overheads = overheads
        self._simulators: Dict[GPUSpec, GPUSimulator] = {}
        self._traces: Dict[Tuple, StepTrace] = {}
        self._derived: Dict[Tuple, object] = {}
        self._inflight: Dict[Tuple, threading.Event] = {}
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    def simulator(self, gpu: GPUSpec) -> GPUSimulator:
        """The (cached) simulator for one GPU spec."""
        with self._lock:
            sim = self._simulators.get(gpu)
            if sim is None:
                sim = GPUSimulator(gpu, overheads=self._overheads)
                self._simulators[gpu] = sim
            return sim

    def simulate(self, scenario: Scenario) -> StepTrace:
        """The step trace for one scenario, simulating at most once.

        Concurrent misses on the same key collapse: one thread simulates
        while the others wait on the in-flight marker, so duplicate
        points in a parallel sweep never run ``simulate_step`` twice.
        """
        key = scenario.key()
        while True:
            with self._lock:
                trace = self._traces.get(key)
                if trace is not None:
                    self._hits += 1
                    return trace
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    self._misses += 1
                    break  # this thread computes
            event.wait()  # another thread is computing; re-read after it
        try:
            sim = self.simulator(scenario.gpu_spec)
            trace = sim.simulate_step(
                scenario.config,
                scenario.batch_size,
                scenario.resolved_seq_len,
                dense=scenario.dense,
                **scenario.overrides_dict(),
            )
            with self._lock:
                self._traces[key] = trace
            return trace
        finally:
            # On failure waiters loop, find no trace, and one retries.
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def trace(
        self,
        cfg: ModelConfig,
        gpu: Union[str, GPUSpec],
        batch_size: int,
        seq_len: int,
        dense: bool = False,
        **overrides,
    ) -> StepTrace:
        """Positional convenience mirroring ``GPUSimulator.simulate_step``."""
        return self.simulate(
            Scenario(
                model=cfg,
                gpu=gpu,
                batch_size=batch_size,
                seq_len=seq_len,
                dense=dense,
                overrides=freeze_overrides(overrides),
            )
        )

    def throughput(self, scenario: Scenario) -> float:
        return self.simulate(scenario).queries_per_second

    def memoize(self, key: Tuple, compute):
        """Memoize a derived result (e.g. an Eq. 2 fit) that is a pure
        function of cached traces. ``key`` must be hashable and include
        everything the computation depends on. Concurrent misses collapse
        the same way :meth:`simulate` misses do."""
        while True:
            with self._lock:
                if key in self._derived:
                    return self._derived[key]
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break  # this thread computes
            event.wait()
        try:
            value = compute()
            with self._lock:
                self._derived[key] = value
            return value
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses, entries=len(self._traces))

    def clear(self) -> None:
        """Drop all cached traces/simulators/derived results and reset
        the counters."""
        with self._lock:
            self._traces.clear()
            self._simulators.clear()
            self._derived.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            return scenario.key() in self._traces


# ---------------------------------------------------------------------------
# Process-global default cache
# ---------------------------------------------------------------------------

_default_cache = SimulationCache()


def default_cache() -> SimulationCache:
    """The process-wide cache used when a consumer is not handed one."""
    return _default_cache


def reset_default_cache() -> SimulationCache:
    """Replace the global cache with a fresh one (tests/benchmarks)."""
    global _default_cache
    _default_cache = SimulationCache()
    return _default_cache


def resolve_cache(cache: Optional[SimulationCache]) -> SimulationCache:
    """The given cache, or the process-global default when ``None``.

    Every consumer that takes an optional ``cache`` argument (experiment
    modules, the cost model, sweep runners, the cluster planner) funnels
    through here, so "no cache supplied" uniformly means "share the
    process-wide traces"."""
    return cache if cache is not None else default_cache()
