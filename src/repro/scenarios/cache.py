"""Memoized simulation: one trace per scenario, shared by every consumer.

``GPUSimulator.simulate_step`` rebuilds the full kernel inventory and
rooflines every kernel on each call, so before this layer existed the
same (config, batch, seq_len, density) point was re-simulated many times
across figure reproduction, Eq. 2 fitting and cost ranking.
:class:`SimulationCache` memoizes step traces by
:meth:`Scenario.key <repro.scenarios.scenario.Scenario.key>` and exposes
hit/miss counters so benchmarks (and the acceptance criterion "zero
redundant simulations on a warm report pass") can verify sharing.

A process-global default cache backs every consumer that is not handed an
explicit one, so independent experiments executed in one process share
traces. Traces are pure functions of the scenario, so cross-consumer
reuse is always sound.

The cache is tiered: memory first, then (when a
:class:`~repro.scenarios.store.DiskTraceStore` is attached) disk, then
the simulator — so a process pointed at a warm store starts warm instead
of cold. ``stats()`` separates the tiers: ``hits`` (memory, plus derived
results), ``disk_hits``, ``misses``, and ``simulations`` — the ground
truth "how many times did ``simulate_step`` actually run", which is what
the zero-redundant-simulation acceptance criteria assert against.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

from ..gpu.simulator import GPUSimulator, SoftwareOverhead
from ..gpu.specs import GPUSpec
from ..gpu.trace import StepTrace
from ..telemetry.metrics import MetricsRegistry
from .scenario import ModelConfig, Scenario, freeze_overrides
from .singleflight import InFlightMap
from .store import DiskTraceStore

# Provenance of a fetched trace (also reported by process-pool workers so
# the parent can replay the lookup accounting deterministically).
MEMORY = "memory"
DISK = "disk"
SIMULATED = "simulated"


@dataclass(frozen=True)
class CacheStats:
    """A snapshot of the cache's accounting counters.

    ``risk_hits``/``risk_misses`` count :meth:`SimulationCache.memoize`
    traffic tagged ``kind="risk"`` (the spot planner's memoized risk
    results) separately from trace/derived traffic, so "the warm risk
    sweep recomputed nothing" is assertable without entangling the
    trace-layer counters that the zero-redundant-simulation criteria
    already pin down.

    ``evictions`` counts entries dropped by the LRU bound (see
    ``SimulationCache(capacity=...)``); it stays 0 for unbounded caches,
    which is why it defaults rather than being required.
    """

    hits: int
    misses: int
    entries: int
    disk_hits: int = 0
    simulations: int = 0
    risk_hits: int = 0
    risk_misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.disk_hits + self.misses

    @property
    def hit_rate(self) -> float:
        """The **any-tier** hit rate: the fraction of lookups served
        without running the simulator, i.e. ``(memory hits + disk hits)
        / lookups``. A disk hit counts as a hit here — the consumer got
        a trace without paying for a simulation. For the stricter
        "served from resident memory" view use :attr:`memory_hit_rate`;
        both share the same denominator (``lookups`` = hits + disk_hits
        + misses), so the two rates differ exactly by the disk tier's
        share."""
        return (self.hits + self.disk_hits) / self.lookups if self.lookups else 0.0

    @property
    def memory_hit_rate(self) -> float:
        """The **memory-only** hit rate: ``hits / lookups``. Disk hits
        count against this rate (they were not resident), which is what
        a "how warm is this process" question wants, as opposed to
        :attr:`hit_rate`'s "how often did we avoid simulating"."""
        return self.hits / self.lookups if self.lookups else 0.0


class SimulationCache:
    """Memoizes :meth:`GPUSimulator.simulate_step` traces by scenario key.

    Thread-safe: a sweep running with ``jobs > 1`` shares one cache. Each
    simulator instance is also cached per GPU spec so repeated sweeps on
    the same hardware reuse one simulator.

    Scenario subclasses that extend the space with axes the per-device
    step does not depend on (``repro.cluster.ClusterScenario``'s
    ``num_gpus``/``interconnect``) inherit :meth:`Scenario.key` unchanged,
    so all their variants share one memoized replica trace here.
    """

    def __init__(
        self,
        overheads: Optional[Dict[str, SoftwareOverhead]] = None,
        store: Optional[DiskTraceStore] = None,
        metrics: Optional[MetricsRegistry] = None,
        capacity: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self._overheads = overheads
        self.store = store
        # None = unbounded (the CLI default: a sweep is finite). A
        # long-lived server sets a bound; the memory tier then evicts
        # least-recently-used entries, spilling them to the disk store
        # (when attached) so an evicted trace is a disk hit later, never
        # a re-simulation. Traces and derived results are bounded
        # independently, each to `capacity` entries.
        self._capacity = capacity
        self._simulators: Dict[GPUSpec, GPUSimulator] = {}
        self._traces: Dict[Tuple, StepTrace] = {}
        # Scenario per resident trace key, so eviction can address the
        # disk store (which is keyed by Scenario.digest(), not key()).
        self._scenarios: Dict[Tuple, Scenario] = {}
        self._derived: Dict[Tuple, object] = {}
        # Trace keys and derived keys live in disjoint in-flight maps: a
        # derived key that happened to equal a trace key must not make one
        # computation wait on (or mask) the other. The maps are bare
        # marker tables; this cache's _lock guards them.
        self._inflight_traces = InFlightMap()
        self._inflight_derived = InFlightMap()
        self._lock = threading.Lock()
        # The accounting counters are first-class metrics: stats() reads
        # them back out of the registry, so CacheStats and a telemetry
        # export can never disagree about what the cache did.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._disk_hits = self.metrics.counter("cache.disk_hits")
        self._simulations = self.metrics.counter("cache.simulations")
        self._risk_hits = self.metrics.counter("cache.risk_hits")
        self._risk_misses = self.metrics.counter("cache.risk_misses")
        self._evictions = self.metrics.counter("cache.evictions")
        # Per-source fetch latency: how long a lookup took depending on
        # which tier answered it. Process-pool sweeps replay worker
        # observations through adopt(), so the *counts* (though not the
        # durations) are independent of --jobs/--executor.
        self._fetch_seconds = {
            MEMORY: self.metrics.histogram("cache.fetch.memory_seconds"),
            DISK: self.metrics.histogram("cache.fetch.disk_seconds"),
            SIMULATED: self.metrics.histogram("cache.fetch.simulated_seconds"),
        }
        self._memoize_seconds = {
            "derived": self.metrics.histogram("cache.memoize.derived_seconds"),
            "risk": self.metrics.histogram("cache.memoize.risk_seconds"),
        }

    def attach_store(self, store: Optional[DiskTraceStore]) -> None:
        """Attach (or with ``None`` detach) the disk tier. Used by the
        CLIs to bolt ``--cache-dir`` onto the process-global default
        cache so every consumer inherits persistence."""
        self.store = store

    @property
    def capacity(self) -> Optional[int]:
        """The LRU bound on the memory tier (``None`` = unbounded)."""
        return self._capacity

    # ------------------------------------------------------------------
    # LRU plumbing. All three helpers are called with self._lock held —
    # they are the "check/install/evict" half of an operation whose
    # hit/miss accounting must be atomic — except _spill, which performs
    # the eviction's disk I/O and therefore runs *after* the lock is
    # released.
    def _touch(self, key: Tuple) -> None:
        """Mark ``key`` most-recently-used (caller holds ``_lock``).
        Only bounded caches pay the reorder; unbounded ones keep the
        original single-dict-read hit path."""
        if self._capacity is not None and key in self._traces:
            self._traces[key] = self._traces.pop(key)  # repro: allow[lock-discipline] caller holds self._lock

    def _install(self, key: Tuple, scenario: Scenario, trace: StepTrace) -> list:
        """Install a resolved trace (caller holds ``_lock``), evicting
        least-recently-used entries past ``capacity``. Returns the
        evicted ``(scenario, trace)`` pairs for :meth:`_spill`."""
        self._traces[key] = trace  # repro: allow[lock-discipline] caller holds self._lock
        self._scenarios[key] = scenario  # repro: allow[lock-discipline] caller holds self._lock
        evicted = []
        if self._capacity is None:
            return evicted
        while len(self._traces) > self._capacity:
            old_key = next(iter(self._traces))
            old_trace = self._traces.pop(old_key)  # repro: allow[lock-discipline] caller holds self._lock
            old_scenario = self._scenarios.pop(old_key, None)  # repro: allow[lock-discipline] caller holds self._lock
            self._evictions.inc()
            if old_scenario is not None:
                evicted.append((old_scenario, old_trace))
        return evicted

    def _spill(self, evicted: list) -> None:
        """Best-effort write-back of evicted traces to the disk tier
        (outside the lock), so a bounded cache with a store attached
        never turns an eviction into a future re-simulation. Entries
        already on disk (the common case: simulated traces are written
        back at fetch time) are skipped; write failures degrade the
        entry to recomputable, they never raise."""
        store = self.store
        if store is None or not evicted:
            return
        for scenario, trace in evicted:
            try:
                if store.path_for(scenario.digest()).exists():
                    continue
                store.put(scenario, trace)
            except OSError:
                pass

    # ------------------------------------------------------------------
    def simulator(self, gpu: GPUSpec) -> GPUSimulator:
        """The (cached) simulator for one GPU spec."""
        with self._lock:
            sim = self._simulators.get(gpu)
            if sim is None:
                sim = GPUSimulator(gpu, overheads=self._overheads)
                self._simulators[gpu] = sim
            return sim

    def simulate(self, scenario: Scenario) -> StepTrace:
        """The step trace for one scenario, simulating at most once."""
        return self.fetch(scenario)[0]

    def fetch(self, scenario: Scenario) -> Tuple[StepTrace, str]:
        """The step trace plus its provenance: ``MEMORY``, ``DISK`` or
        ``SIMULATED``.

        Tiers resolve in that order; a disk hit is promoted into memory
        and a simulated trace is written back to the store (when one is
        attached), so both warm every later consumer. Concurrent misses
        on the same key collapse: one thread resolves the tail tiers
        while the others wait on the in-flight marker, so duplicate
        points in a parallel sweep never run ``simulate_step`` twice.
        """
        started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
        key = scenario.key()
        while True:
            with self._lock:
                trace = self._traces.get(key)
                if trace is not None:
                    self._touch(key)
                    self._hits.inc()
                    self._fetch_seconds[MEMORY].observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
                    return trace, MEMORY
                event, leader = self._inflight_traces.claim(key)
                if leader:
                    break  # this thread resolves disk/simulate
            event.wait()  # another thread is computing; re-read after it
        try:
            store = self.store
            if store is not None:
                trace = store.get(scenario)
                if trace is not None:
                    with self._lock:
                        self._disk_hits.inc()
                        evicted = self._install(key, scenario, trace)
                    self._spill(evicted)
                    self._fetch_seconds[DISK].observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
                    return trace, DISK
            with self._lock:
                self._misses.inc()
                self._simulations.inc()
            sim = self.simulator(scenario.gpu_spec)
            trace = sim.simulate_step(
                scenario.config,
                scenario.batch_size,
                scenario.resolved_seq_len,
                dense=scenario.dense,
                **scenario.overrides_dict(),
            )
            with self._lock:
                evicted = self._install(key, scenario, trace)
            self._spill(evicted)
            if store is not None:
                # Persistence is best-effort, mirroring the store's read
                # contract: a full or read-only cache volume degrades the
                # run to unpersisted, it does not crash a sweep whose
                # simulation already succeeded.
                try:
                    store.put(scenario, trace)
                except OSError:
                    pass
            self._fetch_seconds[SIMULATED].observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
            return trace, SIMULATED
        finally:
            # On failure waiters loop, find no trace, and one retries.
            with self._lock:
                self._inflight_traces.release(key)
            event.set()

    def adopt(
        self,
        scenario: Scenario,
        trace: StepTrace,
        source: str,
        seconds: Optional[float] = None,
    ) -> StepTrace:
        """Install a trace resolved by a process-pool worker, replaying
        the accounting of the tier the worker hit (``source``): a key
        already in memory counts a hit (and keeps the resident trace, for
        identity stability); otherwise the worker's disk hit or
        simulation is counted here exactly as a local lookup would have
        been — which is what keeps ``--executor process`` reports
        byte-identical to serial runs, cache telemetry included.

        ``seconds`` is the worker's measured fetch latency; it is
        replayed into the tier's latency histogram so the observation
        *counts* match a serial run exactly (the durations are the
        worker's own — wall-clock is the one thing replay cannot fake).
        """
        started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
        key = scenario.key()
        with self._lock:
            existing = self._traces.get(key)
            if existing is not None:
                self._touch(key)
                self._hits.inc()
                self._fetch_seconds[MEMORY].observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
                return existing
            evicted = self._install(key, scenario, trace)
            if source == DISK:
                self._disk_hits.inc()
            else:
                self._misses.inc()
                if source == SIMULATED:
                    self._simulations.inc()
        self._spill(evicted)
        tier = source if source in self._fetch_seconds else SIMULATED
        self._fetch_seconds[tier].observe(
            seconds if seconds is not None else time.perf_counter() - started  # repro: allow[no-wall-clock] telemetry latency measurement
        )
        return trace

    def trace(
        self,
        cfg: ModelConfig,
        gpu: Union[str, GPUSpec],
        batch_size: int,
        seq_len: int,
        dense: bool = False,
        **overrides,
    ) -> StepTrace:
        """Positional convenience mirroring ``GPUSimulator.simulate_step``."""
        return self.simulate(
            Scenario(
                model=cfg,
                gpu=gpu,
                batch_size=batch_size,
                seq_len=seq_len,
                dense=dense,
                overrides=freeze_overrides(overrides),
            )
        )

    def throughput(self, scenario: Scenario) -> float:
        return self.simulate(scenario).queries_per_second

    def memoize(self, key: Tuple, compute, kind: str = "derived"):
        """Memoize a derived result (e.g. an Eq. 2 fit) that is a pure
        function of cached traces. ``key`` must be hashable and include
        everything the computation depends on. Concurrent misses collapse
        the same way :meth:`simulate` misses do, and the traffic counts
        in :meth:`stats` — derived results are lookups too, so benchmarks
        see their cost instead of reading fits as free. ``kind`` selects
        the counter pair: ``"derived"`` (default) books into hits/misses
        alongside trace lookups; ``"risk"`` books into the dedicated
        ``risk_hits``/``risk_misses`` telemetry so the spot planner's
        memoized risk results are distinguishable from trace traffic."""
        if kind not in ("derived", "risk"):
            raise ValueError(f"kind must be 'derived' or 'risk', got {kind!r}")
        risk = kind == "risk"
        started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
        latency = self._memoize_seconds[kind]
        while True:
            with self._lock:
                if key in self._derived:
                    if self._capacity is not None:
                        self._derived[key] = self._derived.pop(key)  # LRU touch
                    if risk:
                        self._risk_hits.inc()
                    else:
                        self._hits.inc()
                    latency.observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
                    return self._derived[key]
                event, leader = self._inflight_derived.claim(key)
                if leader:
                    if risk:
                        self._risk_misses.inc()
                    else:
                        self._misses.inc()
                    break  # this thread computes
            event.wait()
        try:
            value = compute()
            with self._lock:
                self._derived[key] = value
                if self._capacity is not None:
                    # Derived results have no disk tier: eviction means
                    # recompute-on-next-use, which bounded servers accept
                    # in exchange for bounded memory.
                    while len(self._derived) > self._capacity:
                        self._derived.pop(next(iter(self._derived)))
                        self._evictions.inc()
            latency.observe(time.perf_counter() - started)  # repro: allow[no-wall-clock] telemetry latency measurement
            return value
        finally:
            with self._lock:
                self._inflight_derived.release(key)
            event.set()

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        with self._lock:
            entries = len(self._traces)
        return CacheStats(
            hits=self._hits.value,
            misses=self._misses.value,
            entries=entries,
            disk_hits=self._disk_hits.value,
            simulations=self._simulations.value,
            risk_hits=self._risk_hits.value,
            risk_misses=self._risk_misses.value,
            evictions=self._evictions.value,
        )

    def clear(self) -> None:
        """Drop all cached traces/simulators/derived results and reset
        the counters. The attached disk store (if any) is left intact —
        persistence outliving process state is its whole point."""
        with self._lock:
            self._traces.clear()
            self._scenarios.clear()
            self._simulators.clear()
            self._derived.clear()
        # Reset only this cache's instruments, not the whole registry —
        # a shared registry may carry other layers' metrics.
        for counter in (self._hits, self._misses, self._disk_hits,
                        self._simulations, self._risk_hits, self._risk_misses,
                        self._evictions):
            counter.reset()
        for histogram in (*self._fetch_seconds.values(),
                          *self._memoize_seconds.values()):
            histogram.reset()

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def __contains__(self, scenario: Scenario) -> bool:
        with self._lock:
            return scenario.key() in self._traces


# ---------------------------------------------------------------------------
# Process-global default cache
# ---------------------------------------------------------------------------

_default_cache = SimulationCache()


def default_cache() -> SimulationCache:
    """The process-wide cache used when a consumer is not handed one."""
    return _default_cache


def reset_default_cache() -> SimulationCache:
    """Replace the global cache with a fresh one (tests/benchmarks)."""
    global _default_cache
    _default_cache = SimulationCache()
    return _default_cache


def resolve_cache(cache: Optional[SimulationCache]) -> SimulationCache:
    """The given cache, or the process-global default when ``None``.

    Every consumer that takes an optional ``cache`` argument (experiment
    modules, the cost model, sweep runners, the cluster planner) funnels
    through here, so "no cache supplied" uniformly means "share the
    process-wide traces"."""
    return cache if cache is not None else default_cache()
