"""Scenario grids: declarative enumeration of sweep spaces.

A :class:`ScenarioGrid` is an immutable, deterministically ordered
collection of scenarios. Grids are built three ways:

* :meth:`ScenarioGrid.product` — cartesian product over axis values, in
  the fixed nesting order model -> dataset -> seq_len -> dense -> batch
  -> gpu (the order the paper's figures enumerate their cases);
* :meth:`ScenarioGrid.batch_sweep` — batch sizes 1..max for one
  configuration, the shape behind every Eq. 2 fitting sweep;
* :func:`preset` — named grids registered by experiment modules (e.g.
  ``"fig8"``) or ad-hoc via :func:`register_preset`.

Grids compose with ``filter`` and ``+``, so irregular paper grids (Fig. 8
measures different batch sizes per model/dataset cell) are expressed as a
product narrowed by a predicate instead of a hand-rolled tuple list.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..gpu.specs import GPUSpec
from .scenario import ModelConfig, Scenario, freeze_overrides


class ScenarioGrid:
    """An immutable ordered collection of :class:`Scenario` points."""

    __slots__ = ("_scenarios",)

    def __init__(self, scenarios: Iterable[Scenario] = ()) -> None:
        self._scenarios: Tuple[Scenario, ...] = tuple(scenarios)

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    @classmethod
    def product(
        cls,
        models: Sequence[Union[str, ModelConfig]],
        gpus: Sequence[Union[str, GPUSpec]],
        batch_sizes: Sequence[int] = (1,),
        datasets: Sequence[Optional[str]] = (None,),
        seq_lens: Sequence[Optional[int]] = (None,),
        dense: Sequence[bool] = (False,),
        overrides=(),
    ) -> "ScenarioGrid":
        """Cartesian product over the given axis values.

        Nesting order (outermost first): model, dataset, seq_len, dense,
        batch size, gpu — matching how the paper's tables and figures
        enumerate their cases, so grid order equals row order.
        """
        frozen = freeze_overrides(overrides)
        return cls(
            Scenario(
                model=model,
                gpu=gpu,
                batch_size=batch,
                seq_len=seq_len,
                dense=is_dense,
                dataset=dataset,
                overrides=frozen,
            )
            for model in models
            for dataset in datasets
            for seq_len in seq_lens
            for is_dense in dense
            for batch in batch_sizes
            for gpu in gpus
        )

    @classmethod
    def batch_sweep(
        cls,
        model: Union[str, ModelConfig],
        gpu: Union[str, GPUSpec],
        seq_len: Optional[int] = None,
        dataset: Optional[str] = None,
        dense: bool = False,
        upper: Optional[int] = None,
        overrides=(),
    ) -> "ScenarioGrid":
        """Batch sizes 1..``upper`` for one configuration.

        ``upper`` defaults to the memory-oracle maximum (floored at 1 so
        infeasible configurations still contribute their batch-1 point,
        as the fitting procedure expects)."""
        base = Scenario(
            model=model,
            gpu=gpu,
            batch_size=1,
            seq_len=seq_len,
            dataset=dataset,
            dense=dense,
            overrides=freeze_overrides(overrides),
        )
        if upper is None:
            upper = max(1, base.max_batch_size())
        return cls(base.with_(batch_size=b) for b in range(1, upper + 1))

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    @property
    def scenarios(self) -> Tuple[Scenario, ...]:
        return self._scenarios

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self._scenarios)

    def __len__(self) -> int:
        return len(self._scenarios)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ScenarioGrid(self._scenarios[index])
        return self._scenarios[index]

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        return ScenarioGrid(self._scenarios + tuple(other))

    def __eq__(self, other) -> bool:
        return isinstance(other, ScenarioGrid) and self._scenarios == other._scenarios

    def __hash__(self) -> int:
        return hash(self._scenarios)

    def __repr__(self) -> str:
        return f"ScenarioGrid({len(self._scenarios)} scenarios)"

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[Scenario], bool]) -> "ScenarioGrid":
        return ScenarioGrid(s for s in self._scenarios if predicate(s))

    def map(self, transform: Callable[[Scenario], Scenario]) -> "ScenarioGrid":
        return ScenarioGrid(transform(s) for s in self._scenarios)

    def labels(self) -> List[str]:
        return [s.label() for s in self._scenarios]


# ---------------------------------------------------------------------------
# Named presets
# ---------------------------------------------------------------------------

_PRESETS: Dict[str, Callable[[], ScenarioGrid]] = {}


def register_preset(
    name: str, builder: Callable[..., ScenarioGrid], overwrite: bool = False
) -> None:
    """Register a zero-arg grid builder under ``name``. Experiment modules
    register their grids at import time (``"fig8"``, ``"table3"``)."""
    if name in _PRESETS and not overwrite:
        raise ValueError(f"preset {name!r} is already registered")
    _PRESETS[name] = builder


def preset(name: str) -> ScenarioGrid:
    """Build a fresh grid from a registered preset."""
    if name not in _PRESETS:
        # Experiment modules and the cluster/spot subsystems register
        # their grids at import time; pull them in on first miss so the
        # advertised presets ("fig8", "table3", "cluster-scaling",
        # "spot-scaling") resolve without a manual import. Each subsystem
        # imports independently: one broken subsystem must not make the
        # others' presets unreachable, so failures are only surfaced (as
        # context on the KeyError) if the requested preset stays missing.
        import importlib

        errors = []
        for module in ("repro.experiments", "repro.cluster", "repro.spot"):
            try:
                importlib.import_module(module)
            except Exception as exc:
                errors.append(f"{module}: {exc}")
        if name not in _PRESETS:
            detail = f" (import failures: {'; '.join(errors)})" if errors else ""
            raise KeyError(
                f"unknown preset {name!r}; available: {preset_names()}{detail}"
            )
    return _PRESETS[name]()


def preset_names() -> List[str]:
    return sorted(_PRESETS)


def _register_builtin_presets() -> None:
    from ..gpu.specs import A40, A100_40, A100_80, H100
    from ..models.config import BLACKMAMBA_2_8B, MIXTRAL_8X7B

    def profiling_grid() -> ScenarioGrid:
        # The full Fig. 4-6/9/10 profiling grid: both families at the
        # paper's exact (density, batch) points, seq 128, on the A40. The
        # points live with fig4 (the other figures reuse them); imported
        # lazily so the builder stays the single source of truth without
        # a grid -> experiments import at module load.
        from ..experiments.fig4_stages import (
            BLACKMAMBA_POINTS,
            MIXTRAL_POINTS,
            SEQ_LEN,
        )

        cells = {
            MIXTRAL_8X7B.family: set(MIXTRAL_POINTS),
            BLACKMAMBA_2_8B.family: set(BLACKMAMBA_POINTS),
        }
        batches = sorted({batch for points in cells.values() for _, batch in points})
        return ScenarioGrid.product(
            models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
            gpus=(A40,),
            seq_lens=(SEQ_LEN,),
            dense=(True, False),
            batch_sizes=batches,
        ).filter(lambda s: (s.dense, s.batch_size) in cells[s.config.family])

    def table4_cost_grid() -> ScenarioGrid:
        # The Eq. 2 calibration sweeps behind Table IV: dense + sparse
        # batch sweeps of Mixtral on the three priced GPUs at the GS
        # padded sequence length.
        from ..memory.estimator import EFFECTIVE_SEQ_LEN

        seq_len = EFFECTIVE_SEQ_LEN["gsm8k"]
        grid = ScenarioGrid()
        for gpu in (A40, A100_80, H100):
            for dense in (True, False):
                grid = grid + ScenarioGrid.batch_sweep(
                    MIXTRAL_8X7B, gpu, seq_len=seq_len, dense=dense
                )
        return grid

    def fig13_projection_grid() -> ScenarioGrid:
        # The Eq. 1 observation grid: batch-1 probes of both families
        # across the four measured GPUs, sequence lengths and densities
        # (the points `collect_batch_size_observations` feeds the fit).
        return ScenarioGrid.product(
            models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
            gpus=(A100_40, A40, A100_80, H100),
            seq_lens=(64, 128, 256, 512),
            dense=(True, False),
        )

    register_preset(
        "a40-profiling-grid",
        lambda: ScenarioGrid.product(
            models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
            gpus=(A40,),
            seq_lens=(128,),
            dense=(True, False),
            batch_sizes=(1, 10),
        ),
    )
    register_preset(
        "mixtral-a40-batch-sweep",
        lambda: ScenarioGrid.batch_sweep(MIXTRAL_8X7B, A40, seq_len=128, dense=False),
    )
    register_preset("profiling-grid", profiling_grid)
    register_preset("table4-cost", table4_cost_grid)
    register_preset("fig13-projection", fig13_projection_grid)


_register_builtin_presets()
