"""Bulk execution of scenario grids.

:class:`SweepRunner` turns a grid into a list of :class:`SweepPoint`
results — optionally concurrent via ``concurrent.futures`` — with
result order always equal to grid order regardless of ``jobs`` or
``executor``, so concurrency never changes a report.

Two executors:

* ``executor="thread"`` (default) — a thread pool sharing one
  :class:`SimulationCache`, so duplicate points collapse into single
  simulations. Simulation is pure Python, so threads buy cache sharing
  and determinism, not GIL-bound wall-clock speedup.
* ``executor="process"`` — a ``ProcessPoolExecutor`` over contiguous
  grid chunks, for grids large enough to amortize pickling. Workers
  cannot share the parent's memory, so they share the parent cache's
  :class:`~repro.scenarios.store.DiskTraceStore` instead (when one is
  attached): every worker warms the store, and a warm store means no
  worker simulates at all. Each worker reports its traces *with
  provenance* (memory/disk/simulated) and the parent replays the lookup
  accounting in grid order, so results, ordering and cache telemetry are
  identical to a serial run.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..gpu.trace import StepTrace
from ..telemetry.tracer import Tracer, resolve_tracer
from .cache import SimulationCache, resolve_cache
from .grid import ScenarioGrid
from .scenario import Scenario

EXECUTORS = ("thread", "process")

# Chunks per worker in process mode: >1 so a slow chunk (big batch sizes
# simulate slower) doesn't serialize the tail, small enough that pickling
# overhead stays amortized.
_CHUNKS_PER_JOB = 4


def _simulate_chunk(
    scenarios: Sequence[Scenario],
    store_root: Optional[str],
    overheads,
) -> List[Tuple[StepTrace, str, float]]:
    """Process-pool worker: resolve one contiguous chunk of the grid
    through a fresh cache tiered onto the shared disk store (when the
    parent has one), returning each trace with its provenance and fetch
    latency so the parent can replay accounting — counters *and* latency
    histograms. Top-level so it pickles."""
    from .store import DiskTraceStore

    store = DiskTraceStore(store_root) if store_root else None
    cache = SimulationCache(overheads=overheads, store=store)
    results: List[Tuple[StepTrace, str, float]] = []
    for scenario in scenarios:
        started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
        trace, source = cache.fetch(scenario)
        results.append((trace, source, time.perf_counter() - started))  # repro: allow[no-wall-clock] telemetry latency measurement
    return results


@dataclass(frozen=True)
class SweepPoint:
    """One executed scenario: its grid position, inputs and trace.

    A *degenerate* trace — zero, negative or non-finite step time, as a
    hand-built or corrupted trace can produce — is reported consistently
    as "no throughput": ``queries_per_second`` is ``0.0`` and
    ``total_seconds`` is ``inf``, the same convention
    :func:`repro.core.cost.wall_clock_hours` maps zero throughput to, so
    downstream cost math never divides by zero or propagates NaN.
    """

    index: int
    scenario: Scenario
    trace: StepTrace

    @property
    def label(self) -> str:
        return self.scenario.label()

    def _step_seconds(self) -> float:
        """The trace's step time, or ``None``-like sentinel handling for
        degenerate values (non-positive or non-finite)."""
        total = self.trace.total_seconds
        return total if math.isfinite(total) and total > 0.0 else float("nan")

    @property
    def queries_per_second(self) -> float:
        total = self._step_seconds()
        if math.isnan(total):
            return 0.0
        return self.trace.batch_size / total

    @property
    def total_seconds(self) -> float:
        total = self._step_seconds()
        if math.isnan(total):
            return float("inf")
        return total


class SweepRunner:
    """Executes scenario grids against a (shared) simulation cache."""

    def __init__(
        self,
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
        executor: str = "thread",
        tracer: Optional[Tracer] = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        self.cache = resolve_cache(cache)
        self.jobs = max(1, int(jobs))
        self.executor = executor
        self.tracer = resolve_tracer(tracer)

    def run(self, grid: ScenarioGrid) -> List[SweepPoint]:
        """Simulate every scenario; results are in grid order.

        The run is traced as one ``sweep.run`` span with a single
        ``sweep.execute`` child regardless of executor — the executor and
        job count are span *attributes*, never span structure, so the
        span tree shape is identical at any parallelism setting (the
        telemetry analogue of the byte-identical-results contract).
        """
        scenarios = list(grid)
        with self.tracer.span(
            "sweep.run", cells=len(scenarios), jobs=self.jobs, executor=self.executor
        ):
            with self.tracer.span("sweep.execute"):
                if self.jobs == 1 or len(scenarios) <= 1:
                    traces = [self.cache.simulate(s) for s in scenarios]
                elif self.executor == "process":
                    traces = self._run_process(scenarios)
                else:
                    with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                        traces = list(pool.map(self.cache.simulate, scenarios))
        return [
            SweepPoint(index=i, scenario=s, trace=t)
            for i, (s, t) in enumerate(zip(scenarios, traces))
        ]

    def _run_process(self, scenarios: List[Scenario]) -> List[StepTrace]:
        """Chunked process-pool dispatch; traces reassembled in grid
        order and adopted into the parent cache, so downstream consumers
        (and the accounting) see exactly what a serial run would.

        Only scenarios *missing* from the parent's memory tier are
        dispatched, deduplicated by key — workers cannot see the parent's
        memory, so shipping resident or repeated points would re-simulate
        work this process already has. The replay below resolves resident
        points through the normal fetch path (a memory hit, as serially)
        and duplicates through :meth:`SimulationCache.adopt` (first
        occurrence takes the worker's provenance and measured latency,
        the rest count hits)."""
        pending: dict = {}
        for scenario in scenarios:
            if scenario not in self.cache and scenario.key() not in pending:
                pending[scenario.key()] = scenario
        dispatch = list(pending.values())
        resolved: dict = {}
        if dispatch:
            store = self.cache.store
            store_root = str(store.root) if store is not None else None
            size = max(1, math.ceil(len(dispatch) / (self.jobs * _CHUNKS_PER_JOB)))
            chunks = [dispatch[i : i + size] for i in range(0, len(dispatch), size)]
            with ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks))) as pool:
                futures = [
                    pool.submit(_simulate_chunk, chunk, store_root, self.cache._overheads)
                    for chunk in chunks
                ]
                chunk_results = [future.result() for future in futures]
            for chunk, results in zip(chunks, chunk_results):
                for scenario, outcome in zip(chunk, results):
                    resolved[scenario.key()] = outcome
        traces: List[StepTrace] = []
        for scenario in scenarios:
            outcome = resolved.get(scenario.key())
            if outcome is None:  # was resident at dispatch time
                traces.append(self.cache.simulate(scenario))
            else:
                traces.append(self.cache.adopt(scenario, *outcome))
        return traces

    def throughputs(self, grid: ScenarioGrid) -> List[float]:
        return [point.queries_per_second for point in self.run(grid)]

    def to_result(
        self,
        experiment_id: str,
        title: str,
        grid: ScenarioGrid,
        paper: Optional[dict] = None,
        value: Optional[Callable[[SweepPoint], object]] = None,
    ):
        """Run the grid and feed the points straight into an
        :class:`~repro.experiments.common.ExperimentResult` (one row per
        scenario, labeled by scenario, paper value looked up by label)."""
        # Imported lazily: experiments depend on scenarios, not vice versa.
        from ..experiments.common import ExperimentResult

        value = value if value is not None else (lambda p: p.queries_per_second)
        paper = paper or {}
        # Axes the base label omits (GPU, seq_len) must appear in it when
        # the grid sweeps them, or rows (and paper lookups) would collide.
        multi_gpu = len({s.gpu_spec for s in grid}) > 1
        multi_seq = len({s.resolved_seq_len for s in grid}) > 1
        labels = [s.label(include_gpu=multi_gpu, include_seq_len=multi_seq) for s in grid]
        # Remaining collisions (overrides axis, same-family model variants)
        # fall back to fully qualified labels, and — for variants even a
        # qualified label cannot tell apart, e.g. scaled() configs sharing
        # a name — to positional suffixes.
        if len(set(labels)) != len(set(grid)):
            labels = [s.qualified_label() for s in grid]
            if len(set(labels)) != len(set(grid)):
                labels = [f"{label}#{i}" for i, label in enumerate(labels)]
        result = ExperimentResult(experiment_id, title)
        for point, label in zip(self.run(grid), labels):
            result.add(label, value(point), paper.get(label))
        return result
