"""Bulk execution of scenario grids.

:class:`SweepRunner` turns a grid into a list of :class:`SweepPoint`
results — optionally concurrent via ``concurrent.futures`` — with
result order always equal to grid order regardless of ``jobs``, so
concurrency never changes a report. The executor is a thread pool
sharing one :class:`SimulationCache`, which keeps duplicate points
collapsing into single simulations; note that simulation is pure Python,
so ``jobs > 1`` buys cache sharing and determinism, not GIL-bound
wall-clock speedup (a process pool is a roadmap item).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..gpu.trace import StepTrace
from .cache import SimulationCache, resolve_cache
from .grid import ScenarioGrid
from .scenario import Scenario


@dataclass(frozen=True)
class SweepPoint:
    """One executed scenario: its grid position, inputs and trace."""

    index: int
    scenario: Scenario
    trace: StepTrace

    @property
    def label(self) -> str:
        return self.scenario.label()

    @property
    def queries_per_second(self) -> float:
        return self.trace.queries_per_second

    @property
    def total_seconds(self) -> float:
        return self.trace.total_seconds


class SweepRunner:
    """Executes scenario grids against a (shared) simulation cache."""

    def __init__(self, cache: Optional[SimulationCache] = None, jobs: int = 1) -> None:
        self.cache = resolve_cache(cache)
        self.jobs = max(1, int(jobs))

    def run(self, grid: ScenarioGrid) -> List[SweepPoint]:
        """Simulate every scenario; results are in grid order."""
        scenarios = list(grid)
        if self.jobs == 1 or len(scenarios) <= 1:
            traces = [self.cache.simulate(s) for s in scenarios]
        else:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                traces = list(pool.map(self.cache.simulate, scenarios))
        return [
            SweepPoint(index=i, scenario=s, trace=t)
            for i, (s, t) in enumerate(zip(scenarios, traces))
        ]

    def throughputs(self, grid: ScenarioGrid) -> List[float]:
        return [point.queries_per_second for point in self.run(grid)]

    def to_result(
        self,
        experiment_id: str,
        title: str,
        grid: ScenarioGrid,
        paper: Optional[dict] = None,
        value: Optional[Callable[[SweepPoint], object]] = None,
    ):
        """Run the grid and feed the points straight into an
        :class:`~repro.experiments.common.ExperimentResult` (one row per
        scenario, labeled by scenario, paper value looked up by label)."""
        # Imported lazily: experiments depend on scenarios, not vice versa.
        from ..experiments.common import ExperimentResult

        value = value if value is not None else (lambda p: p.queries_per_second)
        paper = paper or {}
        # Axes the base label omits (GPU, seq_len) must appear in it when
        # the grid sweeps them, or rows (and paper lookups) would collide.
        multi_gpu = len({s.gpu_spec for s in grid}) > 1
        multi_seq = len({s.resolved_seq_len for s in grid}) > 1
        labels = [s.label(include_gpu=multi_gpu, include_seq_len=multi_seq) for s in grid]
        # Remaining collisions (overrides axis, same-family model variants)
        # fall back to fully qualified labels, and — for variants even a
        # qualified label cannot tell apart, e.g. scaled() configs sharing
        # a name — to positional suffixes.
        if len(set(labels)) != len(set(grid)):
            labels = [s.qualified_label() for s in grid]
            if len(set(labels)) != len(set(grid)):
                labels = [f"{label}#{i}" for i, label in enumerate(labels)]
        result = ExperimentResult(experiment_id, title)
        for point, label in zip(self.run(grid), labels):
            result.add(label, value(point), paper.get(label))
        return result
