"""First-class sweep configurations.

A :class:`Scenario` names one point of the paper's characterization space
— (model, dataset, GPU, dense/sparse routing, batch size, sequence
length, workload overrides) — as a frozen, hashable value. Scenarios are
the currency of the engine: :class:`~repro.scenarios.grid.ScenarioGrid`
enumerates them, :class:`~repro.scenarios.cache.SimulationCache` memoizes
simulator traces by scenario key, and
:class:`~repro.scenarios.runner.SweepRunner` executes them in bulk.

``model`` and ``gpu`` accept either registry keys (``"mixtral-8x7b"``,
``"A40"``) or the config/spec objects themselves, so ad-hoc scaled
configs and hypothetical GPUs (Fig. 13's 100GB projection) participate in
the same machinery as the registered paper-scale setups.

Subclasses may extend the space with axes the per-device step trace does
not depend on — :class:`~repro.cluster.ClusterScenario` adds ``num_gpus``
and ``interconnect`` — and inherit :meth:`Scenario.key` unchanged, so the
cache shares one replica trace across all such variants.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, replace
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from ..data.registry import DATASET_STATS
from ..gpu.specs import GPUSpec, get_gpu
from ..memory.estimator import max_batch_size
from ..models.config import BlackMambaConfig, MixtralConfig
from ..models.registry import get_model_spec

ModelConfig = Union[MixtralConfig, BlackMambaConfig]
OverrideItems = Tuple[Tuple[str, Any], ...]


def canonical_value(value: Any) -> str:
    """Deterministic, process-stable rendering of a cache-key component.

    Dataclasses render as ``ClassName(field=...)`` with fields in sorted
    name order (so reordering a config definition cannot silently change
    every digest), sequences render element-wise, and scalars use
    ``repr`` — which for floats is the shortest round-trip form, stable
    across interpreter runs and platforms with IEEE doubles.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = sorted(f.name for f in dataclasses.fields(value))
        inner = ",".join(f"{name}={canonical_value(getattr(value, name))}" for name in fields)
        return f"{type(value).__name__}({inner})"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_value(item) for item in value) + ")"
    return repr(value)


def freeze_overrides(overrides: Union[Mapping[str, Any], OverrideItems]) -> OverrideItems:
    """Normalize workload overrides to a sorted tuple of (key, value) pairs
    so that scenarios with the same overrides hash identically regardless
    of how the overrides were spelled."""
    items = overrides.items() if isinstance(overrides, Mapping) else overrides
    return tuple(sorted((str(key), value) for key, value in items))


@dataclass(frozen=True)
class Scenario:
    """One hashable point of the (model x dataset x GPU x density x batch)
    characterization space.

    ``seq_len=None`` with a ``dataset`` resolves to the dataset's Table II
    median sequence length; pass an explicit ``seq_len`` for padded
    (effective) lengths or ad-hoc sweeps.
    """

    model: Union[str, ModelConfig]
    gpu: Union[str, GPUSpec]
    batch_size: int = 1
    seq_len: Optional[int] = None
    dense: bool = False
    dataset: Optional[str] = None
    overrides: OverrideItems = ()

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.seq_len is None and self.dataset is None:
            raise ValueError("Scenario needs a seq_len or a dataset to derive one from")
        # Always normalize (even already-tuple input may be unsorted) so
        # equal overrides hash identically regardless of spelling.
        object.__setattr__(self, "overrides", freeze_overrides(self.overrides))

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    @property
    def config(self) -> ModelConfig:
        return get_model_spec(self.model).config if isinstance(self.model, str) else self.model

    @property
    def gpu_spec(self) -> GPUSpec:
        return get_gpu(self.gpu) if isinstance(self.gpu, str) else self.gpu

    @property
    def resolved_seq_len(self) -> int:
        if self.seq_len is not None:
            return self.seq_len
        if self.dataset not in DATASET_STATS:
            raise KeyError(f"unknown dataset {self.dataset!r}; available: {sorted(DATASET_STATS)}")
        return DATASET_STATS[self.dataset].median_seq_len

    @property
    def sparsity(self) -> float:
        """Active-expert fraction under this scenario's routing."""
        return self.config.moe.sparsity(self.dense)

    @property
    def density_tag(self) -> str:
        """``D``/``S`` + batch size — the row-label convention shared by
        the experiment suite and the cluster layer."""
        return f"{'D' if self.dense else 'S'}{self.batch_size}"

    def overrides_dict(self) -> Dict[str, Any]:
        return dict(self.overrides)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def key(self) -> Tuple:
        """Canonical cache key: everything the simulator's step trace
        depends on. Scenarios that differ only in dataset naming but share
        the resolved (config, gpu, batch, seq, density, overrides) point
        map to the same trace."""
        return (
            self.config,
            self.gpu_spec,
            self.batch_size,
            self.resolved_seq_len,
            self.dense,
            self.overrides,
        )

    def canonical_text(self) -> str:
        """Process-stable canonical rendering of :meth:`key`.

        :meth:`key` tuples are hashable but ``hash()`` is salted per
        interpreter run, so they cannot name disk entries. This text is a
        deterministic rendering of the *resolved* key — equal keys always
        produce equal text, across processes and runs — and is what
        :meth:`digest` (and therefore the
        :class:`~repro.scenarios.store.DiskTraceStore` layout) is built
        on. Subclasses that inherit :meth:`key` (cluster/spot scenarios)
        inherit the canonical text too, so they share disk entries the
        same way they share in-memory traces.
        """
        config, gpu, batch_size, seq_len, dense, overrides = self.key()
        return ";".join(
            (
                f"model={canonical_value(config)}",
                f"gpu={canonical_value(gpu)}",
                f"batch={batch_size}",
                f"seq={seq_len}",
                f"dense={dense}",
                f"overrides={canonical_value(overrides)}",
            )
        )

    def digest(self) -> str:
        """sha256 hex digest of :meth:`canonical_text` — the scenario's
        cross-process identity, used to key disk-store entries."""
        return hashlib.sha256(self.canonical_text().encode("utf-8")).hexdigest()

    def label(self, include_gpu: bool = False, include_seq_len: bool = False) -> str:
        """Row label in the experiment suite's convention, e.g.
        ``mixtral_commonsense15k_S2``. ``include_gpu`` / ``include_seq_len``
        append those axes, which grids that sweep them need for unique
        labels."""
        parts = [self.config.family]
        if self.dataset:
            parts.append(self.dataset)
        parts.append(self.density_tag)
        if include_seq_len:
            parts.append(f"L{self.resolved_seq_len}")
        if include_gpu:
            parts.append(self.gpu_spec.name)
        return "_".join(parts)

    def qualified_label(self) -> str:
        """A fully qualified label spelling out every axis (model name
        rather than family, seq_len, GPU, overrides). Distinct scenarios
        always get distinct qualified labels."""
        parts = [self.config.name]
        if self.dataset:
            parts.append(self.dataset)
        parts.append(self.density_tag)
        parts.append(f"L{self.resolved_seq_len}")
        parts.append(self.gpu_spec.name)
        parts.extend(f"{key}={value}" for key, value in self.overrides)
        return "_".join(parts)

    # ------------------------------------------------------------------
    # Derived quantities / variants
    # ------------------------------------------------------------------
    def max_batch_size(self) -> int:
        """Memory-oracle maximum batch size at this scenario's point."""
        return max_batch_size(self.config, self.gpu_spec, self.resolved_seq_len, self.dense)

    def with_(self, **changes) -> "Scenario":
        """A modified copy (thin wrapper over :func:`dataclasses.replace`)."""
        return replace(self, **changes)
