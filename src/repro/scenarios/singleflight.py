"""Single-flight primitives: collapse concurrent duplicate work.

:class:`SimulationCache` has always collapsed concurrent misses on one
scenario key — the first thread resolves disk/simulate while the rest
wait on an in-flight marker. The planning service needs the same shape
one level up (N identical concurrent plan *requests* must cost one plan
computation), so the machinery lives here as two reusable pieces:

* :class:`InFlightMap` — the bare marker table. It holds **no lock of
  its own**: the caller claims/releases under the caller's lock, which
  keeps "check the result table, then claim the in-flight slot" one
  atomic step (the property the cache's hit/miss accounting depends
  on). ``Event.set()`` happens outside any lock, as before.
* :class:`SingleFlight` — self-contained result sharing for callers
  without their own result table. The leader runs the function; every
  concurrent duplicate receives the leader's exact return value (or
  re-raises the leader's exception). Results are *not* cached beyond
  the in-flight window — callers wanting memoization layer it on top.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, Optional, Tuple, TypeVar

T = TypeVar("T")


class InFlightMap:
    """Keyed in-flight markers, locked by the *caller*.

    Every method must be called while holding the lock that also guards
    the caller's result table; this class is deliberately lock-free so
    the claim can be atomic with the caller's own "is it already done?"
    check. The returned event's ``set()`` is the one operation the
    caller performs outside the lock (waking waiters must not require
    the lock the waiters are about to take).
    """

    def __init__(self) -> None:
        self._events: Dict[Hashable, threading.Event] = {}

    def claim(self, key: Hashable) -> Tuple[threading.Event, bool]:
        """The in-flight event for ``key`` plus whether this caller is
        the leader (it created the marker and must resolve the work,
        then :meth:`release` and ``set()`` the event)."""
        event = self._events.get(key)
        if event is not None:
            return event, False
        event = threading.Event()
        self._events[key] = event
        return event, True

    def release(self, key: Hashable) -> None:
        """Drop the marker for ``key`` (leader-side, under the caller's
        lock, before setting the event). Missing keys are a no-op so a
        ``finally`` block can release unconditionally."""
        self._events.pop(key, None)

    def __len__(self) -> int:
        return len(self._events)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._events


class _Call:
    """One in-flight computation: completion event plus its outcome."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Optional[object] = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Duplicate-call suppression with result sharing.

    ``do(key, fn)`` runs ``fn`` at most once per key at a time: the
    first caller (the leader) computes, concurrent callers with the
    same key block and receive the leader's result — the identical
    object, so a service handing out serialized bytes hands every
    coalesced caller byte-identical payloads. A leader exception
    propagates to every waiter (they asked the same question; they get
    the same answer). Once the leader finishes, the key is forgotten:
    this is coalescing, not caching.
    """

    def __init__(self) -> None:
        self._calls: Dict[Hashable, _Call] = {}
        self._lock = threading.Lock()
        self._leaders = 0
        self._shared = 0

    def do(self, key: Hashable, fn: Callable[[], T]) -> Tuple[T, bool]:
        """``(result, shared)`` — ``shared`` is False for the leader
        that actually ran ``fn``, True for callers that received the
        leader's result."""
        with self._lock:
            call = self._calls.get(key)
            if call is not None:
                leader = False
                self._shared += 1
            else:
                call = _Call()
                self._calls[key] = call
                leader = True
                self._leaders += 1
        if not leader:
            call.event.wait()
            if call.error is not None:
                raise call.error
            return call.value, True  # type: ignore[return-value]
        try:
            value = fn()
        except BaseException as exc:
            call.error = exc
            raise
        else:
            call.value = value
            return value, False
        finally:
            with self._lock:
                self._calls.pop(key, None)
            call.event.set()

    def stats(self) -> Dict[str, int]:
        """Lifetime counters: ``leaders`` (computations actually run),
        ``shared`` (calls that rode along), ``inflight`` (now)."""
        with self._lock:
            return {
                "leaders": self._leaders,
                "shared": self._shared,
                "inflight": len(self._calls),
            }
