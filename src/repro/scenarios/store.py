"""Disk-backed trace persistence: report runs that start warm.

The in-memory :class:`~repro.scenarios.cache.SimulationCache` dies with
its process, so every CLI invocation used to re-simulate the world. A
:class:`DiskTraceStore` persists step traces under a directory, keyed by
:meth:`Scenario.digest <repro.scenarios.scenario.Scenario.digest>` — a
sha256 over the scenario's *canonical text*, which (unlike ``hash()`` of
the key tuple) is stable across interpreter runs — so a warm store makes
``repro.experiments.report`` / ``repro.cluster.plan`` / ``repro.spot.plan``
answer without simulating anything.

Contract:

* **Versioned entries.** Each entry records ``FORMAT_VERSION`` and the
  canonical text it was written for; a version bump (or the astronomically
  unlikely digest collision) reads as a miss, never as a wrong trace.
* **Atomic writes.** Entries are written to a temporary file in the store
  directory and ``os.replace``d into place, so concurrent writers (the
  process-pool sweep workers) and readers never observe a half-written
  entry — the worst race outcome is one redundant simulation.
* **Corruption tolerance.** A truncated, garbled or foreign file is a
  miss: :meth:`get` re-simulates, it never crashes the run.

``--cache-dir`` on the three CLIs (or the ``REPRO_CACHE_DIR`` environment
variable, resolved by :func:`resolve_store`) points every consumer at one
store directory.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import List, Optional, Union

from ..gpu.trace import StepTrace
from ..telemetry.metrics import MetricsRegistry
from .scenario import Scenario

# Bump whenever the entry layout or the pickled trace schema changes;
# old entries then read as misses and are re-simulated, not mis-decoded.
FORMAT_VERSION = 1

ENTRY_SUFFIX = ".trace"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"


class DiskTraceStore:
    """Persists :class:`StepTrace` entries under one directory.

    One file per scenario digest (``<sha256>.trace``), each a pickled
    ``{"version", "scenario", "trace"}`` record. The store is safe to
    share between threads and processes: writes are atomic
    (write-then-rename) and reads tolerate anything — see the module
    docstring for the full contract.
    """

    def __init__(
        self,
        root: Union[str, Path],
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.root.mkdir(parents=True, exist_ok=True)
        # Event counters, not contract state: corruption tolerance means
        # a broken entry silently reads as a miss, and these are how an
        # operator ever finds out it happened.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._read_hits = self.metrics.counter("store.read_hits")
        self._read_misses = self.metrics.counter("store.read_misses")
        self._corrupt_entries = self.metrics.counter("store.corrupt_entries")
        self._writes = self.metrics.counter("store.writes")
        self._write_errors = self.metrics.counter("store.write_errors")

    # ------------------------------------------------------------------
    def path_for(self, digest: str) -> Path:
        return self.root / f"{digest}{ENTRY_SUFFIX}"

    def get(self, scenario: Scenario) -> Optional[StepTrace]:
        """The stored trace for ``scenario``, or ``None`` on any miss:
        absent entry, unreadable file, foreign pickle, version or
        canonical-text mismatch. Never raises — a broken entry means
        "re-simulate", not "crash the sweep"."""
        path = self.path_for(scenario.digest())
        try:
            with open(path, "rb") as handle:
                entry = pickle.load(handle)
        except FileNotFoundError:
            self._read_misses.inc()
            return None
        except Exception:  # truncated, garbled, not a pickle...
            self._corrupt_entries.inc()
            self._read_misses.inc()
            return None
        trace = entry.get("trace") if isinstance(entry, dict) else None
        if (
            not isinstance(entry, dict)
            or entry.get("version") != FORMAT_VERSION
            or entry.get("scenario") != scenario.canonical_text()
            or not isinstance(trace, StepTrace)
        ):
            # A decodable-but-wrong entry (version bump, digest
            # collision, stale canonical format, foreign payload) is a
            # corruption event too: the file exists but cannot serve.
            self._corrupt_entries.inc()
            self._read_misses.inc()
            return None
        self._read_hits.inc()
        return trace

    def put(self, scenario: Scenario, trace: StepTrace) -> None:
        """Persist ``trace`` atomically: serialize to a temporary file in
        the store directory, then rename over the final path, so a reader
        (or a concurrent writer of the same digest) only ever sees
        complete entries."""
        entry = {
            "version": FORMAT_VERSION,
            "scenario": scenario.canonical_text(),
            "trace": trace,
        }
        try:
            descriptor, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-", suffix=ENTRY_SUFFIX
            )
        except OSError:
            self._write_errors.inc()
            raise
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(entry, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self.path_for(scenario.digest()))
        except BaseException:
            self._write_errors.inc()
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._writes.inc()

    # ------------------------------------------------------------------
    def digests(self) -> List[str]:
        """Digests of all (complete) entries, sorted."""
        return sorted(
            path.name[: -len(ENTRY_SUFFIX)]
            for path in self.root.glob(f"*{ENTRY_SUFFIX}")
            if not path.name.startswith(".")
        )

    def __len__(self) -> int:
        return len(self.digests())

    def __contains__(self, scenario: Scenario) -> bool:
        return self.get(scenario) is not None

    def clear(self) -> None:
        """Delete every entry (and any abandoned temporary file)."""
        for path in self.root.glob(f"*{ENTRY_SUFFIX}"):
            try:
                path.unlink()
            except OSError:
                pass

    def __repr__(self) -> str:
        return f"DiskTraceStore({str(self.root)!r}, {len(self)} entries)"


def resolve_store(cache_dir: Optional[Union[str, Path]] = None) -> Optional[DiskTraceStore]:
    """The store for an explicit ``--cache-dir`` value, else for
    ``$REPRO_CACHE_DIR``, else ``None`` (no disk tier). The single
    resolution rule shared by the report and plan CLIs."""
    root = cache_dir if cache_dir else os.environ.get(ENV_CACHE_DIR)
    return DiskTraceStore(root) if root else None
