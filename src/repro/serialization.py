"""JSON-safe conversion shared by the machine-readable CLIs.

``python -m repro.experiments.report --json`` and ``python -m
repro.cluster.plan --json`` both promise strict JSON: numpy scalars are
unwrapped and non-finite floats map to ``null`` (``json.dumps`` would
otherwise emit bare ``NaN``/``Infinity`` tokens that strict parsers
reject).
"""

from __future__ import annotations

import math
from typing import Any


def json_value(value: Any) -> Any:
    """One scalar made JSON-representable (numpy unwrapped, non-finite ->
    ``None``, anything else stringified)."""
    if not (value is None or isinstance(value, (bool, int, float, str))):
        item = getattr(value, "item", None)
        if callable(item):
            try:
                value = item()
            except (TypeError, ValueError):
                return str(value)
        else:
            return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def jsonify(obj: Any) -> Any:
    """Recursively JSON-safe copy of dicts/lists/tuples of scalars."""
    if isinstance(obj, dict):
        return {key: jsonify(value) for key, value in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(value) for value in obj]
    return json_value(obj)
