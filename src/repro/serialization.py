"""JSON-safe conversion shared by the machine-readable CLIs.

``python -m repro.experiments.report --json``, ``python -m
repro.cluster.plan --json`` and ``python -m repro.spot.plan --json`` all
promise strict JSON: numpy scalars are unwrapped, non-finite floats map
to ``null`` (``json.dumps`` would otherwise emit bare ``NaN``/``Infinity``
tokens that strict parsers reject — the spot planner's Monte Carlo
percentiles produce exactly those on degenerate inputs), and non-string
dict keys are stringified. :func:`dumps` wraps the sanitization and sets
``allow_nan=False`` so any float that slips past it fails loudly instead
of corrupting the output.
"""

from __future__ import annotations

import json
import math
from typing import Any


def json_value(value: Any) -> Any:
    """One scalar made JSON-representable (numpy unwrapped, non-finite ->
    ``None``, anything else stringified)."""
    if not (value is None or isinstance(value, (bool, int, float, str))):
        item = getattr(value, "item", None)
        if callable(item):
            try:
                value = item()
            except (TypeError, ValueError):
                return str(value)
        else:
            return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _json_key(key: Any) -> str:
    """A dict key made a JSON object key. Bool and non-finite float keys
    take the spellings ``json.dumps`` would give them in key position
    (``"true"``/``"false"``, ``"null"``); everything else stringifies
    through :func:`json_value`."""
    if isinstance(key, str):
        return key
    if isinstance(key, bool):
        return "true" if key else "false"
    sanitized = json_value(key)
    return "null" if sanitized is None else str(sanitized)


def jsonify(obj: Any) -> Any:
    """Recursively JSON-safe copy of dicts/lists/tuples/sets of scalars.

    Dict keys that stringify to the same JSON key (``1`` next to ``"1"``)
    would silently overwrite each other; that is corruption, so it raises
    instead."""
    if isinstance(obj, dict):
        result = {}
        for key, value in obj.items():
            sanitized = _json_key(key)
            if sanitized in result:
                raise ValueError(
                    f"dict keys collide after JSON sanitization: {key!r} -> "
                    f"{sanitized!r} is already present"
                )
            result[sanitized] = jsonify(value)
        return result
    if isinstance(obj, (list, tuple)):
        return [jsonify(value) for value in obj]
    if isinstance(obj, (set, frozenset)):
        # Sets are unordered; sort the sanitized members by their JSON
        # text so serialization is deterministic.
        return sorted((jsonify(value) for value in obj), key=lambda v: json.dumps(v))
    # Numpy arrays (e.g. a grid of analytic percentiles): tolist() gives
    # nested Python lists whose elements still need the scalar pass —
    # non-finite entries must map to null here like everywhere else.
    # Duck-typed on (tolist, ndim) so this module stays numpy-agnostic;
    # 0-d arrays fall through to json_value's item() unwrapping.
    tolist = getattr(obj, "tolist", None)
    if callable(tolist) and getattr(obj, "ndim", 0):
        return [jsonify(value) for value in tolist()]
    return json_value(obj)


def dumps(obj: Any, **kwargs: Any) -> str:
    """Strict-JSON ``json.dumps``: sanitize first, then refuse non-finite
    floats outright so the output is always parseable."""
    kwargs.setdefault("allow_nan", False)
    return json.dumps(jsonify(obj), **kwargs)
