"""Planner-as-a-service: a warm, shared-cache HTTP planning API.

Every plan used to be a cold CLI process, so asking the paper's central
question — "what will this fine-tune cost?" — re-paid interpreter
startup and cache warm-up per query. This package keeps one process
alive around the planners (:class:`~repro.cluster.planner.ClusterPlanner`
and :class:`~repro.spot.planner.RiskAdjustedPlanner`) so every request
shares one warm :class:`~repro.scenarios.cache.SimulationCache` (plus
its disk tier), and adds three server-grade performance layers:

* **request coalescing** — concurrent requests with the same canonical
  request digest share one plan computation (and receive byte-identical
  responses), via :class:`~repro.scenarios.singleflight.SingleFlight`;
* **bounded memory** — an optional LRU ``capacity`` on the shared cache
  evicts to the disk tier instead of growing without bound;
* **live pricing** — a :class:`PricingCatalog` that refreshes from a
  file/URL feed with a TTL cache and stale-while-revalidate semantics,
  so plans stay servable (marked ``pricing_stale``) when the feed dies.

Run it::

    python -m repro.service.serve --port 8423 --cache-dir ~/.cache/repro-traces

Endpoints: ``POST /plan/cluster``, ``POST /plan/spot`` (JSON bodies
mirroring the CLI flags), ``GET /healthz``, ``GET /stats``.

The service is deliberately stdlib-only (``http.server``): the repo's
no-new-dependencies rule applies to the serving layer too.
"""

from .app import PlanningService, RequestError
from .catalog import DEFAULT_TTL_SECONDS, PricingCatalog
from .serve import make_server

__all__ = [
    "DEFAULT_TTL_SECONDS",
    "PlanningService",
    "PricingCatalog",
    "RequestError",
    "make_server",
]
