"""The planning service: request normalization, coalescing, planning.

One :class:`PlanningService` owns the shared warm state — a
:class:`~repro.scenarios.cache.SimulationCache` (optionally LRU-bounded
and disk-tiered), a :class:`~repro.service.catalog.PricingCatalog`, and
a :class:`~repro.scenarios.singleflight.SingleFlight` request coalescer
— and answers ``plan("cluster" | "spot", body)`` with the serialized
JSON response. The HTTP layer (:mod:`repro.service.serve`) is a thin
adapter over this class, so tests and benchmarks drive the service
in-process without sockets.

Request bodies mirror the plan CLIs' flags field-for-field (``model``,
``gpu``, ``num_gpus``, ``deadline_hours``, ... — see
:func:`normalize_cluster_request` / :func:`normalize_spot_request`),
with identical defaults, so a disk store prewarmed by
``python -m repro.cluster.plan`` serves the equivalent service request
without a single simulation.

Coalescing key: the sha256 of the *normalized* request (not the raw
body — two spellings of the same sweep are one key) plus the pricing
catalog digest (a price refresh must split otherwise-identical
requests) plus the API version. Concurrent requests with equal digests
share one plan computation and receive byte-identical response strings.
The response body carries no wall-clock (latency lives in the service
metrics and the optional telemetry block), so the only thing that
distinguishes a warm repeat from its cold predecessor is the ``engine``
delta block — which is exactly what it is for.

The per-request ``engine`` block reports the cache-counter deltas the
request observed (simulations, hits, ...). Under concurrent *distinct*
requests the deltas can attribute a neighbor's traffic (the counters
are process-global); for sequential or coalesced-identical traffic —
everything the acceptance tests assert on — they are exact.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.plan import _parse_densities, resolve_gpu_name, resolve_model_key
from ..cluster.planner import (
    DEFAULT_INTERCONNECTS,
    DEFAULT_MAX_TP,
    DEFAULT_NUM_GPUS,
    PARALLELISM_MODES,
    ClusterPlanner,
)
from ..gpu.multigpu import INTERCONNECTS
from ..scenarios import SimulationCache, SingleFlight
from ..scenarios.store import DiskTraceStore
from ..serialization import dumps
from ..spot.planner import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RISK_MODE,
    DEFAULT_SEED,
    RISK_MODES,
    RiskAdjustedPlanner,
)
from ..spot.risk import DEFAULT_TRIALS
from ..telemetry.export import metric_events, telemetry_block, write_events
from ..telemetry.manifest import build_manifest, grid_digest
from ..telemetry.metrics import MetricsRegistry, merge_snapshots
from ..telemetry.tracer import Tracer
from .catalog import PricingCatalog

#: Bumped on any change to the request normalization or response layout
#: — it salts the coalescing digest, so two service versions can never
#: alias each other's in-flight computations.
API_VERSION = 1

DENSITIES = ("sparse", "dense", "both")
SPOT_MODES = ("both", "only", "off")


class RequestError(Exception):
    """A malformed request: reported as the HTTP ``status`` (default
    400) with the message as the ``error`` body, never a traceback."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


# ---------------------------------------------------------------------------
# Request normalization
# ---------------------------------------------------------------------------

def _reject_unknown(body: Dict[str, object], known: Sequence[str], kind: str) -> None:
    unknown = sorted(set(body) - set(known))
    if unknown:
        raise RequestError(
            f"unknown {kind} request field(s) {unknown}; known: {sorted(known)}"
        )


def _choice(body, field, choices, default):
    value = body.get(field, default)
    if value not in choices:
        raise RequestError(f"{field!r} must be one of {list(choices)}, got {value!r}")
    return value


def _int_field(body, field, default=None, minimum=1):
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{field!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise RequestError(f"{field!r} must be >= {minimum}, got {value}")
    return value


def _number_field(body, field, default=None):
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise RequestError(f"{field!r} must be a number, got {value!r}")
    value = float(value)
    if not value > 0:  # also rejects NaN
        raise RequestError(f"{field!r} must be positive, got {value}")
    return value


def _listify(value, field) -> List[object]:
    """A scalar or list body value as a non-empty list."""
    items = value if isinstance(value, list) else [value]
    if not items:
        raise RequestError(f"{field!r} must not be an empty list")
    return items


def _name_list(body, field, resolver: Callable[[str], str]) -> Optional[List[str]]:
    value = body.get(field)
    if value is None:
        return None
    names = []
    for item in _listify(value, field):
        if not isinstance(item, str):
            raise RequestError(f"{field!r} entries must be strings, got {item!r}")
        try:
            names.append(resolver(item))
        except KeyError as exc:
            raise RequestError(str(exc)) from exc
    return names


def _positive_list(body, field, convert, default):
    """A scalar or list of positive numbers, deduped preserving order —
    the body-level mirror of the CLIs' repeatable comma-separated flags."""
    value = body.get(field)
    if value is None:
        return list(default) if default is not None else None
    items = []
    for item in _listify(value, field):
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise RequestError(f"{field!r} entries must be numbers, got {item!r}")
        item = convert(item)
        if not item > 0:
            raise RequestError(f"{field!r} entries must be positive, got {item}")
        items.append(item)
    return list(dict.fromkeys(items))


def _interconnects(body) -> List[str]:
    value = body.get("interconnect")
    if value is None:
        return list(DEFAULT_INTERCONNECTS)
    names = []
    for item in _listify(value, "interconnect"):
        if item not in INTERCONNECTS:
            raise RequestError(
                f"'interconnect' must be one of {sorted(INTERCONNECTS)}, got {item!r}"
            )
        names.append(item)
    return list(dict.fromkeys(names))


_CLUSTER_FIELDS = (
    "model", "dataset", "gpu", "provider", "num_gpus", "interconnect",
    "density", "batch_size", "parallelism", "max_tp", "grad_accum",
    "epochs", "num_queries", "seq_len", "deadline_hours", "budget_dollars",
)

_SPOT_FIELDS = _CLUSTER_FIELDS + (
    "spot", "mtbp_hours", "checkpoint_minutes", "confidence",
    "risk_mode", "trials", "seed",
)


def normalize_cluster_request(body: Dict[str, object]) -> Dict[str, object]:
    """The canonical form of a ``/plan/cluster`` body: every field
    present, resolved (model aliases, GPU prefixes) and validated, with
    defaults identical to ``python -m repro.cluster.plan``. Raises
    :class:`RequestError` on anything malformed. The result is both the
    coalescing-digest input and the ``request`` echo in the response."""
    _reject_unknown(body, _CLUSTER_FIELDS, "cluster")
    model = body.get("model")
    if not isinstance(model, str) or not model:
        raise RequestError("'model' is required and must be a string")
    try:
        model = resolve_model_key(model)
    except KeyError as exc:
        raise RequestError(str(exc)) from exc
    dataset = body.get("dataset", "math14k")
    if not isinstance(dataset, str) or not dataset:
        raise RequestError(f"'dataset' must be a non-empty string, got {dataset!r}")
    parallelism = _choice(body, "parallelism", PARALLELISM_MODES, "dp")
    max_tp = _int_field(body, "max_tp", default=DEFAULT_MAX_TP)
    if parallelism == "tp" and max_tp < 2:
        raise RequestError("'parallelism': 'tp' needs 'max_tp' >= 2")
    return {
        "model": model,
        "dataset": dataset,
        "gpu": _name_list(body, "gpu", resolve_gpu_name),
        "provider": _name_list(body, "provider", str),
        "num_gpus": _positive_list(body, "num_gpus", int, DEFAULT_NUM_GPUS),
        "interconnect": _interconnects(body),
        "density": _choice(body, "density", DENSITIES, "both"),
        "batch_size": _positive_list(body, "batch_size", int, None),
        "parallelism": parallelism,
        "max_tp": max_tp,
        "grad_accum": _positive_list(body, "grad_accum", int, (1,)),
        "epochs": _int_field(body, "epochs", default=10),
        "num_queries": _int_field(body, "num_queries"),
        "seq_len": _int_field(body, "seq_len"),
        "deadline_hours": _number_field(body, "deadline_hours"),
        "budget_dollars": _number_field(body, "budget_dollars"),
    }


def normalize_spot_request(body: Dict[str, object]) -> Dict[str, object]:
    """The canonical form of a ``/plan/spot`` body: the cluster fields
    plus the risk knobs, defaults identical to
    ``python -m repro.spot.plan``."""
    _reject_unknown(body, _SPOT_FIELDS, "spot")
    cluster_body = {k: v for k, v in body.items() if k in _CLUSTER_FIELDS}
    request = normalize_cluster_request(cluster_body)
    confidence = body.get("confidence", DEFAULT_CONFIDENCE)
    if isinstance(confidence, bool) or not isinstance(confidence, (int, float)):
        raise RequestError(f"'confidence' must be a number, got {confidence!r}")
    confidence = float(confidence)
    if not 0.0 <= confidence <= 1.0:
        raise RequestError(f"'confidence' must be in [0, 1], got {confidence}")
    seed = body.get("seed", DEFAULT_SEED)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise RequestError(f"'seed' must be an integer, got {seed!r}")
    request.update(
        {
            "spot": _choice(body, "spot", SPOT_MODES, "both"),
            "mtbp_hours": _number_field(body, "mtbp_hours"),
            "checkpoint_minutes": _positive_list(body, "checkpoint_minutes", float, None),
            "confidence": confidence,
            "risk_mode": _choice(body, "risk_mode", RISK_MODES, DEFAULT_RISK_MODE),
            "trials": _int_field(body, "trials", default=DEFAULT_TRIALS),
            "seed": seed,
        }
    )
    return request


def request_digest(kind: str, request: Dict[str, object], catalog_digest: str) -> str:
    """The coalescing key: sha256 over the canonical JSON of the
    normalized request, the pricing-catalog digest and the API version."""
    text = json.dumps(
        {"api": API_VERSION, "kind": kind, "catalog": catalog_digest, "request": request},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The service
# ---------------------------------------------------------------------------

class PlanningService:
    """Shared warm planning state plus the request pipeline.

    ``telemetry`` / ``telemetry_out`` / ``run_store`` mirror the CLIs'
    flags: any of them enables per-request tracing (a fresh
    ``service.request`` span tree per request, wrapping the planner's
    own phases) and adds a ``telemetry`` block to responses.
    ``telemetry_out`` atomically rewrites the JSONL event log after
    every request (the file always holds the latest request's events);
    ``run_store`` is a :class:`~repro.telemetry.runstore.RunStore` that
    ingests each request as one run, so the PR 8 analyzer reads a
    serving window out of the box.
    """

    def __init__(
        self,
        cache: Optional[SimulationCache] = None,
        capacity: Optional[int] = None,
        store: Optional[DiskTraceStore] = None,
        pricing: Optional[PricingCatalog] = None,
        jobs: int = 1,
        executor: str = "thread",
        telemetry: bool = False,
        telemetry_out: Optional[str] = None,
        run_store=None,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if cache is None:
            cache = SimulationCache(store=store, capacity=capacity)
        elif store is not None or capacity is not None:
            raise ValueError("pass either an explicit cache or store/capacity, not both")
        self.cache = cache
        self.pricing = pricing if pricing is not None else PricingCatalog()
        self.flight = SingleFlight()
        self._jobs = jobs
        self._executor = executor
        self._telemetry_out = telemetry_out
        self._run_store = run_store
        self._traced = bool(telemetry or telemetry_out or run_store is not None)
        self._clock = clock
        self.metrics = MetricsRegistry()
        self._requests = self.metrics.counter("service.requests")
        self._coalesced = self.metrics.counter("service.coalesced")
        self._errors = self.metrics.counter("service.errors")
        self._request_seconds = self.metrics.histogram("service.request_seconds")
        self._started_at = clock()

    # ------------------------------------------------------------------
    def plan(self, kind: str, body: Dict[str, object]) -> str:
        """The serialized JSON response for one plan request.

        Raises :class:`RequestError` for malformed bodies; any other
        exception is a planning bug (the HTTP layer maps it to 500 and
        keeps serving).
        """
        started = time.perf_counter()
        self._requests.inc()
        try:
            if kind == "cluster":
                request = normalize_cluster_request(body)
            elif kind == "spot":
                request = normalize_spot_request(body)
            else:
                raise RequestError(f"unknown plan kind {kind!r}", status=404)
            catalog, stale = self.pricing.get()
            catalog_digest = catalog.digest()
            digest = request_digest(kind, request, catalog_digest)
            response, shared = self.flight.do(
                digest,
                lambda: self._compute(kind, request, catalog, stale, digest, catalog_digest),
            )
            if shared:
                self._coalesced.inc()
            return response
        except Exception:
            self._errors.inc()
            raise
        finally:
            self._request_seconds.observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    def _compute(
        self, kind, request, catalog, stale, digest, catalog_digest
    ) -> str:
        tracer = Tracer(enabled=self._traced)
        before = self.cache.stats()
        with tracer.span("service.request", kind=kind, digest=digest[:16]):
            planner, plan = self._run_planner(kind, request, catalog, tracer)
        after = self.cache.stats()
        payload = {
            "kind": kind,
            "request": request,
            "request_digest": digest,
            "pricing": {"digest": catalog_digest, "stale": stale},
            "pricing_stale": stale,
            "engine": {
                "simulations": after.simulations - before.simulations,
                "hits": after.hits - before.hits,
                "disk_hits": after.disk_hits - before.disk_hits,
                "misses": after.misses - before.misses,
                "risk_hits": after.risk_hits - before.risk_hits,
                "risk_misses": after.risk_misses - before.risk_misses,
                "evictions": after.evictions - before.evictions,
            },
            "plan": plan.to_payload(),
        }
        if self._traced:
            payload["telemetry"] = self._export_telemetry(
                kind, request, tracer, after, planner
            )
        return dumps(payload, indent=2)

    def _run_planner(self, kind, request, catalog, tracer):
        common = dict(
            dataset=request["dataset"],
            epochs=request["epochs"],
            num_queries=request["num_queries"],
            seq_len=request["seq_len"],
            catalog=catalog,
            cache=self.cache,
            jobs=self._jobs,
            executor=self._executor,
            tracer=tracer,
        )
        sweep = dict(
            gpus=request["gpu"],
            providers=request["provider"],
            num_gpus=tuple(request["num_gpus"]),
            interconnects=tuple(request["interconnect"]),
            densities=_parse_densities(request["density"]),
            batch_sizes=tuple(request["batch_size"]) if request["batch_size"] else None,
            parallelism=request["parallelism"],
            max_tp=request["max_tp"],
            grad_accums=tuple(request["grad_accum"]),
        )
        if kind == "cluster":
            planner = ClusterPlanner(request["model"], **common)
            plan = planner.plan(
                deadline_hours=request["deadline_hours"],
                budget_dollars=request["budget_dollars"],
                **sweep,
            )
        else:
            checkpoint = request["checkpoint_minutes"]
            planner = RiskAdjustedPlanner(
                request["model"],
                mtbp_hours=request["mtbp_hours"],
                checkpoint_minutes=tuple(checkpoint) if checkpoint else None,
                trials=request["trials"],
                seed=request["seed"],
                risk_mode=request["risk_mode"],
                **common,
            )
            plan = planner.plan_spot(
                spot=request["spot"],
                confidence=request["confidence"],
                deadline_hours=request["deadline_hours"],
                budget_dollars=request["budget_dollars"],
                **sweep,
            )
        return planner, plan

    def _export_telemetry(self, kind, request, tracer, stats, planner):
        """Mirror ``finish_telemetry`` per request: manifest from the
        cache's own accounting, JSONL rewrite, run-store ingest, and the
        response's telemetry block."""
        grid = planner.last_grid
        snapshots = [self.cache.metrics.snapshot()]
        store = self.cache.store
        if store is not None and getattr(store, "metrics", None) is not None:
            snapshots.append(store.metrics.snapshot())
        snapshots.append(self.metrics.snapshot())
        snapshot = merge_snapshots(*snapshots)
        manifest = build_manifest(
            f"repro.service.plan_{kind}",
            request,
            tracer,
            stats,
            grid=grid_digest(grid) if grid is not None else None,
        )
        if self._telemetry_out:
            write_events(self._telemetry_out, tracer, snapshot, manifest)
        if self._run_store is not None:
            events = list(tracer.export())
            events.extend(metric_events(snapshot))
            events.append(manifest)
            self._run_store.ingest_events(events, timestamp=self._clock())
        return telemetry_block(tracer, snapshot, manifest)

    # ------------------------------------------------------------------
    def health_payload(self) -> Dict[str, object]:
        return {"status": "ok"}

    def stats_payload(self) -> Dict[str, object]:
        """The ``/stats`` body: request counters, coalescing stats, the
        shared cache's accounting (plus its LRU bound) and the pricing
        catalog's freshness."""
        stats = self.cache.stats()
        return {
            "uptime_seconds": max(0.0, self._clock() - self._started_at),
            "requests": {
                "total": self._requests.value,
                "coalesced": self._coalesced.value,
                "errors": self._errors.value,
            },
            "flight": self.flight.stats(),
            "cache": {
                "hits": stats.hits,
                "disk_hits": stats.disk_hits,
                "misses": stats.misses,
                "simulations": stats.simulations,
                "risk_hits": stats.risk_hits,
                "risk_misses": stats.risk_misses,
                "evictions": stats.evictions,
                "entries": stats.entries,
                "capacity": self.cache.capacity,
            },
            "pricing": self.pricing.status(),
        }
