"""Live pricing with a TTL cache and stale-while-revalidate.

The planners price candidates from a :class:`~repro.cloud.pricing.PriceCatalog`
— historically the static :data:`~repro.cloud.pricing.DEFAULT_CATALOG`
(the paper's Table IV rates). A long-lived server wants *current*
quotes, but must never let a flaky feed take planning down. So:

* the catalog is fetched from a pluggable **feed** (a JSON file path or
  an ``http(s)://`` URL speaking :meth:`PriceCatalog.to_payload`'s
  layout) and cached locally for ``ttl_seconds``;
* within the TTL every request is served from memory — zero feed I/O on
  the hot path;
* past the TTL the *current* catalog keeps serving immediately (marked
  stale) while one background thread revalidates — the
  stale-while-revalidate pattern, so a request never blocks on the feed
  after first touch;
* a dead or malformed feed counts a failure, records the error for
  ``/stats``, and leaves the last good catalog (or the built-in
  fallback, when the feed never answered at all) serving — plans degrade
  to stale prices, never to errors.

Without a feed the catalog is the static fallback and is never stale:
the pre-service behavior, byte for byte.

This module reads the wall clock (injectable for tests) — ``repro.service``
is on the linter's ``no-wall-clock`` allowlist for exactly this.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from typing import Callable, Dict, Optional, Tuple

from ..cloud.pricing import DEFAULT_CATALOG, PriceCatalog

#: How long a fetched catalog serves before it is considered stale.
DEFAULT_TTL_SECONDS = 300.0

#: Socket timeout for URL feeds — a hung feed must not pin the
#: background refresh thread forever.
FEED_TIMEOUT_SECONDS = 10.0


def fetch_feed(feed: str) -> object:
    """The default feed reader: JSON over ``http(s)://`` or from a local
    file path. Raises on any transport or decode problem — the caller
    (:meth:`PricingCatalog.refresh`) turns that into a recorded failure."""
    feed = str(feed)
    if feed.startswith(("http://", "https://")):
        with urllib.request.urlopen(feed, timeout=FEED_TIMEOUT_SECONDS) as response:
            return json.loads(response.read().decode("utf-8"))
    with open(feed, "r", encoding="utf-8") as handle:
        return json.load(handle)


class PricingCatalog:
    """A TTL-cached, stale-while-revalidate view of a pricing feed.

    ``get()`` returns ``(catalog, stale)``; ``stale`` is True whenever
    the served prices are not a within-TTL feed snapshot (feed down,
    past TTL, or never fetched successfully). ``clock`` and ``fetch``
    are injectable so tests drive TTL expiry and feed failure
    deterministically; the clock only needs to be monotonic.
    """

    def __init__(
        self,
        feed: Optional[str] = None,
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        fallback: PriceCatalog = DEFAULT_CATALOG,
        clock: Callable[[], float] = time.monotonic,
        fetch: Callable[[str], object] = fetch_feed,
    ) -> None:
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive, got {ttl_seconds}")
        self._feed = str(feed) if feed is not None else None
        self._ttl = float(ttl_seconds)
        self._fallback = fallback
        self._clock = clock
        self._fetch = fetch
        self._lock = threading.Lock()
        self._catalog: Optional[PriceCatalog] = None  # last served feed/fallback
        self._fetched_at: Optional[float] = None  # clock() of last success
        self._refreshes = 0
        self._failures = 0
        self._last_error: Optional[str] = None
        self._refreshing = False  # single-flight guard (cold + background)
        self._refresh_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def get(self) -> Tuple[PriceCatalog, bool]:
        """``(catalog, stale)`` — the catalog to plan with right now.

        Feed-less catalogs return the fallback, never stale. Otherwise:
        a within-TTL snapshot serves fresh; an expired one serves
        immediately as stale while one background refresh runs; a cold
        catalog (first touch) blocks on one synchronous fetch so a
        healthy feed is never shadowed by the fallback.
        """
        if self._feed is None:
            return self._fallback, False
        with self._lock:
            catalog = self._catalog
            if catalog is not None and self._fresh_locked():
                return catalog, False
            cold = catalog is None
            claim = not self._refreshing
            if claim:
                self._refreshing = True
        if claim and cold:
            # First touch: fetch synchronously. Success serves fresh;
            # failure pins the fallback and serves it stale.
            try:
                self.refresh()
            finally:
                with self._lock:
                    self._refreshing = False
            with self._lock:
                catalog = self._catalog if self._catalog is not None else self._fallback
                return catalog, not self._fresh_locked()
        if claim:
            thread = threading.Thread(
                target=self._background_refresh, name="pricing-refresh", daemon=True
            )
            with self._lock:
                self._refresh_thread = thread
            thread.start()
        # Serve the snapshot taken *before* the revalidate kicked off — the
        # stale response must not race the background thread's adoption.
        return (catalog if catalog is not None else self._fallback), True

    def refresh(self) -> bool:
        """Fetch and adopt the feed *now* (synchronously). Returns True
        on success. Failure (transport, decode, payload validation)
        records the error and leaves the current catalog serving."""
        if self._feed is None:
            return True
        try:
            payload = self._fetch(self._feed)
            catalog = PriceCatalog.from_payload(payload)
        except Exception as exc:  # any feed problem degrades, never raises
            with self._lock:
                self._failures += 1
                self._last_error = f"{type(exc).__name__}: {exc}"
            return False
        with self._lock:
            self._catalog = catalog
            self._fetched_at = self._clock()
            self._refreshes += 1
            self._last_error = None
        return True

    def join_refresh(self, timeout: Optional[float] = None) -> None:
        """Wait for an in-flight background refresh (tests: make the
        revalidate half of stale-while-revalidate deterministic)."""
        with self._lock:
            thread = self._refresh_thread
        if thread is not None:
            thread.join(timeout)

    # ------------------------------------------------------------------
    def _fresh_locked(self) -> bool:
        """Caller holds ``_lock``: is the current snapshot within TTL?"""
        return (
            self._fetched_at is not None
            and (self._clock() - self._fetched_at) <= self._ttl
        )

    def _background_refresh(self) -> None:
        try:
            self.refresh()
        finally:
            with self._lock:
                self._refreshing = False

    # ------------------------------------------------------------------
    def status(self) -> Dict[str, object]:
        """The ``/stats`` pricing block: where prices come from and how
        trustworthy they are right now."""
        with self._lock:
            live = self._feed is not None
            age = (
                None
                if self._fetched_at is None
                else max(0.0, self._clock() - self._fetched_at)
            )
            catalog = self._catalog if self._catalog is not None else self._fallback
            stale = live and not self._fresh_locked()
            return {
                "source": self._feed if live else "builtin",
                "ttl_seconds": self._ttl if live else None,
                "age_seconds": age,
                "stale": stale,
                "refreshes": self._refreshes,
                "failures": self._failures,
                "last_error": self._last_error,
                "digest": catalog.digest(),
            }
