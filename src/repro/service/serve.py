"""Serve plans over HTTP: ``python -m repro.service.serve``.

Usage::

    python -m repro.service.serve --port 8423 --cache-dir ~/.cache/repro-traces
    python -m repro.service.serve --capacity 4096 --pricing-feed prices.json \\
        --telemetry-out /tmp/service-events.jsonl --run-store /tmp/runstore

    curl -s localhost:8423/healthz
    curl -s -XPOST localhost:8423/plan/cluster \\
        -d '{"model": "mixtral", "gpu": ["a40"], "deadline_hours": 24}'
    curl -s -XPOST localhost:8423/plan/spot -d '{"model": "mixtral"}'
    curl -s localhost:8423/stats

Stdlib-only: a :class:`ThreadingHTTPServer` dispatching to one shared
:class:`~repro.service.app.PlanningService`. Threads matter — they are
what request coalescing coalesces — but all planning state is the
service's (thread-safe) cache, so the handler layer stays stateless.

``--cache-dir`` / ``$REPRO_CACHE_DIR`` and ``--run-store`` /
``$REPRO_RUN_STORE`` resolve exactly like the plan CLIs' flags, so a
store prewarmed by ``python -m repro.cluster.plan`` makes the server's
first matching request simulate nothing.
"""

from __future__ import annotations

import argparse
import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional

from ..scenarios import resolve_store
from ..serialization import dumps
from ..telemetry.runstore import resolve_run_store
from .app import PlanningService, RequestError
from .catalog import DEFAULT_TTL_SECONDS, PricingCatalog

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8423

_PLAN_PATHS = {"/plan/cluster": "cluster", "/plan/spot": "spot"}


class PlanningRequestHandler(BaseHTTPRequestHandler):
    """Routes the four endpoints onto the bound :class:`PlanningService`."""

    service: PlanningService  # bound per server by make_server()
    server_version = "repro-plan-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Quiet by default: the service's own metrics (/stats) are the
        # observability surface; per-request access lines would only add
        # nondeterministic stderr noise to tests and CI smoke output.
        pass

    # ------------------------------------------------------------------
    def _send(self, status: int, body: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, status: int, message: str) -> None:
        self._send(status, dumps({"error": message}, indent=2))

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        if self.path == "/healthz":
            self._send(200, dumps(self.service.health_payload(), indent=2))
        elif self.path == "/stats":
            self._send(200, dumps(self.service.stats_payload(), indent=2))
        else:
            self._send_error(404, f"unknown path {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        kind = _PLAN_PATHS.get(self.path)
        if kind is None:
            self._send_error(404, f"unknown path {self.path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length > 0 else b""
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (ValueError, UnicodeDecodeError):
            self._send_error(400, "request body is not valid JSON")
            return
        if not isinstance(body, dict):
            self._send_error(400, "request body must be a JSON object")
            return
        try:
            response = self.service.plan(kind, body)
        except RequestError as exc:
            self._send_error(exc.status, str(exc))
        except Exception as exc:  # a planning bug: report it, keep serving
            self._send_error(500, f"{type(exc).__name__}: {exc}")
        else:
            self._send(200, response)


def make_server(
    service: PlanningService,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> ThreadingHTTPServer:
    """A ready-to-``serve_forever`` threaded server bound to ``service``.
    ``port=0`` picks an ephemeral port (tests/examples); read it back
    from ``server.server_address``."""
    handler = type(
        "BoundPlanningRequestHandler",
        (PlanningRequestHandler,),
        {"service": service},
    )
    return ThreadingHTTPServer((host, port), handler)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.serve",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--host", default=DEFAULT_HOST,
                        help=f"bind address (default: {DEFAULT_HOST})")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port, 0 for ephemeral (default: {DEFAULT_PORT})")
    parser.add_argument("--capacity", type=int, default=None, metavar="N",
                        help="LRU bound on resident traces and derived results "
                             "(evictions fall back to --cache-dir when set; "
                             "default: unbounded)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="sweep workers per request (plan output is "
                             "identical at any job count)")
    parser.add_argument("--executor", choices=("thread", "process"), default="thread",
                        help="sweep executor for --jobs > 1 (default: thread)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="disk-backed trace store shared with the plan CLIs "
                             "(default: $REPRO_CACHE_DIR if set, else none)")
    parser.add_argument("--pricing-feed", default=None, metavar="PATH_OR_URL",
                        help="live pricing feed: a JSON file path or http(s) URL "
                             "speaking PriceCatalog.to_payload()'s layout "
                             "(default: the built-in static catalog)")
    parser.add_argument("--pricing-ttl", type=float, default=DEFAULT_TTL_SECONDS,
                        metavar="SECONDS",
                        help="how long a fetched catalog serves before "
                             "stale-while-revalidate kicks in "
                             f"(default: {DEFAULT_TTL_SECONDS:g})")
    parser.add_argument("--telemetry", action="store_true",
                        help="trace every request (responses gain a 'telemetry' "
                             "block)")
    parser.add_argument("--telemetry-out", default=None, metavar="FILE",
                        help="rewrite FILE with the latest request's JSONL "
                             "events after each request (implies tracing)")
    parser.add_argument("--run-store", default=None, metavar="DIR",
                        help="ingest each request into the run store at DIR for "
                             "repro.telemetry.analyze/compare (implies tracing; "
                             "default: $REPRO_RUN_STORE if set, else off)")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        service = PlanningService(
            capacity=args.capacity,
            store=resolve_store(args.cache_dir),
            pricing=PricingCatalog(
                feed=args.pricing_feed, ttl_seconds=args.pricing_ttl
            ),
            jobs=args.jobs,
            executor=args.executor,
            telemetry=args.telemetry,
            telemetry_out=args.telemetry_out,
            run_store=resolve_run_store(args.run_store),
        )
    except ValueError as exc:
        parser.error(str(exc))
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"serving plans on http://{host}:{port} "
        "(POST /plan/cluster /plan/spot; GET /healthz /stats)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
