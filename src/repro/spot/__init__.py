"""Spot-market risk subsystem — preemption-aware cost estimation.

The paper's Eq. 2 prices wall-clock hours at on-demand rates; real
fine-tuning budgets lean on spot/preemptible capacity, whose
interruptions stretch wall-clock time and can eat the discount. This
package layers an explicit risk model on the cluster planner:

* :class:`SpotMarket` — per-provider preemption hazard (exponential
  interruption model, mean-time-between-preemptions), registered beside
  the :mod:`repro.cloud.pricing` spot price tier;
* :class:`CheckpointPolicy` — checkpoint cadence with write/restart
  costs derived from the model's state size via ``memory.estimator``;
* :func:`expected_makespan_hours` — closed-form expected makespan under
  the hazard + policy, with the full closed-form distribution
  (:class:`AnalyticMakespanDistribution`: p50/p95, completion
  probability, no sampling) as the serving path and the seeded,
  batched :class:`SpotSimulator` Monte Carlo as the validation path
  (``risk_mode``: analytic serves, MC validates);
* :class:`RiskAdjustedPlanner` — every cluster candidate priced on
  demand *and* spot-with-risk; the Pareto frontier gains an
  (expected dollars, p95 hours) view and the deadline pick accepts a
  completion-probability target;
* ``python -m repro.spot.plan`` — the risk-adjusted "what will this
  fine-tune cost?" CLI, mirroring ``repro.cluster.plan``.

The risk layer is pure post-processing over cached replica traces:
sweeping spot markets and checkpoint cadences adds zero simulations.
"""

from ..scenarios import ScenarioGrid, register_preset
from .checkpoint import (
    CheckpointPolicy,
    DEFAULT_INTERVAL_MINUTES,
    checkpoint_state_gb,
    optimal_interval_minutes,
    restart_state_gb,
)
from .market import (
    DEFAULT_MTBP_HOURS,
    SPOT_MARKETS,
    SpotMarket,
    get_spot_market,
)
from .planner import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RISK_MODE,
    ONDEMAND,
    RISK_MODES,
    SPOT,
    RiskAdjustedPlanner,
    SpotCandidate,
    SpotPlan,
    risk_pareto_frontier,
)
from .risk import (
    AnalyticMakespanDistribution,
    MakespanDistribution,
    SpotSimulator,
    expected_makespan_hours,
    expected_preemptions,
    segment_lengths,
)
from .scenario import SpotScenario, spot_product

__all__ = [
    "AnalyticMakespanDistribution",
    "CheckpointPolicy",
    "DEFAULT_CONFIDENCE",
    "DEFAULT_INTERVAL_MINUTES",
    "DEFAULT_MTBP_HOURS",
    "DEFAULT_RISK_MODE",
    "MakespanDistribution",
    "RISK_MODES",
    "ONDEMAND",
    "RiskAdjustedPlanner",
    "SPOT",
    "SPOT_MARKETS",
    "SpotCandidate",
    "SpotMarket",
    "SpotPlan",
    "SpotScenario",
    "SpotSimulator",
    "checkpoint_state_gb",
    "expected_makespan_hours",
    "expected_preemptions",
    "get_spot_market",
    "optimal_interval_minutes",
    "restart_state_gb",
    "risk_pareto_frontier",
    "segment_lengths",
    "spot_product",
]


def _spot_scaling_grid() -> ScenarioGrid:
    """The risk sweep's default grid: the ``cluster-scaling`` axes
    (Mixtral QLoRA vs BlackMamba full fine-tuning on the A40, both
    interconnects, 1-8 GPUs) crossed with three checkpoint cadences.
    Every cadence shares its cluster point's replica trace, so this grid
    simulates no more than ``cluster-scaling`` does."""
    from ..cluster.planner import DEFAULT_INTERCONNECTS, DEFAULT_NUM_GPUS
    from ..models.config import BLACKMAMBA_2_8B, MIXTRAL_8X7B

    return spot_product(
        models=(MIXTRAL_8X7B, BLACKMAMBA_2_8B),
        gpus=("A40",),
        batch_sizes=(4,),
        seq_lens=(128,),
        num_gpus=DEFAULT_NUM_GPUS,
        interconnects=DEFAULT_INTERCONNECTS,
        checkpoint_minutes=(10.0, 30.0, 60.0),
    )


# Idempotent across reloads, like the cluster preset.
register_preset("spot-scaling", _spot_scaling_grid, overwrite=True)
