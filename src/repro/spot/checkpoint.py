"""Checkpoint policy: what surviving preemptions costs.

A spot fine-tune survives preemptions by periodically writing its
trainable state to durable storage and, after an interruption, restoring
the last checkpoint and redoing the lost work. The policy quantifies the
three overheads the makespan model needs:

* ``write_seconds`` — serializing the checkpoint state. Derived from the
  model's state size via :mod:`repro.memory.estimator`: a QLoRA recipe
  checkpoints only adapters + optimizer moments (the frozen NF4 base
  weights are re-downloadable), a full fine-tune checkpoints weights +
  optimizer moments.
* ``restart_seconds`` — reacquiring capacity, reloading base weights and
  the checkpoint, and rewarming the step pipeline.
* ``interval_minutes`` — the cadence; shorter intervals bound the lost
  work per preemption but pay the write cost more often. When no cadence
  menu is supplied the planner uses Daly's closed-form optimum
  (:func:`optimal_interval_minutes`, ``sqrt(2 * MTBP * C)``).

Under tensor parallelism every cost here is *per device*: each shard
writes and restores only its own slice of the trainable state.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

from ..memory.estimator import memory_breakdown
from ..models.config import BlackMambaConfig, MixtralConfig

ModelConfig = Union[MixtralConfig, BlackMambaConfig]

# Sustained sequential bandwidth to/from the checkpoint store (network
# volume class, not local NVMe — spot state must outlive the instance).
DEFAULT_DISK_BANDWIDTH_GBS = 1.0

# Reacquire capacity + container start + CUDA context + first-step warmup.
DEFAULT_PROVISION_SECONDS = 180.0

DEFAULT_INTERVAL_MINUTES = 30.0


def checkpoint_state_gb(cfg: ModelConfig, tensor_parallel: int = 1) -> float:
    """GB written per checkpoint *per device* under the paper's recipes.

    Uses the memory estimator's breakdown at its minimal sequence length:
    checkpoint size depends only on the batch-independent state terms, so
    the activation axis is irrelevant here. Under tensor parallelism each
    device owns (and writes) only its shard of the trainable state, so
    the per-device write shrinks with the TP degree; shards stream to the
    store concurrently, which is what the makespan model's per-device
    write cost assumes.
    """
    breakdown = memory_breakdown(cfg, seq_len=1, dense=False, tensor_parallel=tensor_parallel)
    if breakdown.adapter_gb > 0:  # adapter recipe: base weights frozen
        return breakdown.adapter_gb + breakdown.optimizer_gb
    return breakdown.weights_gb + breakdown.optimizer_gb


def restart_state_gb(cfg: ModelConfig, tensor_parallel: int = 1) -> float:
    """GB read back on restart per device: the resident weight shard plus
    that device's checkpoint shard."""
    breakdown = memory_breakdown(cfg, seq_len=1, dense=False, tensor_parallel=tensor_parallel)
    return breakdown.weights_gb + checkpoint_state_gb(cfg, tensor_parallel)


def optimal_interval_minutes(mtbp_hours: float, write_seconds: float) -> float:
    """Daly's closed-form checkpoint cadence, ``sqrt(2 * MTBP * C)``.

    ``mtbp_hours`` is the mean time between preemptions seen by the job
    (the *fleet* MTBP for a cluster — any worker dying stalls the step)
    and ``C = write_seconds`` the cost of one checkpoint. The first-order
    optimum balances write overhead (``~C/tau`` per hour) against
    expected lost work per preemption (``~tau/2``). An infinite MTBP (or
    a free checkpoint) returns ``inf``/``0`` — callers clamp to the job
    length, where the cadence stops mattering.
    """
    if not mtbp_hours > 0:  # also rejects NaN
        raise ValueError(f"mtbp_hours must be positive, got {mtbp_hours}")
    if write_seconds < 0:
        raise ValueError(f"write_seconds must be >= 0, got {write_seconds}")
    if math.isinf(mtbp_hours):
        return math.inf
    return math.sqrt(2.0 * mtbp_hours * write_seconds / 3600.0) * 60.0


@dataclass(frozen=True)
class CheckpointPolicy:
    """One checkpointing configuration for the makespan model."""

    interval_minutes: float
    write_seconds: float
    restart_seconds: float

    def __post_init__(self) -> None:
        if not self.interval_minutes > 0:  # also rejects NaN
            raise ValueError(
                f"interval_minutes must be positive, got {self.interval_minutes}"
            )
        if self.write_seconds < 0:
            raise ValueError(f"write_seconds must be >= 0, got {self.write_seconds}")
        if self.restart_seconds < 0:
            raise ValueError(f"restart_seconds must be >= 0, got {self.restart_seconds}")

    # Hours are the planner's native unit.
    @property
    def interval_hours(self) -> float:
        return self.interval_minutes / 60.0

    @property
    def write_hours(self) -> float:
        return self.write_seconds / 3600.0

    @property
    def restart_hours(self) -> float:
        return self.restart_seconds / 3600.0

    @property
    def write_overhead_fraction(self) -> float:
        """Preemption-free slowdown: checkpoint time per interval of work."""
        return self.write_hours / self.interval_hours

    @classmethod
    def for_model(
        cls,
        cfg: ModelConfig,
        interval_minutes: float = DEFAULT_INTERVAL_MINUTES,
        disk_bandwidth_gbs: float = DEFAULT_DISK_BANDWIDTH_GBS,
        provision_seconds: float = DEFAULT_PROVISION_SECONDS,
        tensor_parallel: int = 1,
    ) -> "CheckpointPolicy":
        """Derive write/restart costs from the model's state sizes —
        the *per-device* (sharded) sizes when ``tensor_parallel > 1``."""
        if disk_bandwidth_gbs <= 0:
            raise ValueError(
                f"disk_bandwidth_gbs must be positive, got {disk_bandwidth_gbs}"
            )
        return cls(
            interval_minutes=interval_minutes,
            write_seconds=checkpoint_state_gb(cfg, tensor_parallel) / disk_bandwidth_gbs,
            restart_seconds=provision_seconds
            + restart_state_gb(cfg, tensor_parallel) / disk_bandwidth_gbs,
        )
