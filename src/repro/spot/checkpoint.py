"""Checkpoint policy: what surviving preemptions costs.

A spot fine-tune survives preemptions by periodically writing its
trainable state to durable storage and, after an interruption, restoring
the last checkpoint and redoing the lost work. The policy quantifies the
three overheads the makespan model needs:

* ``write_seconds`` — serializing the checkpoint state. Derived from the
  model's state size via :mod:`repro.memory.estimator`: a QLoRA recipe
  checkpoints only adapters + optimizer moments (the frozen NF4 base
  weights are re-downloadable), a full fine-tune checkpoints weights +
  optimizer moments.
* ``restart_seconds`` — reacquiring capacity, reloading base weights and
  the checkpoint, and rewarming the step pipeline.
* ``interval_minutes`` — the cadence; shorter intervals bound the lost
  work per preemption but pay the write cost more often.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from ..memory.estimator import memory_breakdown
from ..models.config import BlackMambaConfig, MixtralConfig

ModelConfig = Union[MixtralConfig, BlackMambaConfig]

# Sustained sequential bandwidth to/from the checkpoint store (network
# volume class, not local NVMe — spot state must outlive the instance).
DEFAULT_DISK_BANDWIDTH_GBS = 1.0

# Reacquire capacity + container start + CUDA context + first-step warmup.
DEFAULT_PROVISION_SECONDS = 180.0

DEFAULT_INTERVAL_MINUTES = 30.0


def checkpoint_state_gb(cfg: ModelConfig) -> float:
    """GB written per checkpoint under the paper's recipes.

    Uses the memory estimator's breakdown at its minimal sequence length:
    checkpoint size depends only on the batch-independent state terms, so
    the activation axis is irrelevant here.
    """
    breakdown = memory_breakdown(cfg, seq_len=1, dense=False)
    if breakdown.adapter_gb > 0:  # adapter recipe: base weights frozen
        return breakdown.adapter_gb + breakdown.optimizer_gb
    return breakdown.weights_gb + breakdown.optimizer_gb


def restart_state_gb(cfg: ModelConfig) -> float:
    """GB read back on restart: resident weights plus the checkpoint."""
    breakdown = memory_breakdown(cfg, seq_len=1, dense=False)
    return breakdown.weights_gb + checkpoint_state_gb(cfg)


@dataclass(frozen=True)
class CheckpointPolicy:
    """One checkpointing configuration for the makespan model."""

    interval_minutes: float
    write_seconds: float
    restart_seconds: float

    def __post_init__(self) -> None:
        if not self.interval_minutes > 0:  # also rejects NaN
            raise ValueError(
                f"interval_minutes must be positive, got {self.interval_minutes}"
            )
        if self.write_seconds < 0:
            raise ValueError(f"write_seconds must be >= 0, got {self.write_seconds}")
        if self.restart_seconds < 0:
            raise ValueError(f"restart_seconds must be >= 0, got {self.restart_seconds}")

    # Hours are the planner's native unit.
    @property
    def interval_hours(self) -> float:
        return self.interval_minutes / 60.0

    @property
    def write_hours(self) -> float:
        return self.write_seconds / 3600.0

    @property
    def restart_hours(self) -> float:
        return self.restart_seconds / 3600.0

    @property
    def write_overhead_fraction(self) -> float:
        """Preemption-free slowdown: checkpoint time per interval of work."""
        return self.write_hours / self.interval_hours

    @classmethod
    def for_model(
        cls,
        cfg: ModelConfig,
        interval_minutes: float = DEFAULT_INTERVAL_MINUTES,
        disk_bandwidth_gbs: float = DEFAULT_DISK_BANDWIDTH_GBS,
        provision_seconds: float = DEFAULT_PROVISION_SECONDS,
    ) -> "CheckpointPolicy":
        """Derive write/restart costs from the model's state sizes."""
        if disk_bandwidth_gbs <= 0:
            raise ValueError(
                f"disk_bandwidth_gbs must be positive, got {disk_bandwidth_gbs}"
            )
        return cls(
            interval_minutes=interval_minutes,
            write_seconds=checkpoint_state_gb(cfg) / disk_bandwidth_gbs,
            restart_seconds=provision_seconds
            + restart_state_gb(cfg) / disk_bandwidth_gbs,
        )
