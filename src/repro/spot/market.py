"""Spot-market interruption model.

A spot (preemptible) instance is cheap because the provider may reclaim
it at any moment. The subsystem models reclamation as a memoryless
hazard: preemptions arrive as a Poisson process with a provider-specific
mean time between preemptions (MTBP), so the time to the next preemption
is exponentially distributed with rate ``1 / mtbp_hours``. Memorylessness
is the standard first-order model for cloud preemption traces and is
what makes the closed-form makespan in :mod:`repro.spot.risk` tractable;
providers that never preempt are expressed as ``mtbp_hours = inf``
(hazard rate zero), which degrades every estimate in the subsystem to
its on-demand value exactly.

Prices live in :mod:`repro.cloud.pricing` (the spot tier of the
catalog); this module owns only the risk side of the market.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Optional


# Bounded: a long-lived server sees an open-ended stream of (provider,
# mtbp) pairs, and an unbounded memo table is a slow leak. 256 covers
# every realistic market mix; past that, recomputing a short sha256 is
# cheaper than the memory.
@lru_cache(maxsize=256)
def _market_digest(provider: str, mtbp_hours: float) -> str:
    text = f"spot-market:v1:{provider}:mtbp={mtbp_hours!r}"
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class SpotMarket:
    """The interruption behavior of one provider's spot pool.

    ``mtbp_hours`` is the mean time between preemptions observed by a
    single instance. A fleet of N instances observes interruptions N
    times as often, but data-parallel training stalls whenever *any*
    replica dies, so the planner scales the hazard by the cluster size
    (see :meth:`fleet_rate_per_hour`).
    """

    provider: str
    mtbp_hours: float

    def __post_init__(self) -> None:
        if not self.mtbp_hours > 0:  # also rejects NaN
            raise ValueError(
                f"mtbp_hours must be positive (inf = never preempted), "
                f"got {self.mtbp_hours}"
            )

    @property
    def preemptions_per_hour(self) -> float:
        """Single-instance hazard rate; 0 when never preempted."""
        return 0.0 if math.isinf(self.mtbp_hours) else 1.0 / self.mtbp_hours

    def fleet_rate_per_hour(self, num_instances: int) -> float:
        """Hazard rate of "some replica is preempted" for a fleet: the
        minimum of N independent exponentials is exponential with the
        summed rate."""
        if num_instances < 1:
            raise ValueError(f"num_instances must be >= 1, got {num_instances}")
        return self.preemptions_per_hour * num_instances

    def preemption_probability(self, hours: float, num_instances: int = 1) -> float:
        """P(at least one preemption within ``hours``)."""
        if hours < 0:
            raise ValueError(f"hours must be >= 0, got {hours}")
        return -math.expm1(-self.fleet_rate_per_hour(num_instances) * hours)

    def with_mtbp(self, mtbp_hours: float) -> "SpotMarket":
        """This market with an overridden MTBP (the ``--mtbp-hours`` knob)."""
        return replace(self, mtbp_hours=mtbp_hours)

    def digest(self) -> str:
        """A stable content digest of the interruption model, used in the
        risk-memoization key (see ``RiskAdjustedPlanner``): two markets
        hash equal iff every field the risk estimators read is equal.
        ``repr`` keeps the float exact (`8.0` and `8.000000000000001`
        must not collide) and the version tag invalidates persisted keys
        if the market model ever grows fields."""
        return _market_digest(self.provider, self.mtbp_hours)


# Representative single-instance MTBPs. Reserved-capacity clouds reclaim
# rarely (interruptions a few times per day at worst); community/auction
# pools churn faster. These are model inputs like the price catalog rates
# — override per run with --mtbp-hours or a custom market mapping.
SPOT_MARKETS: Dict[str, SpotMarket] = {
    "cudo": SpotMarket("cudo", mtbp_hours=8.0),
    "runpod": SpotMarket("runpod", mtbp_hours=4.0),
}

# Hazard assumed for providers without a measured entry.
DEFAULT_MTBP_HOURS = 6.0


def get_spot_market(provider: str, mtbp_hours: Optional[float] = None) -> SpotMarket:
    """The market model for one provider: the registry entry, or a default
    -MTBP market for unlisted providers; ``mtbp_hours`` overrides either."""
    market = SPOT_MARKETS.get(provider, SpotMarket(provider, DEFAULT_MTBP_HOURS))
    if mtbp_hours is not None:
        market = market.with_mtbp(mtbp_hours)
    return market
