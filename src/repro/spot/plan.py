"""Plan a fine-tune across spot and on-demand tiers from the CLI.

Usage::

    python -m repro.spot.plan --model mixtral --gpu a40 --deadline-hours 24 --confidence 0.95 --json
    python -m repro.spot.plan --model mixtral --mtbp-hours 2 --checkpoint-minutes 10,30,60
    python -m repro.spot.plan --model blackmamba --spot only --budget 50 --jobs 4

Mirrors ``python -m repro.cluster.plan`` (same model/GPU resolution, same
``--json``/``--jobs``/``--executor``/``--cache-dir`` contract plus the
telemetry flags ``--telemetry``/``--telemetry-out``/``--run-store``,
the last feeding the run store that
``python -m repro.telemetry.analyze``/``compare`` consume — output is
byte-identical at any job count and executor, Monte Carlo seeds included,
and a pre-populated trace store makes the plan simulate nothing) and adds
the risk knobs: ``--spot``
selects the tiers, ``--risk-mode`` the percentile engine (``analytic``,
the default, serves p50/p95/completion probability from the closed-form
distribution with no sampling; ``mc`` runs the batched Monte Carlo;
``both`` serves analytic and validates with MC — analytic serves, MC
validates), ``--mtbp-hours`` overrides every provider's mean time
between preemptions, ``--checkpoint-minutes`` offers checkpoint cadences
(each spot candidate adopts the best one; without the flag every
candidate gets Daly's closed-form optimum ``sqrt(2*MTBP*C)`` for its own
fleet hazard and per-shard write cost), and ``--confidence`` sets the
completion-probability target a deadline must be met with. The
parallelism axes (``--parallelism dp|tp|auto``, ``--max-tp``,
``--grad-accum``) are inherited from the cluster planner; checkpoint
write/restart costs under tensor parallelism use the per-device sharded
state.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from ..cluster.plan import (
    _parse_densities,
    _parse_num_gpus,
    _parse_positive_csv,
    add_engine_arguments,
    add_parallelism_arguments,
    resolve_gpu_name,
    resolve_model_key,
    resolve_plan_cache,
    validate_parallelism_args,
)
from ..gpu.multigpu import INTERCONNECTS
from ..serialization import dumps
from ..telemetry import add_telemetry_arguments, begin_telemetry, finish_telemetry
from .planner import (
    DEFAULT_CONFIDENCE,
    DEFAULT_RISK_MODE,
    DEFAULT_SEED,
    RISK_MODES,
    RiskAdjustedPlanner,
)
from .risk import DEFAULT_TRIALS
from ..cluster.planner import DEFAULT_INTERCONNECTS, DEFAULT_NUM_GPUS


def _parse_checkpoint_minutes(values: Optional[List[str]]) -> Optional[Sequence[float]]:
    if not values:
        return None  # Daly closed-form optimum per candidate
    return _parse_positive_csv(
        values, float,
        "checkpoint cadences must be > 0 minutes, got {}",
        "--checkpoint-minutes given but no cadences parsed",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.spot.plan",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--model", required=True,
                        help="model to plan for (family alias like 'mixtral' or registry key)")
    parser.add_argument("--dataset", default="math14k",
                        help="dataset supplying seq_len and query count (default: math14k)")
    parser.add_argument("--gpu", action="append", metavar="NAME",
                        help="candidate GPU (repeatable; default: every priced GPU)")
    parser.add_argument("--provider", action="append", metavar="NAME",
                        help="cloud provider (repeatable; default: all in the catalog)")
    parser.add_argument("--num-gpus", action="append", metavar="N[,N...]",
                        help=f"cluster sizes to sweep (default: {','.join(map(str, DEFAULT_NUM_GPUS))})")
    parser.add_argument("--interconnect", action="append",
                        choices=sorted(INTERCONNECTS),
                        help="interconnect(s) to sweep (default: all)")
    parser.add_argument("--density", choices=("sparse", "dense", "both"), default="both",
                        help="expert routing(s) to sweep (default: both)")
    parser.add_argument("--batch-size", action="append", type=int, metavar="B",
                        help="explicit per-GPU batch size(s); default: per-cell memory maximum")
    add_parallelism_arguments(parser)
    parser.add_argument("--epochs", type=int, default=10)
    parser.add_argument("--num-queries", type=int, default=None,
                        help="override the dataset's query count")
    parser.add_argument("--seq-len", type=int, default=None,
                        help="override the dataset's padded sequence length")
    parser.add_argument("--deadline-hours", type=float, default=None,
                        help="wall-clock target the recommendation must meet")
    parser.add_argument("--budget", type=float, default=None, dest="budget_dollars",
                        help="expected-dollar target the recommendation must meet")
    parser.add_argument("--spot", choices=("both", "only", "off"), default="both",
                        help="capacity tiers to price (default: both)")
    parser.add_argument("--mtbp-hours", type=float, default=None,
                        help="override every provider's mean time between preemptions "
                             "(default: per-provider market model; inf = never preempted)")
    parser.add_argument("--checkpoint-minutes", action="append", metavar="M[,M...]",
                        help="checkpoint cadence menu; each spot candidate adopts the "
                             "best entry (default: Daly's closed-form optimum "
                             "sqrt(2*MTBP*C) per candidate)")
    parser.add_argument("--confidence", type=float, default=DEFAULT_CONFIDENCE,
                        help="completion probability the deadline must be met with "
                             f"(default: {DEFAULT_CONFIDENCE})")
    parser.add_argument("--risk-mode", choices=RISK_MODES, default=DEFAULT_RISK_MODE,
                        help="percentile engine: 'analytic' serves p50/p95 from the "
                             "closed-form distribution with no sampling, 'mc' runs the "
                             "batched Monte Carlo validation path, 'both' serves "
                             f"analytic and reports the MC mean (default: {DEFAULT_RISK_MODE})")
    parser.add_argument("--trials", type=int, default=DEFAULT_TRIALS,
                        help=f"Monte Carlo trials per spot candidate (default: {DEFAULT_TRIALS})")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base Monte Carlo seed (per-candidate seeds derive from it)")
    add_engine_arguments(parser)
    add_telemetry_arguments(parser)
    parser.add_argument("--top", type=int, default=10,
                        help="frontier rows in the text table (default: 10)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the plan as JSON instead of a table")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        model_key = resolve_model_key(args.model)
        gpus = [resolve_gpu_name(g) for g in args.gpu] if args.gpu else None
        num_gpus = _parse_num_gpus(args.num_gpus)
        grad_accums = validate_parallelism_args(args)
        checkpoint_minutes = _parse_checkpoint_minutes(args.checkpoint_minutes)
        if args.mtbp_hours is not None and not args.mtbp_hours > 0:
            raise ValueError(f"--mtbp-hours must be positive, got {args.mtbp_hours}")
        if not 0.0 <= args.confidence <= 1.0:
            raise ValueError(f"--confidence must be in [0, 1], got {args.confidence}")
        if args.trials < 1:
            raise ValueError(f"--trials must be >= 1, got {args.trials}")
    except (KeyError, ValueError) as exc:
        parser.error(str(exc))
    begin_telemetry(args)
    planner = RiskAdjustedPlanner(
        model_key,
        dataset=args.dataset,
        epochs=args.epochs,
        num_queries=args.num_queries,
        seq_len=args.seq_len,
        cache=resolve_plan_cache(args.cache_dir),
        jobs=args.jobs,
        executor=args.executor,
        mtbp_hours=args.mtbp_hours,
        checkpoint_minutes=checkpoint_minutes,
        trials=args.trials,
        seed=args.seed,
        risk_mode=args.risk_mode,
    )
    plan = planner.plan_spot(
        spot=args.spot,
        confidence=args.confidence,
        deadline_hours=args.deadline_hours,
        budget_dollars=args.budget_dollars,
        gpus=gpus,
        providers=args.provider,
        num_gpus=num_gpus,
        interconnects=tuple(args.interconnect) if args.interconnect else DEFAULT_INTERCONNECTS,
        densities=_parse_densities(args.density),
        batch_sizes=tuple(args.batch_size) if args.batch_size else None,
        parallelism=args.parallelism,
        max_tp=args.max_tp,
        grad_accums=grad_accums,
    )
    block = finish_telemetry(
        args, "repro.spot.plan", planner.cache, grid=planner.last_grid
    )
    if args.as_json:
        payload = plan.to_payload()
        if block is not None:
            payload["telemetry"] = block
        print(dumps(payload, indent=2))
    else:
        print(plan.to_table(top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
