"""Risk-adjusted cluster planning over spot and on-demand tiers.

:class:`RiskAdjustedPlanner` extends the PR 2
:class:`~repro.cluster.planner.ClusterPlanner`: the cluster sweep (and
its cached replica traces) is inherited unchanged, and every resulting
:class:`~repro.cluster.planner.ClusterCandidate` is priced twice —

* **on-demand**: the PR 2 numbers, makespan = wall-clock hours exactly;
* **spot**: the provider's discounted rate against a *risk-adjusted*
  makespan from :mod:`repro.spot.risk` — closed-form expectation for
  ranking, and per ``risk_mode`` either the analytic distribution
  (default: p50/p95/completion probability with no sampling) or the
  batched Monte Carlo validation path.

The spot math is pure post-processing over already-priced candidates, so
the risk sweep performs **zero** additional simulations beyond the
on-demand plan, warm or cold. Risk results themselves are memoized in
the cache's derived-result namespace (``kind="risk"``) as one bundle per
candidate, so a warm risk sweep recomputes nothing and pays a single
cache probe per candidate:

* the bundle key is ``("spot-risk", cluster_key, work_hours, market
  digest, cadence axis, risk_mode, trials, seed)`` -> cadence pricing
  plus (lazily) the makespan distributions;
* the bundle is created with the closed-form cadence pricing only; the
  distributions are filled in **after** the exclusion check, under the
  sub-key ``("spot-risk-dist", cluster_key, work_hours, market digest,
  resolved cadence, risk_mode, trials, seed)``, so a candidate priced
  out of the spot tier never pays for a distribution — and if catalog
  prices later admit it, the fill runs exactly once.

Deadlines and prices are deliberately outside the keys: completion
probabilities are evaluated against the memoized distribution at plan
time, and catalog rates only enter the (cheap, uncached) exclusion
arithmetic.

Spot candidates whose expected cost exceeds their own on-demand cost
(possible when the hazard is high enough that lost work and restarts eat
the discount) are *excluded with a recorded reason* rather than listed —
every spot candidate in a plan is expected to save money.

The Pareto frontier gains the risk view: (p95 hours, expected dollars).
An on-demand candidate's p95 equals its deterministic hours, so safe
configurations compete with cheap-but-risky ones on one chart, and the
"cheapest under deadline" pick accepts a completion-probability target
("≥95% chance of finishing in 24 h").
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..cloud.pricing import PriceCatalog
from ..cluster.planner import (
    ClusterCandidate,
    ClusterPlan,
    ClusterPlanner,
    dominance_sweep,
    strategy_payload,
)
from ..scenarios import SimulationCache
from ..scenarios.scenario import ModelConfig
from ..telemetry.tracer import Tracer
from .checkpoint import (
    DEFAULT_DISK_BANDWIDTH_GBS,
    DEFAULT_PROVISION_SECONDS,
    CheckpointPolicy,
    checkpoint_state_gb,
    optimal_interval_minutes,
)
from .market import SpotMarket, get_spot_market
from .risk import (
    DEFAULT_TRIALS,
    AnalyticMakespanDistribution,
    MakespanDistribution,
    SpotSimulator,
    expected_makespan_hours,
    expected_preemptions,
    segment_lengths,
)

ONDEMAND = "ondemand"
SPOT = "spot"

DEFAULT_CONFIDENCE = 0.95
DEFAULT_SEED = 20240724  # the paper's venue year/month; any constant works

# How spot percentiles/completion probabilities are produced:
# "analytic" (default) serves them from the closed-form
# AnalyticMakespanDistribution with no sampling; "mc" serves them from
# the batched Monte Carlo (the validation path); "both" serves analytic
# while also running the Monte Carlo so its mean is reported alongside.
RISK_MODES = ("analytic", "mc", "both")
DEFAULT_RISK_MODE = "analytic"


@dataclass(frozen=True)
class SpotCandidate:
    """One cluster candidate priced at one capacity tier.

    For the on-demand tier the distribution is a point mass at the
    deterministic makespan (p50 = p95 = expected = hours, completion is
    0/1 against the deadline); for the spot tier the fields carry the
    closed-form expectation and the Monte Carlo percentiles.
    """

    base: ClusterCandidate
    tier: str  # ONDEMAND | SPOT
    dollars_per_gpu_hour: float  # the billed rate for this tier
    expected_hours: float  # closed-form expectation
    mc_mean_hours: float  # Monte Carlo sampled mean (validates the closed form)
    p50_hours: float
    p95_hours: float
    expected_preemptions: float
    completion_probability: float  # within the plan deadline (1.0 if none)
    market: Optional[SpotMarket] = None
    policy: Optional[CheckpointPolicy] = None

    @property
    def scenario(self):
        return self.base.scenario

    @property
    def provider(self) -> str:
        return self.base.provider

    @cached_property
    def label(self) -> str:
        # Cached like ClusterCandidate.label: sort keys and the frontier
        # sweep read it O(n log n) times per plan.
        return f"{self.base.label}_{self.tier}"

    @property
    def ondemand_hours(self) -> float:
        return self.base.hours

    @property
    def ondemand_dollars(self) -> float:
        return self.base.dollars

    def _dollars(self, hours: float) -> float:
        return hours * self.dollars_per_gpu_hour * self.base.scenario.num_gpus

    @cached_property
    def expected_dollars(self) -> float:
        # Cached: the dominance sweep, feasibility filter and both
        # min() selections reread this O(n log n) times per plan.
        return self._dollars(self.expected_hours)

    @property
    def p95_dollars(self) -> float:
        return self._dollars(self.p95_hours)

    @property
    def expected_savings(self) -> float:
        """Expected dollars saved vs running this cluster on demand."""
        return self.ondemand_dollars - self.expected_dollars

    def meets(
        self,
        deadline_hours: Optional[float] = None,
        budget_dollars: Optional[float] = None,
        confidence: float = DEFAULT_CONFIDENCE,
    ) -> bool:
        """Feasibility under the risk-adjusted targets: the deadline must
        be met with at least ``confidence`` probability, the budget is
        checked against expected dollars."""
        if deadline_hours is not None and self.completion_probability < confidence:
            return False
        if budget_dollars is not None and self.expected_dollars > budget_dollars:
            return False
        return True

    def sort_key(self) -> Tuple:
        """Deterministic total order on the risk view: tight-tail before
        loose, cheap-in-expectation before expensive, label last (which
        also orders the on-demand tier before spot on exact ties)."""
        return (self.p95_hours, self.expected_dollars, self.label)

    def to_dict(self) -> Dict[str, object]:
        scenario = self.base.scenario
        payload = {
            "label": self.label,
            "tier": self.tier,
            "gpu": scenario.gpu_spec.name,
            "provider": self.provider,
            "num_gpus": scenario.num_gpus,
            "interconnect": scenario.interconnect_spec.name,
            "dense": scenario.dense,
            "per_gpu_batch": scenario.batch_size,
            "dollars_per_gpu_hour": self.dollars_per_gpu_hour,
            "expected_hours": self.expected_hours,
            "mc_mean_hours": self.mc_mean_hours,
            "p50_hours": self.p50_hours,
            "p95_hours": self.p95_hours,
            "expected_dollars": self.expected_dollars,
            "p95_dollars": self.p95_dollars,
            "ondemand_hours": self.ondemand_hours,
            "ondemand_dollars": self.ondemand_dollars,
            "expected_preemptions": self.expected_preemptions,
            "completion_probability": self.completion_probability,
            "mtbp_hours": self.market.mtbp_hours if self.market else None,
            "checkpoint_minutes": self.policy.interval_minutes if self.policy else None,
        }
        payload.update(strategy_payload(scenario))
        return payload


def risk_pareto_frontier(candidates: Sequence[SpotCandidate]) -> List[SpotCandidate]:
    """Non-dominated candidates under (minimize p95 hours, minimize
    expected dollars) — the risk-adjusted analogue of the cluster
    planner's frontier, sharing its weak-dominance/tie-collapse sweep."""
    return dominance_sweep(
        candidates, SpotCandidate.sort_key, lambda c: c.expected_dollars
    )


@dataclass(frozen=True)
class CadencePricing:
    """The closed-form half of a risk bundle: the cadence selected from
    the menu (or the Daly optimum) together with the exact moments at
    that cadence. Pure function of (cluster scenario, work hours,
    market, cadence axis) — no prices, no deadlines."""

    policy: CheckpointPolicy
    expected_hours: float
    expected_preemptions: float


@dataclass(frozen=True)
class RiskDistributions:
    """Stage-2 memoized risk result for one spot candidate: the serving
    distribution (analytic or Monte Carlo, per risk mode) plus the
    Monte Carlo run when the mode requested one. Deadlines are *not*
    part of the memoization key — ``completion_probability(deadline)``
    is evaluated against the stored distribution at plan time."""

    serving: Union[AnalyticMakespanDistribution, MakespanDistribution]
    mc: Optional[MakespanDistribution]

    @property
    def mc_mean_hours(self) -> float:
        """The sampled mean when a Monte Carlo ran, else the serving
        distribution's closed-form mean (modes without sampling)."""
        return self.mc.mean_hours if self.mc is not None else self.serving.mean_hours


@dataclass
class RiskEntry:
    """One candidate's memoized risk bundle (deliberately mutable): the
    cadence pricing is computed on the first miss, the distributions are
    filled in lazily after the exclusion check so a candidate priced out
    of the spot tier never pays for one. The fill itself is memoized
    under its own sub-key, so concurrent planners collapse to a single
    computation and the bundle converges to the same value either way."""

    pricing: CadencePricing
    distributions: Optional[RiskDistributions] = None


@dataclass
class SpotPlan:
    """The risk planner's full answer: both tiers, risk frontier,
    confidence-constrained recommendation, and the untouched on-demand
    plan it was derived from."""

    ondemand: ClusterPlan
    confidence: float
    spot_mode: str  # "both" | "only" | "off"
    candidates: List[SpotCandidate]
    frontier: List[SpotCandidate]
    recommended: Optional[SpotCandidate]
    fastest: Optional[SpotCandidate]
    excluded: List[str] = field(default_factory=list)
    risk_mode: str = DEFAULT_RISK_MODE

    @property
    def deadline_hours(self) -> Optional[float]:
        return self.ondemand.deadline_hours

    @property
    def budget_dollars(self) -> Optional[float]:
        return self.ondemand.budget_dollars

    @property
    def feasible(self) -> List[SpotCandidate]:
        return [
            c for c in self.candidates
            if c.meets(self.deadline_hours, self.budget_dollars, self.confidence)
        ]

    @property
    def spot_candidates(self) -> List[SpotCandidate]:
        return [c for c in self.candidates if c.tier == SPOT]

    def to_payload(self) -> Dict[str, object]:
        """JSON-serializable plan (``--json``), deterministically ordered."""
        return {
            "model": self.ondemand.model_name,
            "dataset": self.ondemand.dataset,
            "seq_len": self.ondemand.seq_len,
            "num_queries": self.ondemand.num_queries,
            "epochs": self.ondemand.epochs,
            "deadline_hours": self.deadline_hours,
            "budget_dollars": self.budget_dollars,
            "confidence": self.confidence,
            "spot": self.spot_mode,
            "risk_mode": self.risk_mode,
            "num_candidates": len(self.candidates),
            "num_spot_candidates": len(self.spot_candidates),
            "num_feasible": len(self.feasible),
            "frontier": [c.to_dict() for c in self.frontier],
            "recommended": self.recommended.to_dict() if self.recommended else None,
            "fastest": self.fastest.to_dict() if self.fastest else None,
            "excluded": list(self.excluded),
            "skipped": list(self.ondemand.skipped),
            "ondemand_frontier": [c.to_dict() for c in self.ondemand.frontier],
        }

    def to_table(self, top: int = 10) -> str:
        """Risk frontier + recommendation as a report-style text table."""
        od = self.ondemand
        lines = [
            f"== spot plan: {od.model_name} on {od.dataset or f'seq {od.seq_len}'} "
            f"({od.num_queries} queries x {od.epochs} epochs) ==",
        ]
        target = []
        if self.deadline_hours is not None:
            target.append(
                f"deadline {self.deadline_hours:g} h @ >= {self.confidence:.0%}"
            )
        if self.budget_dollars is not None:
            target.append(f"budget ${self.budget_dollars:g} (expected)")
        lines.append(
            f"target: {', '.join(target) if target else 'none (full frontier)'}; "
            f"{len(self.feasible)}/{len(self.candidates)} candidates feasible; "
            f"spot tier: {self.spot_mode}; risk mode: {self.risk_mode}"
        )
        width = max([len(c.label) for c in self.frontier[:top]] + [12])
        lines.append(
            f"{'risk-pareto configuration':<{width}}  {'E[h]':>8}  {'p95 h':>8}  "
            f"{'E[$]':>9}  {'P(done)':>7}  {'preempt':>7}"
        )
        for c in self.frontier[:top]:
            lines.append(
                f"{c.label:<{width}}  {c.expected_hours:>8.2f}  {c.p95_hours:>8.2f}  "
                f"{c.expected_dollars:>9.2f}  {c.completion_probability:>7.2f}  "
                f"{c.expected_preemptions:>7.2f}"
            )
        if len(self.frontier) > top:
            lines.append(f"... {len(self.frontier) - top} more frontier points (--top)")
        if self.recommended is not None:
            r = self.recommended
            lines.append(
                f"recommended: {r.label} — E[${r.expected_dollars:.2f}] in "
                f"E[{r.expected_hours:.2f} h] (p95 {r.p95_hours:.2f} h, "
                f"P(meets target) {r.completion_probability:.2f})"
            )
            if r.tier == SPOT:
                lines.append(
                    f"             expected saving vs on-demand: "
                    f"${r.expected_savings:.2f} "
                    f"({r.expected_preemptions:.1f} preemptions expected)"
                )
        else:
            lines.append("recommended: none — no configuration meets the target")
        if self.fastest is not None and self.fastest is not self.recommended:
            f = self.fastest
            lines.append(
                f"fastest feasible: {f.label} — p95 {f.p95_hours:.2f} h for "
                f"E[${f.expected_dollars:.2f}]"
            )
        for reason in self.excluded:
            lines.append(f"excluded: {reason}")
        for reason in od.skipped:
            lines.append(f"skipped: {reason}")
        return "\n".join(lines)


class RiskAdjustedPlanner(ClusterPlanner):
    """The cluster planner with a spot tier and an interruption model.

    The sweep, memory filtering, trace caching and on-demand pricing are
    inherited (including the parallelism-strategy axes — checkpoint costs
    automatically use the *per-device* sharded state under tensor
    parallelism); this class adds per-provider spot markets, a checkpoint
    policy derived from the model's state size, and the risk estimators.
    ``checkpoint_minutes=None`` (the default) gives every spot candidate
    Daly's closed-form optimal cadence ``sqrt(2 * MTBP * C)`` for its own
    fleet hazard and write cost; an explicit menu overrides it — each
    candidate then adopts the menu cadence minimizing its closed-form
    expected makespan, so the cadence axis is optimized out per candidate
    rather than multiplying the plan.

    ``risk_mode`` picks the percentile engine: ``"analytic"`` (default)
    serves p50/p95/completion probability from the exact closed-form
    distribution with no sampling, ``"mc"`` serves them from the batched
    Monte Carlo (the validation path, deterministic per seed), and
    ``"both"`` serves analytic while also running the Monte Carlo so
    ``mc_mean_hours`` reports the sampled mean. Analytic serves, MC
    validates.
    """

    def __init__(
        self,
        model: Union[str, ModelConfig],
        dataset: Optional[str] = "math14k",
        epochs: int = 10,
        num_queries: Optional[int] = None,
        seq_len: Optional[int] = None,
        catalog: Optional[PriceCatalog] = None,
        cache: Optional[SimulationCache] = None,
        jobs: int = 1,
        executor: str = "thread",
        markets: Optional[Mapping[str, SpotMarket]] = None,
        mtbp_hours: Optional[float] = None,
        checkpoint_minutes: Optional[Sequence[float]] = None,
        disk_bandwidth_gbs: float = DEFAULT_DISK_BANDWIDTH_GBS,
        provision_seconds: float = DEFAULT_PROVISION_SECONDS,
        trials: int = DEFAULT_TRIALS,
        seed: int = DEFAULT_SEED,
        risk_mode: str = DEFAULT_RISK_MODE,
        tracer: Optional[Tracer] = None,
    ) -> None:
        super().__init__(
            model,
            dataset=dataset,
            epochs=epochs,
            num_queries=num_queries,
            seq_len=seq_len,
            catalog=catalog,
            cache=cache,
            jobs=jobs,
            executor=executor,
            tracer=tracer,
        )
        self.markets = dict(markets) if markets is not None else {}
        self.mtbp_hours = mtbp_hours
        if checkpoint_minutes is None:
            self.checkpoint_minutes: Optional[Tuple[float, ...]] = None  # Daly mode
        else:
            self.checkpoint_minutes = tuple(dict.fromkeys(checkpoint_minutes))
            if not self.checkpoint_minutes:
                raise ValueError("checkpoint_minutes must name at least one cadence")
        if disk_bandwidth_gbs <= 0:
            raise ValueError(
                f"disk_bandwidth_gbs must be positive, got {disk_bandwidth_gbs}"
            )
        self.disk_bandwidth_gbs = disk_bandwidth_gbs
        self.provision_seconds = provision_seconds
        self._policy_cache: Dict[Tuple[int, float], CheckpointPolicy] = {}
        self.simulator = SpotSimulator(trials=trials, seed=seed)
        self.seed = seed
        if risk_mode not in RISK_MODES:
            raise ValueError(
                f"risk_mode must be one of {RISK_MODES}, got {risk_mode!r}"
            )
        self.risk_mode = risk_mode

    # ------------------------------------------------------------------
    def market_for(self, provider: str) -> SpotMarket:
        """The provider's interruption model: an explicit mapping entry,
        else the registry default — with the planner-wide MTBP override
        (``--mtbp-hours``) applied on top of either."""
        market = self.markets.get(provider)
        if market is None:
            market = get_spot_market(provider)
        if self.mtbp_hours is not None:
            market = market.with_mtbp(self.mtbp_hours)
        return market

    def _seed_for(self, candidate: ClusterCandidate) -> int:
        """Candidate-deterministic Monte Carlo seed: stable across runs,
        processes and ``--jobs`` (crc32, unlike ``hash()``, is unsalted)."""
        return self.seed ^ zlib.crc32(candidate.label.encode())

    def _policy_for(self, interval_minutes: float, tensor_parallel: int) -> CheckpointPolicy:
        """The (cached) checkpoint policy at one cadence for one TP
        degree — write/restart costs use the per-device sharded state."""
        key = (tensor_parallel, interval_minutes)
        policy = self._policy_cache.get(key)
        if policy is None:
            policy = CheckpointPolicy.for_model(
                self.cfg,
                interval_minutes=interval_minutes,
                disk_bandwidth_gbs=self.disk_bandwidth_gbs,
                provision_seconds=self.provision_seconds,
                tensor_parallel=tensor_parallel,
            )
            self._policy_cache[key] = policy
        return policy

    def _candidate_intervals(
        self, work_hours: float, fleet_rate_per_hour: float, tensor_parallel: int
    ) -> Tuple[float, ...]:
        """The cadences offered to one candidate: the explicit menu when
        one was given, else Daly's closed-form optimum for the
        candidate's own fleet hazard and per-shard write cost, clamped to
        the job length (past which the cadence stops mattering)."""
        if self.checkpoint_minutes is not None:
            return self.checkpoint_minutes
        write_seconds = (
            checkpoint_state_gb(self.cfg, tensor_parallel) / self.disk_bandwidth_gbs
        )
        if fleet_rate_per_hour > 0:
            interval = optimal_interval_minutes(
                1.0 / fleet_rate_per_hour, write_seconds
            )
        else:
            interval = float("inf")  # never preempted: one segment
        return (min(interval, max(work_hours, 1e-9) * 60.0),)

    def _cadence_axis(self) -> Tuple:
        """The part of the risk-memoization keys describing how cadences
        are generated: the explicit menu (or the Daly marker) plus the
        write/restart cost model knobs that shape every policy."""
        return (
            self.checkpoint_minutes,
            self.disk_bandwidth_gbs,
            self.provision_seconds,
        )

    def _risk_entry(
        self,
        base: ClusterCandidate,
        market: SpotMarket,
        rate: float,
        cluster_key: Tuple,
    ) -> RiskEntry:
        """The candidate's memoized risk bundle — the single cache probe
        a warm plan pays per candidate. Created with the closed-form
        cadence pricing (segments computed once per cadence and shared by
        both estimators); distributions are filled in later, after the
        exclusion check."""
        work = base.hours
        scenario = base.scenario
        key = (
            "spot-risk",
            cluster_key,
            work,
            market.digest(),
            self._cadence_axis(),
            self.risk_mode,
            self.simulator.trials,
            self._seed_for(base),
        )

        def compute() -> RiskEntry:
            tensor_parallel = scenario.strategy_spec.tensor_parallel
            priced = []
            for minutes in self._candidate_intervals(work, rate, tensor_parallel):
                policy = self._policy_for(minutes, tensor_parallel)
                segments = segment_lengths(work, policy)
                priced.append(
                    (
                        expected_makespan_hours(work, rate, policy, segments=segments),
                        policy,
                        segments,
                    )
                )
            # Ties (e.g. every cadence at zero hazard) break toward the
            # shortest interval; keying explicitly also keeps min() from
            # comparing the unorderable policy dataclasses themselves.
            expected, policy, segments = min(
                priced, key=lambda entry: (entry[0], entry[1].interval_minutes)
            )
            pricing = CadencePricing(
                policy=policy,
                expected_hours=expected,
                expected_preemptions=expected_preemptions(
                    work, rate, policy, segments=segments
                ),
            )
            return RiskEntry(pricing=pricing)

        return self.cache.memoize(key, compute, kind="risk")

    def _risk_distributions(
        self,
        base: ClusterCandidate,
        market: SpotMarket,
        rate: float,
        policy: CheckpointPolicy,
        cluster_key: Tuple,
    ) -> RiskDistributions:
        """The bundle's lazy fill, memoized under its own sub-key: the
        candidate's makespan distribution(s) at its resolved cadence,
        per the planner's risk mode. Runs only for candidates that
        survive the exclusion check."""
        work = base.hours
        seed = self._seed_for(base)
        key = (
            "spot-risk-dist",
            cluster_key,
            work,
            market.digest(),
            policy.interval_minutes,
            policy.write_seconds,
            policy.restart_seconds,
            self.risk_mode,
            self.simulator.trials,
            seed,
        )

        def compute() -> RiskDistributions:
            # The analytic and Monte Carlo paths are timed separately
            # (histogram count doubles as "how many distributions were
            # built this run"), so a telemetry export shows what the
            # serving path costs vs what validation costs.
            segments = segment_lengths(work, policy)
            analytic: Optional[AnalyticMakespanDistribution] = None
            mc: Optional[MakespanDistribution] = None
            if self.risk_mode in ("analytic", "both"):
                started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
                analytic = AnalyticMakespanDistribution(
                    work, rate, policy, segments=segments
                )
                self.cache.metrics.histogram("risk.analytic_seconds").observe(
                    time.perf_counter() - started  # repro: allow[no-wall-clock] telemetry latency measurement
                )
            if self.risk_mode in ("mc", "both"):
                started = time.perf_counter()  # repro: allow[no-wall-clock] telemetry latency measurement
                mc = self.simulator.simulate(
                    work, rate, policy, seed=seed, segments=segments
                )
                self.cache.metrics.histogram("risk.mc_seconds").observe(
                    time.perf_counter() - started  # repro: allow[no-wall-clock] telemetry latency measurement
                )
            return RiskDistributions(
                serving=analytic if analytic is not None else mc, mc=mc
            )

        return self.cache.memoize(key, compute, kind="risk")

    def _spot_candidate(
        self,
        base: ClusterCandidate,
        deadline_hours: Optional[float],
    ) -> Union[SpotCandidate, str]:
        """Risk-price one candidate on the spot tier, or the exclusion
        reason when spot cannot beat the candidate's own on-demand cost.

        The expensive pieces are memoized (see the module docstring for
        the bundle key contract); only the exclusion arithmetic — which
        depends on catalog prices — runs unconditionally. The exclusion
        check stays *before* the distribution fill so hopeless candidates
        (hazard eats the discount) never pay for one."""
        scenario = base.scenario
        market = self.market_for(base.provider)
        rate = market.fleet_rate_per_hour(scenario.num_gpus)
        cluster_key = scenario.cluster_key()  # built once, shared by both keys
        entry = self._risk_entry(base, market, rate, cluster_key)
        pricing = entry.pricing
        expected = pricing.expected_hours
        policy = pricing.policy
        spot_rate = self.catalog.spot_dollars_per_hour(
            scenario.gpu_spec.name, base.provider
        )
        expected_dollars = expected * spot_rate * scenario.num_gpus
        if expected_dollars > base.dollars:
            return (
                f"{base.label}: spot expected ${expected_dollars:.2f} exceeds "
                f"on-demand ${base.dollars:.2f} "
                f"(mtbp {market.mtbp_hours:g} h x{scenario.num_gpus}, "
                f"checkpoint {policy.interval_minutes:g} min)"
            )
        distributions = entry.distributions
        if distributions is None:
            distributions = self._risk_distributions(
                base, market, rate, policy, cluster_key
            )
            entry.distributions = distributions
        serving = distributions.serving
        return SpotCandidate(
            base=base,
            tier=SPOT,
            dollars_per_gpu_hour=spot_rate,
            expected_hours=expected,
            mc_mean_hours=float(distributions.mc_mean_hours),
            p50_hours=float(serving.p50_hours),
            p95_hours=float(serving.p95_hours),
            expected_preemptions=pricing.expected_preemptions,
            completion_probability=float(
                serving.completion_probability(deadline_hours)
            ),
            market=market,
            policy=policy,
        )

    @staticmethod
    def _ondemand_candidate(
        base: ClusterCandidate, deadline_hours: Optional[float]
    ) -> SpotCandidate:
        """The uninterrupted tier: a point-mass distribution at the PR 2
        makespan, so the risk view degenerates to (hours, dollars)."""
        hours = base.hours
        meets = deadline_hours is None or hours <= deadline_hours
        return SpotCandidate(
            base=base,
            tier=ONDEMAND,
            dollars_per_gpu_hour=base.dollars_per_gpu_hour,
            expected_hours=hours,
            mc_mean_hours=hours,
            p50_hours=hours,
            p95_hours=hours,
            expected_preemptions=0.0,
            completion_probability=1.0 if meets else 0.0,
        )

    def plan_spot(
        self,
        spot: str = "both",
        confidence: float = DEFAULT_CONFIDENCE,
        deadline_hours: Optional[float] = None,
        budget_dollars: Optional[float] = None,
        **sweep_kwargs,
    ) -> SpotPlan:
        """Sweep the cluster space once, then price every candidate on the
        requested tiers and rank the risk view.

        ``spot`` selects the tiers: ``"both"`` (default), ``"only"``
        (spot tier alone), or ``"off"`` (the on-demand tier wrapped in
        the risk view — useful as a baseline with identical shape).
        ``sweep_kwargs`` are the inherited :meth:`ClusterPlanner.plan`
        axis arguments (``gpus``, ``providers``, ``num_gpus``, ...).
        """
        if spot not in ("both", "only", "off"):
            raise ValueError(f"spot must be 'both', 'only' or 'off', got {spot!r}")
        if not 0.0 <= confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {confidence}")
        tracer = self.tracer
        with tracer.span("planner.plan_spot", risk_mode=self.risk_mode, spot=spot):
            ondemand = super().plan(
                deadline_hours=deadline_hours,
                budget_dollars=budget_dollars,
                **sweep_kwargs,
            )
            with tracer.span("planner.risk") as sp:
                candidates: List[SpotCandidate] = []
                excluded: List[str] = []
                missing_spot = set()
                for base in ondemand.candidates:
                    if spot != "only":
                        candidates.append(
                            self._ondemand_candidate(base, deadline_hours)
                        )
                    if spot == "off":
                        continue
                    gpu_name = base.scenario.gpu_spec.name
                    if not self.catalog.has_spot(gpu_name, base.provider):
                        missing_spot.add(
                            f"{base.provider} lists no spot tier for {gpu_name}"
                        )
                        continue
                    priced = self._spot_candidate(base, deadline_hours)
                    if isinstance(priced, str):
                        excluded.append(priced)
                    else:
                        candidates.append(priced)
                excluded.extend(sorted(missing_spot))
                sp.attributes["candidates"] = len(candidates)
                sp.attributes["excluded"] = len(excluded)
            with tracer.span("planner.risk_pareto") as sp:
                candidates.sort(key=SpotCandidate.sort_key)
                frontier = risk_pareto_frontier(candidates)
                feasible = [
                    c for c in candidates
                    if c.meets(deadline_hours, budget_dollars, confidence)
                ]
                recommended = min(
                    feasible,
                    key=lambda c: (c.expected_dollars, c.p95_hours, c.label),
                    default=None,
                )
                fastest = min(
                    feasible,
                    key=lambda c: (c.p95_hours, c.expected_dollars, c.label),
                    default=None,
                )
                sp.attributes["frontier"] = len(frontier)
        return SpotPlan(
            ondemand=ondemand,
            confidence=confidence,
            spot_mode=spot,
            candidates=candidates,
            frontier=frontier,
            recommended=recommended,
            fastest=fastest,
            excluded=excluded,
            risk_mode=self.risk_mode,
        )
