"""Preemption-aware makespan: closed form and Monte Carlo.

The job needs ``work_hours`` of useful compute. Under a checkpoint
policy with interval ``tau``, write cost ``c`` and restart overhead
``R``, the run is a sequence of *segments*: full segments of length
``tau + c`` (work plus the checkpoint write) and a final segment with no
write. A preemption (exponential, rate ``lam`` per hour while running)
loses the current segment's progress and costs ``R`` before the segment
restarts.

**Closed form.** A segment of length ``s`` succeeds per attempt with
probability ``e^{-lam s}``; summing the geometric attempts and the
truncated-exponential failure times collapses to

    E[T_segment] = (1/lam + R) * (e^{lam s} - 1)

whose ``lam -> 0`` limit is ``s``, and the expected makespan is the sum
over segments. Expected preemptions per segment are ``e^{lam s} - 1``.
This is the classical Daly-style checkpoint/restart expectation, kept
exact per segment rather than first-order.

**Zero hazard.** When ``lam == 0`` checkpointing buys nothing, so a
rational policy writes no checkpoints at all: both estimators return
``work_hours`` exactly, which is what makes zero-preemption spot
planning reproduce the on-demand plan bit-for-bit.

**Monte Carlo.** :class:`SpotSimulator` samples the identical segment
process with a seeded ``random.Random``, so runs are deterministic for a
given seed and independent of sweep parallelism. It exists to validate
the closed form (mean/p50) and to provide what the closed form cannot:
percentiles (p50/p95) and completion probabilities for
"finish-by-deadline with 95% confidence" planning. Degenerate inputs
(hazard so high a segment almost never completes) are cut off at
``max_makespan_hours`` and reported as ``inf`` — the serialization layer
maps those to ``null`` in ``--json`` output.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .checkpoint import CheckpointPolicy

DEFAULT_TRIALS = 512

# Trials that exceed this are abandoned as non-terminating (expected
# when e^{lam * s} is astronomically large) and recorded as inf.
DEFAULT_MAX_MAKESPAN_HOURS = 1e6

# Second non-termination guard: a segment whose per-attempt success
# probability is ~e^{-lam s} needs ~e^{lam s} attempts; past this many
# the trial is abandoned as inf rather than looped to the time cap.
MAX_ATTEMPTS_PER_SEGMENT = 10_000


def segment_lengths(work_hours: float, policy: CheckpointPolicy) -> List[float]:
    """The run's segment lengths, checkpoint writes included.

    Full segments are ``tau + c``; the final segment omits the write
    (there is nothing left to protect). An interval longer than the job
    degenerates to a single write-free segment of the whole job — the
    policy quietly stops mattering, it does not fail.
    """
    if work_hours < 0:
        raise ValueError(f"work_hours must be >= 0, got {work_hours}")
    if work_hours == 0:
        return []
    if not math.isfinite(work_hours):
        return [work_hours]
    tau = policy.interval_hours
    n_full = int(work_hours // tau)
    remainder = work_hours - n_full * tau
    # Even-division tolerance must scale with the *job*, not the interval:
    # remainder inherits the absolute float error of work_hours (~eps *
    # work_hours per operation that built it), so a long job with many
    # intervals can carry a residue far above tau * 1e-9 that is still
    # pure rounding noise. Treating it as a real segment would append a
    # near-zero final segment and inflate expected preemptions. Since this
    # branch requires n_full >= 1 (work_hours >= tau), the relative bound
    # subsumes the old tau-relative one: nothing previously treated as
    # even division changes.
    if remainder < work_hours * 1e-9 and n_full > 0:
        # Work divides evenly; the last full interval is the final segment.
        n_full -= 1
        remainder = tau
    return [tau + policy.write_hours] * n_full + [remainder]


def _expm1_or_inf(x: float) -> float:
    """``e^x - 1``, saturating to inf instead of raising OverflowError —
    a hazard so high that a segment essentially never completes is a
    legal input whose makespan is "never", not a crash."""
    try:
        return math.expm1(x)
    except OverflowError:
        return math.inf


def expected_makespan_hours(
    work_hours: float, rate_per_hour: float, policy: CheckpointPolicy
) -> float:
    """Closed-form expected wall-clock hours to finish ``work_hours``."""
    if rate_per_hour < 0:
        raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
    if rate_per_hour == 0:
        return work_hours  # no hazard -> no checkpoints, on-demand makespan
    factor = 1.0 / rate_per_hour + policy.restart_hours
    return sum(
        factor * _expm1_or_inf(rate_per_hour * s)
        for s in segment_lengths(work_hours, policy)
    )


def expected_preemptions(
    work_hours: float, rate_per_hour: float, policy: CheckpointPolicy
) -> float:
    """Closed-form expected preemption count over the whole run."""
    if rate_per_hour < 0:
        raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
    if rate_per_hour == 0:
        return 0.0
    return sum(
        _expm1_or_inf(rate_per_hour * s) for s in segment_lengths(work_hours, policy)
    )


@dataclass(frozen=True)
class MakespanDistribution:
    """Monte Carlo makespan samples (sorted) with summary accessors.

    ``mean_preemptions`` averages over *completed* trials only: an
    abandoned (``inf``) trial records whatever preemptions it saw before
    the cutoff, which is an artifact of the cutoff rather than a
    statistic of the run — folding those in would bias the reported mean
    toward the guard thresholds. Abandoned trials are reported separately
    via ``abandoned_trials``.
    """

    samples: Tuple[float, ...]  # ascending
    mean_preemptions: float
    abandoned_trials: int = 0

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("MakespanDistribution needs at least one sample")

    @property
    def trials(self) -> int:
        return len(self.samples)

    @property
    def completed_trials(self) -> int:
        return len(self.samples) - self.abandoned_trials

    @property
    def mean_hours(self) -> float:
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        rank = max(1, math.ceil(q * len(self.samples)))
        return self.samples[rank - 1]

    @property
    def p50_hours(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_hours(self) -> float:
        return self.percentile(0.95)

    def completion_probability(self, deadline_hours: Optional[float]) -> float:
        """Fraction of trials finishing within the deadline (1.0 when
        there is no deadline — every run "finishes in time")."""
        if deadline_hours is None:
            return 1.0
        return sum(1 for s in self.samples if s <= deadline_hours) / len(self.samples)


class SpotSimulator:
    """Seeded Monte Carlo over the segment process.

    Deterministic: the same ``(seed, trials, inputs)`` always produces
    the same distribution, and simulation happens in plan post-processing
    (never inside the parallel trace sweep), so ``--jobs`` cannot change
    a plan.
    """

    def __init__(
        self,
        trials: int = DEFAULT_TRIALS,
        seed: int = 0,
        max_makespan_hours: float = DEFAULT_MAX_MAKESPAN_HOURS,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.trials = trials
        self.seed = seed
        self.max_makespan_hours = max_makespan_hours

    def simulate(
        self,
        work_hours: float,
        rate_per_hour: float,
        policy: CheckpointPolicy,
        seed: Optional[int] = None,
    ) -> MakespanDistribution:
        """Sample ``trials`` makespans; ``seed`` overrides the default."""
        if rate_per_hour < 0:
            raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
        if rate_per_hour == 0:
            # Matches the closed form: no hazard, no checkpoints.
            return MakespanDistribution(
                samples=(work_hours,) * self.trials, mean_preemptions=0.0
            )
        segments = segment_lengths(work_hours, policy)
        rng = random.Random(self.seed if seed is None else seed)
        restart = policy.restart_hours
        samples: List[float] = []
        completed_preemptions = 0
        abandoned = 0
        for _ in range(self.trials):
            elapsed = 0.0
            trial_preemptions = 0
            for s in segments:
                attempts = 0
                while True:
                    attempts += 1
                    to_preemption = rng.expovariate(rate_per_hour)
                    if to_preemption >= s:
                        elapsed += s
                        break
                    elapsed += to_preemption + restart
                    trial_preemptions += 1
                    if (
                        elapsed > self.max_makespan_hours
                        or attempts >= MAX_ATTEMPTS_PER_SEGMENT
                    ):
                        elapsed = math.inf
                        break
                if math.isinf(elapsed):
                    break
            if math.isinf(elapsed):
                # Abandoned: the preemptions seen before the cutoff are a
                # property of the guard, not the workload — keep them out
                # of the completed-trial statistic.
                abandoned += 1
            else:
                completed_preemptions += trial_preemptions
            samples.append(elapsed)
        completed = self.trials - abandoned
        return MakespanDistribution(
            samples=tuple(sorted(samples)),
            mean_preemptions=(
                completed_preemptions / completed if completed else 0.0
            ),
            abandoned_trials=abandoned,
        )
