"""Preemption-aware makespan: a three-layer risk engine.

The job needs ``work_hours`` of useful compute. Under a checkpoint
policy with interval ``tau``, write cost ``c`` and restart overhead
``R``, the run is a sequence of *segments*: full segments of length
``tau + c`` (work plus the checkpoint write) and a final segment with no
write. A preemption (exponential, rate ``lam`` per hour while running)
loses the current segment's progress and costs ``R`` before the segment
restarts.

**Layer 1 — closed-form moments.** A segment of length ``s`` succeeds
per attempt with probability ``p = e^{-lam s}``; summing the geometric
attempts and the truncated-exponential failure times collapses to

    E[T_segment] = (1/lam + R) * (e^{lam s} - 1)

whose ``lam -> 0`` limit is ``s``, and the expected makespan is the sum
over segments. Expected preemptions per segment are ``e^{lam s} - 1``.
This is the classical Daly-style checkpoint/restart expectation, kept
exact per segment rather than first-order.

**Layer 2 — the analytic distribution (serving path).** The same
segment process has an exact *distribution*, not just a mean: per
segment the excess over ``s`` is a geometric number of failures, each
costing a truncated-exponential wait plus ``R``. Segments are
independent, so the total-excess characteristic function is the product
of per-segment CFs (grouped by distinct segment length and raised to
integer powers), and :class:`AnalyticMakespanDistribution` inverts that
product on a fixed grid with one inverse FFT. p50/p95 and
``completion_probability(deadline)`` therefore need **no sampling** —
this is the planner's default (``--risk-mode analytic``). On planner
workloads (hundreds of segments, moderate hazard) the analytic
percentiles agree with a 512-trial Monte Carlo within ~5% (p50/p95); the
property tests in ``tests/test_spot.py`` pin that tolerance.

**Layer 3 — batched Monte Carlo (validation path).** :class:`SpotSimulator`
samples the identical segment process, vectorized: attempts are drawn in
rectangular blocks over all still-unresolved (trial, segment) pairs at
once via inverse-CDF exponential sampling on the repo's own tensor layer
(uniforms from ``numpy.random.default_rng(seed)``, transformed with
``-log(1 - u) / lam``), and survivor masks replace the inner ``while``.
The guard thresholds (``max_makespan_hours`` time cap, checked after
each failure; ``MAX_ATTEMPTS_PER_SEGMENT``) are preserved so
abandoned-trial semantics match the segment process exactly. Seeding
contract: one PCG64 stream per ``simulate`` call; blocks are drawn for
the unresolved pairs in ascending (trial, segment) order, so results are
deterministic for a given ``(seed, trials, inputs)`` — and simulation is
plan post-processing (never inside the parallel trace sweep), so
``--jobs``/``--executor`` cannot change a distribution. Degenerate
inputs (hazard so high a segment almost never completes) are cut off by
the guards and reported as ``inf`` — the serialization layer maps those
to ``null`` in ``--json`` output.

**Zero hazard.** When ``lam == 0`` checkpointing buys nothing, so a
rational policy writes no checkpoints at all: every layer returns
``work_hours`` exactly (a point mass), which is what makes
zero-preemption spot planning reproduce the on-demand plan bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..tensor import Tensor
from .checkpoint import CheckpointPolicy

DEFAULT_TRIALS = 512

# Trials that exceed this are abandoned as non-terminating (expected
# when e^{lam * s} is astronomically large) and recorded as inf.
DEFAULT_MAX_MAKESPAN_HOURS = 1e6

# Second non-termination guard: a segment whose per-attempt success
# probability is ~e^{-lam s} needs ~e^{lam s} attempts; past this many
# the trial is abandoned as inf rather than looped to the time cap.
MAX_ATTEMPTS_PER_SEGMENT = 10_000

# Batched-sampling shape limits: at most this many attempt columns per
# block, and at most this many uniforms per rectangular draw (keeps the
# degenerate-hazard worst case at tens of MB instead of unbounded).
MAX_BLOCK_ATTEMPTS = 4096
MAX_BLOCK_SAMPLES = 2_000_000


def segment_lengths(work_hours: float, policy: CheckpointPolicy) -> List[float]:
    """The run's segment lengths, checkpoint writes included.

    Full segments are ``tau + c``; the final segment omits the write
    (there is nothing left to protect). An interval longer than the job
    degenerates to a single write-free segment of the whole job — the
    policy quietly stops mattering, it does not fail.
    """
    if work_hours < 0:
        raise ValueError(f"work_hours must be >= 0, got {work_hours}")
    if work_hours == 0:
        return []
    if not math.isfinite(work_hours):
        return [work_hours]
    tau = policy.interval_hours
    n_full = int(work_hours // tau)
    remainder = work_hours - n_full * tau
    # Even-division tolerance must scale with the *job*, not the interval:
    # remainder inherits the absolute float error of work_hours (~eps *
    # work_hours per operation that built it), so a long job with many
    # intervals can carry a residue far above tau * 1e-9 that is still
    # pure rounding noise. Treating it as a real segment would append a
    # near-zero final segment and inflate expected preemptions. Since this
    # branch requires n_full >= 1 (work_hours >= tau), the relative bound
    # subsumes the old tau-relative one: nothing previously treated as
    # even division changes.
    if remainder < work_hours * 1e-9 and n_full > 0:
        # Work divides evenly; the last full interval is the final segment.
        n_full -= 1
        remainder = tau
    return [tau + policy.write_hours] * n_full + [remainder]


def _expm1_or_inf(x: float) -> float:
    """``e^x - 1``, saturating to inf instead of raising OverflowError —
    a hazard so high that a segment essentially never completes is a
    legal input whose makespan is "never", not a crash."""
    try:
        return math.expm1(x)
    except OverflowError:
        return math.inf


def _resolve_segments(
    work_hours: float,
    policy: CheckpointPolicy,
    segments: Optional[Sequence[float]],
) -> List[float]:
    """``segments`` when the caller already computed them (the planner
    prices several estimators per candidate and passes one shared list),
    else a fresh :func:`segment_lengths`."""
    if segments is not None:
        return list(segments)
    return segment_lengths(work_hours, policy)


def expected_makespan_hours(
    work_hours: float,
    rate_per_hour: float,
    policy: CheckpointPolicy,
    segments: Optional[Sequence[float]] = None,
) -> float:
    """Closed-form expected wall-clock hours to finish ``work_hours``."""
    if rate_per_hour < 0:
        raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
    if rate_per_hour == 0:
        return work_hours  # no hazard -> no checkpoints, on-demand makespan
    factor = 1.0 / rate_per_hour + policy.restart_hours
    return sum(
        factor * _expm1_or_inf(rate_per_hour * s)
        for s in _resolve_segments(work_hours, policy, segments)
    )


def expected_preemptions(
    work_hours: float,
    rate_per_hour: float,
    policy: CheckpointPolicy,
    segments: Optional[Sequence[float]] = None,
) -> float:
    """Closed-form expected preemption count over the whole run."""
    if rate_per_hour < 0:
        raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
    if rate_per_hour == 0:
        return 0.0
    return sum(
        _expm1_or_inf(rate_per_hour * s)
        for s in _resolve_segments(work_hours, policy, segments)
    )


# ---------------------------------------------------------------------------
# Layer 2: the analytic makespan distribution
# ---------------------------------------------------------------------------


def _grouped_segments(segments: Sequence[float]) -> List[Tuple[float, int]]:
    """Distinct segment lengths with multiplicities, in first-seen order.

    A run has at most two distinct lengths (``tau + c`` repeated, then
    the final write-free remainder), so grouping turns an O(#segments)
    CF product into O(2) complex powers.
    """
    grouped: List[Tuple[float, int]] = []
    for s in segments:
        if grouped and grouped[-1][0] == s:
            grouped[-1] = (s, grouped[-1][1] + 1)
        else:
            grouped.append((s, 1))
    return grouped


def _segment_excess_moments(
    s: float, rate: float, restart: float
) -> Tuple[float, float]:
    """(mean, variance) of one segment's *excess* time ``T_seg - s``.

    The excess is a geometric number ``K`` of failures (success
    probability ``p = e^{-lam s}``), each costing ``Z = X + R`` with
    ``X`` exponential truncated to ``[0, s)``. Closed-form conditional
    moments of the truncated exponential plus the compound-geometric
    identities ``E[T] = E[K] E[Z]`` and
    ``Var[T] = E[K] Var[Z] + Var[K] E[Z]^2`` give both moments without
    any integration. Saturates to inf (never to NaN) in degenerate
    regimes, which the distribution constructor treats as "never
    finishes".
    """
    lam_s = rate * s
    q = -math.expm1(-lam_s)  # failure probability per attempt
    if q <= 0.0:
        return 0.0, 0.0
    p = math.exp(-lam_s)
    mean_k = _expm1_or_inf(lam_s)  # q / p
    var_k = mean_k * (mean_k + 1.0)  # q / p^2
    mean_x = 1.0 / rate - s * p / q
    mean_x2 = (2.0 / rate**2 - p * (s * s + 2.0 * s / rate + 2.0 / rate**2)) / q
    mean_z = mean_x + restart
    mean_z2 = mean_x2 + 2.0 * restart * mean_x + restart * restart
    var_z = max(mean_z2 - mean_z * mean_z, 0.0)
    return mean_k * mean_z, mean_k * var_z + var_k * mean_z * mean_z


def _segment_excess_cf(
    omega: np.ndarray, s: float, rate: float, restart: float
) -> np.ndarray:
    """Characteristic function of one segment's excess time on ``omega``.

    With ``phi_X`` the CF of the truncated exponential failure wait, the
    compound-geometric excess has the exact CF
    ``p / (1 - q * e^{i omega R} * phi_X(omega))``.
    """
    lam_s = rate * s
    p = math.exp(-lam_s)
    q = -math.expm1(-lam_s)
    if q <= 0.0:
        return np.ones_like(omega, dtype=complex)
    i_omega = 1j * omega
    # phi_X(w) = (lam / (lam - iw)) * (1 - e^{-(lam - iw) s}) / (1 - e^{-lam s})
    phi_x = (rate / (rate - i_omega)) * (1.0 - np.exp(-(rate - i_omega) * s)) / q
    return p / (1.0 - q * np.exp(i_omega * restart) * phi_x)


class AnalyticMakespanDistribution:
    """The exact makespan distribution, no sampling (the serving path).

    The total makespan is ``T = sum(segments) + E`` where the excess
    ``E`` is a sum of independent per-segment compound-geometric terms.
    The constructor multiplies the per-segment excess CFs (grouped by
    distinct length), inverts the product with one ``numpy.fft.ifft`` on
    a ``grid_size``-point grid spanning ``[0, mean + TAIL_SIGMAS *
    std]`` of the excess (both from the exact moments), and keeps the
    resulting CDF. ``percentile``/``completion_probability`` then read
    the grid — microseconds per candidate, versus a full Monte Carlo.

    Degenerate regimes (the closed-form mean exceeds
    ``max_makespan_hours``, or the excess variance overflows: the job
    essentially never finishes) report ``inf`` percentiles and
    completion probability 0, matching what the Monte Carlo guards
    report as all-abandoned. Zero hazard is an exact point mass at
    ``work_hours``.
    """

    GRID_SIZE = 4096
    TAIL_SIGMAS = 12.0

    def __init__(
        self,
        work_hours: float,
        rate_per_hour: float,
        policy: CheckpointPolicy,
        segments: Optional[Sequence[float]] = None,
        grid_size: int = GRID_SIZE,
        max_makespan_hours: float = DEFAULT_MAX_MAKESPAN_HOURS,
    ) -> None:
        if rate_per_hour < 0:
            raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
        if grid_size < 16:
            raise ValueError(f"grid_size must be >= 16, got {grid_size}")
        self.work_hours = work_hours
        self.rate_per_hour = rate_per_hour
        # Memoized reads: one distribution instance is shared by every
        # warm plan via the risk cache, so repeated percentile/deadline
        # lookups should cost a dict probe, not a grid search.
        self._percentiles: Dict[float, float] = {}
        self._completions: Dict[float, float] = {}
        self._point: Optional[float] = None
        self._degenerate = False
        self._start = 0.0
        self._dt = 0.0
        self._cdf: Optional[np.ndarray] = None
        if rate_per_hour == 0:
            # Matches the closed form: no hazard, no checkpoints.
            self._mean = work_hours
            self._point = work_hours
            return
        segs = _resolve_segments(work_hours, policy, segments)
        if not segs:
            self._mean = 0.0
            self._point = 0.0
            return
        self._mean = expected_makespan_hours(
            work_hours, rate_per_hour, policy, segments=segs
        )
        # A regime the Monte Carlo guards would abandon wholesale (the
        # expectation alone exceeds the time cap) is reported the same
        # way here: inf percentiles, completion probability 0.
        if not self._mean <= max_makespan_hours:
            self._degenerate = True
            return
        restart = policy.restart_hours
        grouped = _grouped_segments(segs)
        mean_exc = 0.0
        var_exc = 0.0
        for s, count in grouped:
            m, v = _segment_excess_moments(s, rate_per_hour, restart)
            mean_exc += count * m
            var_exc += count * v
        if not math.isfinite(var_exc):
            self._degenerate = True
            return
        t_min = math.fsum(segs)
        if var_exc == 0.0 and mean_exc == 0.0:
            self._point = t_min
            return
        span = mean_exc + self.TAIL_SIGMAS * math.sqrt(var_exc)
        if not (span > 0.0 and math.isfinite(span)):
            self._degenerate = True
            return
        dt = span / grid_size
        # DFT frequency layout (upper half negative): phi(-w) = conj
        # phi(w), so the inversion below stays Hermitian and real.
        omega = 2.0 * math.pi * np.fft.fftfreq(grid_size, d=dt)
        phi = np.ones(grid_size, dtype=complex)
        for s, count in grouped:
            phi *= _segment_excess_cf(omega, s, rate_per_hour, restart) ** count
        # fft (e^{-i omega t}), not ifft: phi is E[e^{+i omega T}], so
        # recovering the density needs the conjugate transform.
        pmf = np.fft.fft(phi).real / grid_size
        np.maximum(pmf, 0.0, out=pmf)  # clip FFT ringing
        cdf = np.cumsum(pmf)
        total = cdf[-1]
        if not (total > 0.0 and math.isfinite(total)):
            self._degenerate = True
            return
        cdf /= total
        self._start = t_min
        self._dt = dt
        self._cdf = cdf

    @property
    def mean_hours(self) -> float:
        """The closed-form expectation (exact, not read off the grid)."""
        return self._mean

    def percentile(self, q: float) -> float:
        """The q-quantile of the makespan, ``q`` in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        if self._degenerate:
            return math.inf
        if self._point is not None:
            return self._point
        cached = self._percentiles.get(q)
        if cached is None:
            idx = int(np.searchsorted(self._cdf, q, side="left"))
            idx = min(idx, len(self._cdf) - 1)
            cached = self._start + idx * self._dt
            self._percentiles[q] = cached
        return cached

    @property
    def p50_hours(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_hours(self) -> float:
        return self.percentile(0.95)

    def completion_probability(self, deadline_hours: Optional[float]) -> float:
        """P(makespan <= deadline); 1.0 when there is no deadline —
        every run "finishes in time"."""
        if deadline_hours is None:
            return 1.0
        if self._degenerate:
            return 0.0
        if self._point is not None:
            return 1.0 if deadline_hours >= self._point else 0.0
        if deadline_hours < self._start:
            return 0.0
        cached = self._completions.get(deadline_hours)
        if cached is None:
            cdf = self._cdf
            pos = (deadline_hours - self._start) / self._dt
            idx = int(pos)
            if idx >= len(cdf) - 1:
                value = float(cdf[-1])
            else:  # linear interpolation between the bracketing grid points
                frac = pos - idx
                value = float(cdf[idx] + frac * (cdf[idx + 1] - cdf[idx]))
            cached = min(1.0, value)
            self._completions[deadline_hours] = cached
        return cached


# ---------------------------------------------------------------------------
# Layer 3: batched Monte Carlo
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MakespanDistribution:
    """Monte Carlo makespan samples (sorted) with summary accessors.

    ``mean_hours`` and ``mean_preemptions`` average over *completed*
    trials only: an abandoned (``inf``) trial records the guard
    thresholds, which are an artifact of the cutoff rather than a
    statistic of the run — folding them in would report every heavy
    regime as ``inf``/guard-biased. Abandoned trials are reported
    separately via ``abandoned_trials``; ``mean_hours_all`` keeps the
    every-sample mean (``inf`` whenever any trial was abandoned) for
    consumers that want the unconditional semantics.
    """

    samples: Tuple[float, ...]  # ascending
    mean_preemptions: float
    abandoned_trials: int = 0

    def __post_init__(self) -> None:
        if not self.samples:
            raise ValueError("MakespanDistribution needs at least one sample")

    @property
    def trials(self) -> int:
        return len(self.samples)

    @property
    def completed_trials(self) -> int:
        return len(self.samples) - self.abandoned_trials

    @property
    def mean_hours(self) -> float:
        """Mean over completed trials; 0.0 when every trial was abandoned
        (mirroring ``mean_preemptions``) — check ``abandoned_trials``."""
        completed = self.completed_trials
        if completed == 0:
            return 0.0
        # samples are sorted ascending, so the completed (finite) trials
        # are exactly the first `completed` entries.
        return sum(self.samples[:completed]) / completed

    @property
    def mean_hours_all(self) -> float:
        """Mean over all samples: ``inf`` if any trial was abandoned."""
        return sum(self.samples) / len(self.samples)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile, ``q`` in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"q must be in (0, 1], got {q}")
        rank = max(1, math.ceil(q * len(self.samples)))
        return self.samples[rank - 1]

    @property
    def p50_hours(self) -> float:
        return self.percentile(0.50)

    @property
    def p95_hours(self) -> float:
        return self.percentile(0.95)

    def completion_probability(self, deadline_hours: Optional[float]) -> float:
        """Fraction of trials finishing within the deadline (1.0 when
        there is no deadline — every run "finishes in time")."""
        if deadline_hours is None:
            return 1.0
        return sum(1 for s in self.samples if s <= deadline_hours) / len(self.samples)


def _exponential_waits(
    rng: np.random.Generator, rows: int, cols: int, rate: float
) -> np.ndarray:
    """A ``(rows, cols)`` block of exponential preemption waits via the
    inverse CDF, scheduled through the repo's tensor layer: uniforms come
    from the seeded numpy stream (the documented part of the contract),
    the ``-log(1 - u) / rate`` transform runs as tensor ops."""
    uniforms = rng.random((rows, cols))
    return (-(Tensor(1.0 - uniforms).log()) / rate).numpy()


def _attempt_block(rate: float, seg_hours: float, rows: int) -> int:
    """Attempt columns to draw per block: ~2x the expected geometric
    attempt count ``e^{lam s}`` so most pairs resolve in one draw,
    clamped by the attempt guard, the column ceiling, and the per-draw
    sample budget. Pure function of (rate, seg_hours, rows), which keeps
    the stream consumption — and therefore the samples — deterministic."""
    expected = math.exp(min(rate * seg_hours, 32.0))
    block = min(
        float(MAX_ATTEMPTS_PER_SEGMENT),
        float(MAX_BLOCK_ATTEMPTS),
        max(1.0, math.ceil(2.0 * expected)),
    )
    budget = max(1, MAX_BLOCK_SAMPLES // max(rows, 1))
    return max(1, min(int(block), budget))


class SpotSimulator:
    """Seeded, batched Monte Carlo over the segment process.

    Sampling is vectorized over all (trial, segment) pairs at once:
    every pair needs a geometric number of attempts, so each round draws
    a rectangular block of attempts for every still-unresolved pair,
    resolves successes with a survivor mask, and re-draws only the
    survivors. The guard semantics of the scalar process are preserved
    exactly — a trial is abandoned iff some segment fails at attempt
    ``MAX_ATTEMPTS_PER_SEGMENT`` or some failure pushes cumulative
    elapsed time (in segment order) past ``max_makespan_hours``; the
    time-cap check is applied to the chronological prefix sums after
    sampling, which reproduces the scalar "check after each failure"
    rule because elapsed time only grows.

    Deterministic: the same ``(seed, trials, inputs)`` always produces
    the same distribution (one ``numpy.random.default_rng(seed)`` stream,
    consumed in ascending (trial, segment) pair order per round), and
    simulation happens in plan post-processing (never inside the
    parallel trace sweep), so ``--jobs`` cannot change a plan.
    """

    def __init__(
        self,
        trials: int = DEFAULT_TRIALS,
        seed: int = 0,
        max_makespan_hours: float = DEFAULT_MAX_MAKESPAN_HOURS,
    ) -> None:
        if trials < 1:
            raise ValueError(f"trials must be >= 1, got {trials}")
        self.trials = trials
        self.seed = seed
        self.max_makespan_hours = max_makespan_hours

    def simulate(
        self,
        work_hours: float,
        rate_per_hour: float,
        policy: CheckpointPolicy,
        seed: Optional[int] = None,
        segments: Optional[Sequence[float]] = None,
    ) -> MakespanDistribution:
        """Sample ``trials`` makespans; ``seed`` overrides the default."""
        if rate_per_hour < 0:
            raise ValueError(f"rate_per_hour must be >= 0, got {rate_per_hour}")
        if rate_per_hour == 0:
            # Matches the closed form: no hazard, no checkpoints.
            return MakespanDistribution(
                samples=(work_hours,) * self.trials, mean_preemptions=0.0
            )
        segs = _resolve_segments(work_hours, policy, segments)
        if not segs:
            return MakespanDistribution(
                samples=(0.0,) * self.trials, mean_preemptions=0.0
            )
        rng = np.random.default_rng(self.seed if seed is None else seed)
        restart = policy.restart_hours
        n, m = self.trials, len(segs)
        seg_arr = np.asarray(segs, dtype=float)
        # Per-(trial, segment) state, flat C-order views for pair updates.
        fail_time = np.zeros((n, m))
        fail_count = np.zeros((n, m), dtype=np.int64)
        attempts = np.zeros(n * m, dtype=np.int64)
        resolved = np.zeros((n, m), dtype=bool)
        attempt_abandoned = np.zeros(n, dtype=bool)
        ft, fc, res = fail_time.ravel(), fail_count.ravel(), resolved.ravel()
        seg_flat = np.tile(seg_arr, n)
        while True:
            pending = np.flatnonzero(~res)
            if pending.size == 0:
                break
            s_p = seg_flat[pending]
            block = _attempt_block(rate_per_hour, float(s_p.max()), pending.size)
            waits = _exponential_waits(rng, pending.size, block, rate_per_hour)
            success_mask = waits >= s_p[:, None]
            step = np.where(success_mask, 0.0, waits + restart)
            cum = np.cumsum(step, axis=1)
            first = np.where(
                success_mask.any(axis=1), success_mask.argmax(axis=1), block
            )
            # Attempts still allowed before the guard (the attempt *at*
            # the threshold may still succeed; a failure there abandons).
            limit = MAX_ATTEMPTS_PER_SEGMENT - attempts[pending]
            succeeded = first < np.minimum(limit, block)
            exhausted = (limit <= block) & ~succeeded
            surviving = ~succeeded & ~exhausted
            done = pending[succeeded]
            ft[done] += cum[succeeded, first[succeeded]]
            fc[done] += first[succeeded]
            res[done] = True
            dead = pending[exhausted]
            if dead.size:
                attempt_abandoned[dead // m] = True
                # An abandoned trial stops sampling its remaining pairs.
                resolved[attempt_abandoned] = True
            alive = pending[surviving]
            if alive.size:
                ft[alive] += cum[surviving, -1]
                fc[alive] += block
                attempts[alive] += block
        # Chronological time-cap guard: cumulative elapsed right after the
        # last failure of segment k is (all earlier segments' full times)
        # + (segment k's failure costs). Elapsed only grows, so "some
        # failure pushed past the cap" <=> the max of these exceeds it.
        totals = fail_time + seg_arr[None, :]
        prefix = np.cumsum(totals, axis=1) - totals
        cap_abandoned = (
            (fail_count > 0) & (prefix + fail_time > self.max_makespan_hours)
        ).any(axis=1)
        abandoned_mask = cap_abandoned | attempt_abandoned
        elapsed = totals.sum(axis=1)
        elapsed[abandoned_mask] = np.inf
        abandoned = int(abandoned_mask.sum())
        completed = n - abandoned
        preemptions = int(fail_count.sum(axis=1)[~abandoned_mask].sum())
        return MakespanDistribution(
            samples=tuple(sorted(elapsed.tolist())),
            mean_preemptions=(preemptions / completed if completed else 0.0),
            abandoned_trials=abandoned,
        )
