"""Spot scenarios: the checkpoint-cadence extension of the cluster space.

A :class:`SpotScenario` adds the ``checkpoint_minutes`` axis to
:class:`~repro.cluster.scenario.ClusterScenario`. Like the cluster axes,
the checkpoint cadence does not affect the per-device step trace — it is
pure post-processing over the replica trace — so the inherited
:meth:`~repro.scenarios.scenario.Scenario.key` excludes it and every
cadence shares the cached replica trace. Sweeping checkpoint intervals
therefore adds **zero** new simulations; spot-level identity for derived
results lives in :meth:`SpotScenario.spot_key`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from ..gpu.multigpu import Interconnect
from ..gpu.parallelism import DATA_PARALLEL, ParallelismStrategy, get_strategy
from ..gpu.specs import GPUSpec
from ..scenarios import ScenarioGrid, freeze_overrides
from ..scenarios.scenario import ModelConfig
from ..cluster.scenario import ClusterScenario
from .checkpoint import DEFAULT_INTERVAL_MINUTES


@dataclass(frozen=True)
class SpotScenario(ClusterScenario):
    """One hashable point of the (cluster scenario x checkpoint cadence)
    space."""

    checkpoint_minutes: float = DEFAULT_INTERVAL_MINUTES

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.checkpoint_minutes > 0:  # also rejects NaN
            raise ValueError(
                f"checkpoint_minutes must be positive, got {self.checkpoint_minutes}"
            )

    def spot_key(self) -> Tuple:
        """Spot-level identity: the cluster key plus the cadence axis."""
        return self.cluster_key() + (self.checkpoint_minutes,)

    def label(self, include_gpu: bool = False, include_seq_len: bool = False) -> str:
        base = super().label(include_gpu=include_gpu, include_seq_len=include_seq_len)
        return f"{base}_ck{self.checkpoint_minutes:g}m"

    def qualified_label(self) -> str:
        return f"{super().qualified_label()}_ck{self.checkpoint_minutes:g}m"


def spot_product(
    models: Sequence[Union[str, ModelConfig]],
    gpus: Sequence[Union[str, GPUSpec]],
    batch_sizes: Sequence[int] = (1,),
    datasets: Sequence[Optional[str]] = (None,),
    seq_lens: Sequence[Optional[int]] = (None,),
    dense: Sequence[bool] = (False,),
    num_gpus: Sequence[int] = (1,),
    interconnects: Sequence[Union[str, Interconnect]] = ("nvlink",),
    strategies: Sequence[Union[str, ParallelismStrategy]] = (DATA_PARALLEL,),
    checkpoint_minutes: Sequence[float] = (DEFAULT_INTERVAL_MINUTES,),
    overrides=(),
) -> ScenarioGrid:
    """Cartesian product over the spot space, mirroring
    :func:`~repro.cluster.scenario.cluster_product` with the cadence axis
    innermost — every cadence of one cluster point is consecutive and all
    of them share the point's single replica simulation. Strategy/size
    combinations the layout cannot host are omitted, as in
    ``cluster_product``."""
    frozen = freeze_overrides(overrides)
    resolved = [get_strategy(strategy) for strategy in strategies]
    return ScenarioGrid(
        SpotScenario(
            model=model,
            gpu=gpu,
            batch_size=batch,
            seq_len=seq_len,
            dense=is_dense,
            dataset=dataset,
            overrides=frozen,
            num_gpus=n,
            interconnect=link,
            strategy=strategy,
            checkpoint_minutes=minutes,
        )
        for model in models
        for dataset in datasets
        for seq_len in seq_lens
        for is_dense in dense
        for batch in batch_sizes
        for gpu in gpus
        for strategy in resolved
        for n in num_gpus
        for link in interconnects
        for minutes in checkpoint_minutes
        if strategy.fits(n)
    )
