"""Structured observability for the planning stack.

Dependency-free spans, metrics, exporters and run manifests, threaded
through the scenario engine, both planners and the three CLIs:

* :class:`Tracer` / :class:`Span` — nested timed phases with a
  context-manager API and a process-global default (disabled until a
  CLI's ``--telemetry`` flag turns it on), plus deterministic
  reassembly of process-pool workers' spans;
* :class:`MetricsRegistry` — named counters/gauges/histograms; the
  simulation cache's ``CacheStats`` counters are stored here now, and
  fetch/memoize latencies land in per-source histograms;
* exporters — a JSONL event writer (``--telemetry-out``), the
  ``--json`` payloads' flag-gated ``"telemetry"`` block, and the
  human-readable phase tree printed under ``--telemetry``;
* run manifests — version + args + grid digest + cache provenance +
  per-phase wall-clock, the reproducibility record for benchmark
  trajectories and (eventually) service request logs;
* a schema validator (:func:`validate_event`/:func:`validate_file`)
  shared by the tests and the CI smoke job.

With every flag off the subsystem is inert: the default tracer hands
out no-op spans, and the CLIs' output stays byte-identical to the
pre-telemetry contract.
"""

from .cli import (
    add_telemetry_arguments,
    begin_telemetry,
    finish_telemetry,
    telemetry_enabled,
)
from .export import metric_events, telemetry_block, write_events
from .manifest import build_manifest, grid_digest, repo_version
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, merge_snapshots
from .schema import SCHEMA_VERSION, validate_event, validate_file
from .tracer import (
    Span,
    Tracer,
    default_tracer,
    reset_default_tracer,
    resolve_tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA_VERSION",
    "Span",
    "Tracer",
    "add_telemetry_arguments",
    "begin_telemetry",
    "build_manifest",
    "default_tracer",
    "finish_telemetry",
    "grid_digest",
    "merge_snapshots",
    "metric_events",
    "repo_version",
    "reset_default_tracer",
    "resolve_tracer",
    "telemetry_block",
    "telemetry_enabled",
    "validate_event",
    "validate_file",
    "write_events",
]
