"""Structured observability for the planning stack.

Dependency-free spans, metrics, exporters, run manifests — and the
consume side that turns their JSONL into answers: an append-only
:class:`RunStore`, a critical-path/self-time analyzer
(``python -m repro.telemetry.analyze``) and a cross-run diff with a CI
regression gate (``python -m repro.telemetry.compare``) — threaded
through the scenario engine, both planners and the three CLIs:

* :class:`Tracer` / :class:`Span` — nested timed phases with a
  context-manager API and a process-global default (disabled until a
  CLI's ``--telemetry`` flag turns it on), plus deterministic
  reassembly of process-pool workers' spans;
* :class:`MetricsRegistry` — named counters/gauges/histograms; the
  simulation cache's ``CacheStats`` counters are stored here now, and
  fetch/memoize latencies land in per-source histograms;
* exporters — a JSONL event writer (``--telemetry-out``), the
  ``--json`` payloads' flag-gated ``"telemetry"`` block, and the
  human-readable phase tree printed under ``--telemetry``;
* run manifests — version + args + grid digest + cache provenance +
  per-phase wall-clock, the reproducibility record for benchmark
  trajectories and (eventually) service request logs;
* a schema validator (:func:`validate_event`/:func:`validate_file`,
  raising :class:`SchemaError` with the offending line and key) shared
  by the tests and the CI smoke job;
* the run store + analyzers — :class:`RunStore` (append-only index of
  validated runs, ``--run-store DIR`` / ``$REPRO_RUN_STORE``),
  :func:`analyze_run` (span-tree critical path, per-span self-time,
  cache-efficiency audit, bucket-estimated latency percentiles) and
  :func:`compare_runs` (per-phase deltas with a noise-aware regression
  verdict — the CI perf gate).

With every flag off the subsystem is inert: the default tracer hands
out no-op spans, and the CLIs' output stays byte-identical to the
pre-telemetry contract.
"""

# The analyzer CLIs (`python -m repro.telemetry.analyze` / `.compare`)
# are deliberately NOT imported here — mirroring how `repro.spot` leaves
# `repro.spot.plan` to runpy — so `-m` execution stays warning-free.
# Import their library surface via the submodules:
#   from repro.telemetry.analyze import analyze_run, critical_path, ...
#   from repro.telemetry.compare import compare_runs, phase_deltas, ...
from .cli import (
    add_telemetry_arguments,
    begin_telemetry,
    finish_telemetry,
    telemetry_enabled,
)
from .export import metric_events, telemetry_block, write_events
from .manifest import build_manifest, grid_digest, repo_version, version_info
from .metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    quantile_from_buckets,
)
from .runstore import RunRecord, RunStore, load_run, resolve_run_store
from .schema import SCHEMA_VERSION, SchemaError, validate_event, validate_file
from .tracer import (
    Span,
    Tracer,
    default_tracer,
    reset_default_tracer,
    resolve_tracer,
)

__all__ = [
    "BUCKET_BOUNDS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunRecord",
    "RunStore",
    "SCHEMA_VERSION",
    "SchemaError",
    "Span",
    "Tracer",
    "add_telemetry_arguments",
    "begin_telemetry",
    "build_manifest",
    "default_tracer",
    "finish_telemetry",
    "grid_digest",
    "load_run",
    "merge_snapshots",
    "metric_events",
    "quantile_from_buckets",
    "repo_version",
    "reset_default_tracer",
    "resolve_run_store",
    "resolve_tracer",
    "telemetry_block",
    "telemetry_enabled",
    "validate_event",
    "validate_file",
    "version_info",
    "write_events",
]
