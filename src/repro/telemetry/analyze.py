"""Profile one telemetry run: critical path, self-time, cache audit.

The analyzer is the consume side of PR 7's span/metric/manifest events,
answering the questions a JSONL file alone cannot:

* **Per-span self-time** — wall-clock minus the wall-clock of the
  span's children (reconstructed from the ``parent`` links), so a fat
  parent phase that merely contains an expensive child stops looking
  hot. The identity ``self == duration - sum(children)`` is exact by
  construction and pinned by the analyzer-math tests.
* **Critical path** — the root-to-leaf chain maximizing cumulative
  duration (dynamic programming over the span forest, not a greedy
  descent), i.e. the single chain of nested phases that explains the
  most wall-clock.
* **Phase breakdown** — the manifest's per-phase wall-clock table.
* **Cache-efficiency audit** — derived rates over the ``cache.*`` /
  ``store.*`` / ``risk.*`` counters: any-tier vs memory-only hit rate
  (same semantics as ``CacheStats``), simulations per lookup, risk
  memoization hit rate, store read/write/corruption traffic.
* **Latency percentiles** — p50/p95 estimates from the histograms'
  log-spaced buckets (:func:`~repro.telemetry.metrics.quantile_from_buckets`).

Usage::

    python -m repro.telemetry.analyze events.jsonl
    python -m repro.telemetry.analyze latest --store runs/ --top 15
    python -m repro.telemetry.analyze latest:repro.spot.plan --json

``RUN`` is a JSONL file path or a run-store reference (``latest``,
``latest:<command>``, or a run-id prefix); ``--store`` defaults to
``$REPRO_RUN_STORE``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .metrics import quantile_from_buckets
from .runstore import resolve_run_store, load_run

PERCENTILES = (0.5, 0.95)


# ---------------------------------------------------------------------------
# Span forest
# ---------------------------------------------------------------------------
@dataclass
class SpanNode:
    """One span event rebuilt into the tree, with its children."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_s: float
    duration_s: float
    attrs: Dict[str, object] = field(default_factory=dict)
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def child_seconds(self) -> float:
        return sum(child.duration_s for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Wall-clock not explained by any child: duration minus the sum
        of child durations. Exact, unclamped — overlapping worker spans
        adopted under one parent can push it negative, which is itself
        a signal (the children ran concurrently)."""
        return self.duration_s - self.child_seconds


def split_events(
    events: Sequence[Dict[str, object]],
) -> Tuple[List[Dict[str, object]], List[Dict[str, object]], Optional[Dict[str, object]]]:
    """``(spans, metrics, manifest)`` from a decoded event list; the
    manifest is ``None`` when absent (e.g. a hand-built span file)."""
    spans = [e for e in events if e.get("type") == "span"]
    metrics = [e for e in events if e.get("type") == "metric"]
    manifests = [e for e in events if e.get("type") == "manifest"]
    return spans, metrics, manifests[0] if manifests else None


def build_span_forest(span_events: Sequence[Dict[str, object]]) -> List[SpanNode]:
    """Rebuild the span tree(s) from flat events via the parent links;
    roots (and every child list) stay in event order, which is start
    order for tracer exports. Spans referencing an unknown parent
    become roots rather than vanishing; the schema does not force ids
    unique, so events reusing a seen id are dropped (first wins) rather
    than double-counted."""
    nodes: Dict[int, SpanNode] = {}
    for event in span_events:
        span_id = int(event["id"])
        if span_id in nodes:
            continue
        nodes[span_id] = SpanNode(
            name=str(event["name"]),
            span_id=span_id,
            parent_id=event.get("parent"),
            start_s=float(event.get("start_s", 0.0)),
            duration_s=float(event.get("duration_s") or 0.0),
            attrs=dict(event.get("attrs") or {}),
        )
    roots: List[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.parent_id) if node.parent_id is not None else None
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


def _walk(roots: Sequence[SpanNode]):
    stack = list(reversed(list(roots)))
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def self_time_table(roots: Sequence[SpanNode]) -> List[Dict[str, object]]:
    """Per-span-name totals — count, total wall, total self — sorted by
    self-time descending (ties by name, so the table is deterministic)."""
    table: Dict[str, Dict[str, float]] = {}
    for node in _walk(roots):
        row = table.setdefault(node.name, {"count": 0, "total_s": 0.0, "self_s": 0.0})
        row["count"] += 1
        row["total_s"] += node.duration_s
        row["self_s"] += node.self_seconds
    total_self = sum(row["self_s"] for row in table.values())
    rows = [
        {
            "name": name,
            "count": int(row["count"]),
            "total_s": row["total_s"],
            "self_s": row["self_s"],
            "self_fraction": row["self_s"] / total_self if total_self > 0 else 0.0,
        }
        for name, row in table.items()
    ]
    rows.sort(key=lambda r: (-r["self_s"], r["name"]))
    return rows


def critical_path(roots: Sequence[SpanNode]) -> List[SpanNode]:
    """The root-to-leaf chain with the largest cumulative duration,
    computed by dynamic programming over the forest (a greedy descent
    can miss a deep expensive chain hiding under a cheap child). The
    post-order walk is iterative, so 1000+-deep span chains don't hit
    the interpreter recursion limit. Empty forest -> empty path."""
    best: Dict[int, Tuple[float, List[SpanNode]]] = {}
    for root in roots:
        stack: List[Tuple[SpanNode, bool]] = [(root, False)]
        while stack:
            node, ready = stack.pop()
            if node.span_id in best:
                continue
            if not ready:
                stack.append((node, True))
                stack.extend((child, False) for child in node.children)
                continue
            tail_cost, tail = 0.0, []
            for child in node.children:
                cost, path = best[child.span_id]
                if cost > tail_cost:
                    tail_cost, tail = cost, path
            best[node.span_id] = (node.duration_s + tail_cost, [node] + tail)
    top_cost, top_path = 0.0, []
    for root in roots:
        cost, path = best[root.span_id]
        if cost > top_cost:
            top_cost, top_path = cost, path
    return top_path


# ---------------------------------------------------------------------------
# Metrics views
# ---------------------------------------------------------------------------
def _counters(metric_events: Sequence[Dict[str, object]]) -> Dict[str, int]:
    return {
        str(e["name"]): int(e["value"])
        for e in metric_events
        if e.get("kind") == "counter"
    }


def cache_audit(metric_events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """Derived cache-efficiency rates from the run's counters. Rate
    semantics match ``CacheStats`` exactly: *any-tier* hit rate counts
    disk hits as hits (served without simulating), *memory* hit rate
    does not, both over the same ``lookups`` denominator."""
    counters = _counters(metric_events)
    hits = counters.get("cache.hits", 0)
    disk_hits = counters.get("cache.disk_hits", 0)
    misses = counters.get("cache.misses", 0)
    simulations = counters.get("cache.simulations", 0)
    risk_hits = counters.get("cache.risk_hits", 0)
    risk_misses = counters.get("cache.risk_misses", 0)
    lookups = hits + disk_hits + misses
    risk_lookups = risk_hits + risk_misses
    return {
        "lookups": lookups,
        "hits": hits,
        "disk_hits": disk_hits,
        "misses": misses,
        "simulations": simulations,
        "hit_rate": (hits + disk_hits) / lookups if lookups else 0.0,
        "memory_hit_rate": hits / lookups if lookups else 0.0,
        "simulations_per_lookup": simulations / lookups if lookups else 0.0,
        "risk_hits": risk_hits,
        "risk_misses": risk_misses,
        "risk_hit_rate": risk_hits / risk_lookups if risk_lookups else 0.0,
        "store_reads": counters.get("store.read_hits", 0)
        + counters.get("store.read_misses", 0),
        "store_writes": counters.get("store.writes", 0),
        "store_corrupt_entries": counters.get("store.corrupt_entries", 0),
    }


def latency_percentiles(
    metric_events: Sequence[Dict[str, object]],
    percentiles: Sequence[float] = PERCENTILES,
) -> Dict[str, Dict[str, object]]:
    """Per-histogram summaries with bucket-estimated percentiles, keyed
    by metric name (sorted). Histograms without buckets (pre-bucket
    files) report ``None`` percentiles; empty histograms are skipped."""
    summaries: Dict[str, Dict[str, object]] = {}
    for event in metric_events:
        if event.get("kind") != "histogram":
            continue
        count = int(event.get("count") or 0)
        if not count:
            continue
        total = float(event.get("sum") or 0.0)
        summary: Dict[str, object] = {
            "count": count,
            "mean_s": total / count,
            "min_s": event.get("min"),
            "max_s": event.get("max"),
        }
        for q in percentiles:
            summary[f"p{int(q * 100)}_s"] = quantile_from_buckets(
                event.get("buckets") or [], count, event.get("min"),
                event.get("max"), q,
            )
        summaries[str(event["name"])] = summary
    return dict(sorted(summaries.items()))


# ---------------------------------------------------------------------------
# The profile
# ---------------------------------------------------------------------------
def analyze_run(events: Sequence[Dict[str, object]]) -> Dict[str, object]:
    """The full profile of one run as a JSON-safe structure."""
    span_events, metric_events, manifest = split_events(events)
    roots = build_span_forest(span_events)
    path = critical_path(roots)
    return {
        "command": manifest.get("command") if manifest else None,
        "version": manifest.get("version") if manifest else None,
        "version_source": manifest.get("version_source") if manifest else None,
        "grid_digest": manifest.get("grid_digest") if manifest else None,
        "spans": len(span_events),
        "self_time": self_time_table(roots),
        "critical_path": [
            {"name": node.name, "duration_s": node.duration_s,
             "self_s": node.self_seconds}
            for node in path
        ],
        "critical_path_seconds": path[0].duration_s if path else 0.0,
        "phases": dict(sorted((manifest.get("phases") or {}).items()))
        if manifest else {},
        "cache": cache_audit(metric_events),
        "latency": latency_percentiles(metric_events),
    }


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.3f} ms" if seconds < 1.0 else f"{seconds:.3f} s"


def render_profile(profile: Dict[str, object], label: str, top: int = 10) -> str:
    """The human-readable profile (the ``analyze`` CLI's default)."""
    lines: List[str] = []
    header = f"== run {label}"
    if profile.get("command"):
        header += f" · {profile['command']}"
    if profile.get("version"):
        header += f" · {profile['version']} ({profile.get('version_source')})"
    lines.append(header + " ==")

    rows = profile["self_time"][:top]
    if rows:
        lines.append("")
        lines.append(f"-- top self-time spans ({len(rows)}/{len(profile['self_time'])}) --")
        lines.append(f"{'span':<34} {'count':>6} {'total':>12} {'self':>12} {'self%':>7}")
        for row in rows:
            lines.append(
                f"{row['name']:<34} {row['count']:>6} {_ms(row['total_s']):>12} "
                f"{_ms(row['self_s']):>12} {row['self_fraction'] * 100:>6.1f}%"
            )

    path = profile["critical_path"]
    if path:
        lines.append("")
        lines.append(
            f"-- critical path ({_ms(profile['critical_path_seconds'])} end to end) --"
        )
        for depth, hop in enumerate(path):
            lines.append(
                f"{'  ' * depth}{hop['name']}  {_ms(hop['duration_s'])}"
                f" (self {_ms(hop['self_s'])})"
            )

    if profile["phases"]:
        lines.append("")
        lines.append("-- phases (manifest wall-clock) --")
        for name, seconds in profile["phases"].items():
            lines.append(f"{name:<40} {_ms(float(seconds)):>12}")

    cache = profile["cache"]
    lines.append("")
    lines.append("-- cache audit --")
    lines.append(
        f"lookups {cache['lookups']} · any-tier hit rate "
        f"{cache['hit_rate'] * 100:.1f}% · memory {cache['memory_hit_rate'] * 100:.1f}%"
        f" · simulations {cache['simulations']}"
        f" ({cache['simulations_per_lookup']:.2f}/lookup)"
    )
    lines.append(
        f"risk {cache['risk_hits']} hits / {cache['risk_misses']} misses "
        f"({cache['risk_hit_rate'] * 100:.1f}%) · store {cache['store_reads']} reads, "
        f"{cache['store_writes']} writes, {cache['store_corrupt_entries']} corrupt"
    )

    if profile["latency"]:
        lines.append("")
        lines.append("-- latency percentiles (bucket estimates) --")
        for name, summary in profile["latency"].items():
            lines.append(
                f"{name:<38} n={summary['count']:<6} p50 {_ms(summary.get('p50_s')):>12}"
                f"  p95 {_ms(summary.get('p95_s')):>12}  max {_ms(summary.get('max_s')):>12}"
            )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _print_clipped(text: str, exit_code: int) -> int:
    """Print a report, tolerating a closed stdout (``analyze ... |
    head``): a broken pipe keeps the intended exit code instead of a
    traceback, with stdout parked on devnull so interpreter shutdown
    doesn't re-raise on flush."""
    try:
        print(text)
    except BrokenPipeError:
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.analyze",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("run",
                        help="a --telemetry-out JSONL file, or a run-store "
                             "reference: 'latest', 'latest:<command>', or a "
                             "run-id prefix")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store directory (default: $REPRO_RUN_STORE)")
    parser.add_argument("--top", type=int, default=10,
                        help="self-time rows in the text profile (default: 10)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the profile as JSON instead of text")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    store = resolve_run_store(args.store)
    try:
        label, events = load_run(args.run, store=store)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    profile = analyze_run(events)
    if args.as_json:
        text = json.dumps({"run": label, **profile}, indent=2, allow_nan=False)
    else:
        text = render_profile(profile, label, top=args.top)
    return _print_clipped(text, 0)


if __name__ == "__main__":
    raise SystemExit(main())
