"""The CLIs' shared telemetry wiring.

Every traced CLI (``repro.experiments.report``, ``repro.cluster.plan``,
``repro.spot.plan``) speaks the same three flags:

* ``--telemetry`` — enable tracing and print the human-readable phase
  tree (to stderr, so ``--json`` stdout stays machine-parseable);
* ``--telemetry-out FILE`` — enable tracing and additionally write the
  JSONL event log (spans, metrics, manifest) to ``FILE``;
* ``--run-store DIR`` — enable tracing and ingest the run's events into
  the append-only run store at ``DIR`` (resolution mirrors
  ``--cache-dir``: the flag beats ``$REPRO_RUN_STORE`` beats off), so
  ``python -m repro.telemetry.analyze``/``compare`` can consume it.

Any of these also unlocks the ``"telemetry"`` block in the CLI's
``--json`` payload; with all of them absent (and ``$REPRO_RUN_STORE``
unset) the CLIs' output is byte-identical to the pre-telemetry
contract — the golden-file tests pin that down.

Usage in a CLI ``main``::

    add_telemetry_arguments(parser)
    ...
    tracer = begin_telemetry(args)          # None when disabled
    ... run the plan ...
    block = finish_telemetry(args, "repro.spot.plan", cache, grid=grid)
    if block is not None and args.as_json:
        payload["telemetry"] = block
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, Optional

from .export import metric_events, telemetry_block, write_events
from .manifest import build_manifest, grid_digest
from .metrics import merge_snapshots
from .runstore import resolve_run_store
from .tracer import Tracer, default_tracer


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability knobs every traced CLI exposes."""
    parser.add_argument("--telemetry", action="store_true",
                        help="trace the run and print a per-phase wall-clock "
                             "tree to stderr (--json output gains a 'telemetry' "
                             "block; without telemetry flags output is "
                             "byte-identical to untraced runs)")
    parser.add_argument("--telemetry-out", default=None, metavar="FILE",
                        help="also write the run's span/metric/manifest events "
                             "as JSONL to FILE (implies tracing)")
    parser.add_argument("--run-store", default=None, metavar="DIR",
                        help="ingest the run's telemetry into the append-only "
                             "run store at DIR for repro.telemetry.analyze/"
                             "compare (implies tracing; default: "
                             "$REPRO_RUN_STORE if set, else no recording)")


def telemetry_enabled(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "telemetry", False)
        or getattr(args, "telemetry_out", None)
        or resolve_run_store(getattr(args, "run_store", None)) is not None
    )


def begin_telemetry(args: argparse.Namespace) -> Optional[Tracer]:
    """Enable the process-global tracer when a telemetry flag asked for
    it; returns the tracer, or ``None`` when the run is untraced."""
    if not telemetry_enabled(args):
        return None
    return default_tracer().configure(enabled=True)


def finish_telemetry(
    args: argparse.Namespace,
    command: str,
    cache,
    grid=None,
    stream=None,
) -> Optional[Dict[str, object]]:
    """Close out a traced run: build the manifest from the cache's own
    accounting, write the JSONL log (``--telemetry-out``), ingest the
    run into the run store (``--run-store`` / ``$REPRO_RUN_STORE``,
    stamped with the wall-clock at finish), print the phase tree
    (``--telemetry``), and return the ``--json`` telemetry block — or
    ``None`` when telemetry was never enabled.

    ``cache`` is the run's :class:`SimulationCache`; its ``stats()`` are
    the manifest's cache block (exactly), and its registry — plus the
    attached store's, when persistence was on — supplies the metrics.
    ``grid`` is the swept scenario grid (or ``None`` for runs without a
    single grid); its digest is only computed here, after the enabled
    check, so untraced runs never pay for it.
    """
    if not telemetry_enabled(args):
        return None
    tracer = default_tracer()
    grid = grid_digest(grid) if grid is not None else None
    snapshots = [cache.metrics.snapshot()]
    store = getattr(cache, "store", None)
    if store is not None and getattr(store, "metrics", None) is not None:
        snapshots.append(store.metrics.snapshot())
    metrics_snapshot = merge_snapshots(*snapshots)
    manifest = build_manifest(
        command,
        vars(args),
        tracer,
        cache.stats(),
        grid=grid,
    )
    if getattr(args, "telemetry_out", None):
        write_events(args.telemetry_out, tracer, metrics_snapshot, manifest)
    run_store = resolve_run_store(getattr(args, "run_store", None))
    if run_store is not None:
        events = list(tracer.export())
        events.extend(metric_events(metrics_snapshot))
        events.append(manifest)
        run_store.ingest_events(events, timestamp=time.time())
    if getattr(args, "telemetry", False):
        out = stream if stream is not None else sys.stderr
        print(f"== telemetry: {command} ({manifest['version']}) ==", file=out)
        print(tracer.render_tree(), file=out)
    return telemetry_block(tracer, metrics_snapshot, manifest)
