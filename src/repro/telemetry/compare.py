"""Diff two telemetry runs and gate on performance regressions.

The cross-run half of the consume side: per-phase wall-clock deltas,
engine counter deltas, and a noise-aware verdict suitable for CI —
"did this PR make warm plans slower?" becomes one exit code.

Usage::

    python -m repro.telemetry.compare baseline.jsonl candidate.jsonl
    python -m repro.telemetry.compare candidate.jsonl --baseline latest --store runs/
    python -m repro.telemetry.compare latest --baseline latest --store runs/ --threshold 0.2

Each run is a JSONL file path or a run-store reference (``latest``,
``latest:<command>``, run-id prefix; ``--store`` defaults to
``$REPRO_RUN_STORE``). With a single run given, the baseline defaults
to ``latest`` — resolved as the newest stored run *other than the
candidate itself* (command-matched when possible), so ``compare latest
--baseline latest`` diffs the two most recent runs.

**The noise-aware verdict.** A phase REGRESSES when it got slower both
relatively and absolutely: ``candidate > baseline * (1 + threshold)``
AND ``candidate - baseline > min_seconds``. The absolute floor
(``--min-seconds``, default 0.01 s) keeps micro-phases — whose
wall-clock is scheduler jitter, not work — from tripping the gate,
which is what makes the verdict stable across ``--jobs`` settings on
warm runs (the determinism contract covers tree shape and counts, never
durations). Improvements are labeled symmetrically; phases present on
only one side are reported as ``added``/``removed`` but never gate.
Exit status: **0** when no phase regresses, **1** otherwise — the CI
regression gate.

Counter deltas (``cache.*``/``store.*``/``risk.*``) are reported for
every changed counter; identical runs of a deterministic workload diff
to zero everywhere, which the determinism tests pin down.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .analyze import _print_clipped, split_events
from .runstore import RunStore, resolve_run_store, load_run

DEFAULT_THRESHOLD = 0.2
DEFAULT_MIN_SECONDS = 0.01


def _phases(events: Sequence[Dict[str, object]]) -> Dict[str, float]:
    _, _, manifest = split_events(events)
    phases = (manifest or {}).get("phases") or {}
    return {str(name): float(seconds) for name, seconds in phases.items()}


def _counters(events: Sequence[Dict[str, object]]) -> Dict[str, int]:
    _, metrics, _ = split_events(events)
    return {
        str(e["name"]): int(e["value"])
        for e in metrics
        if e.get("kind") == "counter"
    }


def phase_deltas(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> List[Dict[str, object]]:
    """Per-phase rows over the union of phase names (sorted), each with
    a verdict: ``regression`` / ``improvement`` (both gated by the
    relative threshold AND the absolute floor), ``ok`` (within noise),
    ``added`` / ``removed`` (present on one side only)."""
    rows: List[Dict[str, object]] = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name)
        cand = candidate.get(name)
        if base is None:
            rows.append({"phase": name, "baseline_s": None, "candidate_s": cand,
                         "delta_s": None, "ratio": None, "verdict": "added"})
            continue
        if cand is None:
            rows.append({"phase": name, "baseline_s": base, "candidate_s": None,
                         "delta_s": None, "ratio": None, "verdict": "removed"})
            continue
        delta = cand - base
        ratio = cand / base if base > 0 else None
        if delta > min_seconds and cand > base * (1.0 + threshold):
            verdict = "regression"
        elif -delta > min_seconds and base > cand * (1.0 + threshold):
            verdict = "improvement"
        else:
            verdict = "ok"
        rows.append({"phase": name, "baseline_s": base, "candidate_s": cand,
                     "delta_s": delta, "ratio": ratio, "verdict": verdict})
    return rows


def counter_deltas(
    baseline: Dict[str, int], candidate: Dict[str, int]
) -> List[Dict[str, object]]:
    """Changed counters over the union of names (sorted); counters equal
    on both sides are omitted — a deterministic workload diffs empty."""
    rows: List[Dict[str, object]] = []
    for name in sorted(set(baseline) | set(candidate)):
        base = baseline.get(name, 0)
        cand = candidate.get(name, 0)
        if base != cand:
            rows.append({"counter": name, "baseline": base, "candidate": cand,
                         "delta": cand - base})
    return rows


def compare_runs(
    baseline_events: Sequence[Dict[str, object]],
    candidate_events: Sequence[Dict[str, object]],
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
) -> Dict[str, object]:
    """The full comparison: phase rows, counter rows, regression list,
    and the overall verdict (``"ok"`` / ``"regression"``)."""
    phases = phase_deltas(_phases(baseline_events), _phases(candidate_events),
                          threshold=threshold, min_seconds=min_seconds)
    counters = counter_deltas(_counters(baseline_events),
                              _counters(candidate_events))
    regressions = [row["phase"] for row in phases if row["verdict"] == "regression"]
    return {
        "threshold": threshold,
        "min_seconds": min_seconds,
        "phases": phases,
        "counters": counters,
        "regressions": regressions,
        "verdict": "regression" if regressions else "ok",
    }


def _ms(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    return f"{seconds * 1000:.3f} ms" if abs(seconds) < 1.0 else f"{seconds:.3f} s"


def render_comparison(
    result: Dict[str, object], baseline_label: str, candidate_label: str
) -> str:
    lines: List[str] = [
        f"== compare {baseline_label} (baseline) -> {candidate_label} (candidate) "
        f"· threshold {result['threshold'] * 100:.0f}% · floor "
        f"{_ms(result['min_seconds'])} ==",
        "",
        f"{'phase':<40} {'baseline':>12} {'candidate':>12} {'delta':>10} verdict",
    ]
    for row in result["phases"]:
        if row["delta_s"] is None:
            delta = "-"
        else:
            sign = "+" if row["delta_s"] >= 0 else "-"
            delta = f"{sign}{_ms(abs(row['delta_s']))}"
        lines.append(
            f"{row['phase']:<40} {_ms(row['baseline_s']):>12} "
            f"{_ms(row['candidate_s']):>12} {delta:>10} {row['verdict']}"
        )
    if result["counters"]:
        lines.append("")
        lines.append("counter deltas (baseline -> candidate)")
        for row in result["counters"]:
            lines.append(
                f"{row['counter']:<40} {row['baseline']:>10} -> {row['candidate']}"
                f" ({row['delta']:+d})"
            )
    lines.append("")
    if result["regressions"]:
        names = ", ".join(result["regressions"])
        lines.append(
            f"verdict: REGRESSION — {len(result['regressions'])} phase(s) beyond "
            f"threshold: {names}"
        )
    else:
        lines.append(
            f"verdict: ok — no phase regressed beyond "
            f"{result['threshold'] * 100:.0f}%"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _resolve_baseline(
    store: Optional[RunStore],
    ref: str,
    candidate_label: str,
    candidate_events: Sequence[Dict[str, object]],
):
    """Baseline events for ``--baseline``. A plain ``latest`` excludes
    the candidate itself and prefers records sharing the candidate's
    command, so back-to-back ingests diff newest-vs-previous. The
    candidate is excluded by run id *and* by event content — a file-path
    candidate carries the path as its label, so only content equality
    catches the stored copy of the same run."""
    if ref == "latest":
        if store is None:
            raise ValueError(
                "--baseline latest needs a run store (--store or $REPRO_RUN_STORE)"
            )
        _, _, manifest = split_events(candidate_events)
        command = (manifest or {}).get("command")
        records = [r for r in store.records() if r.run_id != candidate_label]
        matching = [r for r in records if command and r.command == command]
        candidate_snapshot = list(candidate_events)
        for record in reversed(matching or records):
            events = store.load(record)
            if events != candidate_snapshot:
                return record.run_id, events
        raise ValueError(
            f"run store {store.root} has no baseline run other than the candidate"
        )
    return load_run(ref, store=store)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.compare",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("runs", nargs="+", metavar="RUN",
                        help="BASELINE CANDIDATE, or a single CANDIDATE with "
                             "--baseline; each is a JSONL file or a run-store "
                             "reference ('latest', 'latest:<command>', run-id "
                             "prefix)")
    parser.add_argument("--baseline", default=None, metavar="RUN",
                        help="baseline run when only CANDIDATE is positional "
                             "(default: latest — the newest stored run other "
                             "than the candidate)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="run store directory (default: $REPRO_RUN_STORE)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative slowdown a phase must exceed to regress "
                             f"(default: {DEFAULT_THRESHOLD})")
    parser.add_argument("--min-seconds", type=float, default=DEFAULT_MIN_SECONDS,
                        help="absolute slowdown floor in seconds — phases below "
                             "it never regress, keeping scheduler jitter out of "
                             f"the gate (default: {DEFAULT_MIN_SECONDS})")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the comparison as JSON instead of text")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if len(args.runs) > 2:
        parser.error(f"expected 1 or 2 runs, got {len(args.runs)}")
    if len(args.runs) == 2 and args.baseline is not None:
        parser.error("give either BASELINE CANDIDATE or --baseline, not both")
    if args.threshold < 0:
        parser.error(f"--threshold must be >= 0, got {args.threshold}")
    if args.min_seconds < 0:
        parser.error(f"--min-seconds must be >= 0, got {args.min_seconds}")
    store = resolve_run_store(args.store)
    try:
        if len(args.runs) == 2:
            baseline_label, baseline_events = load_run(args.runs[0], store=store)
            candidate_label, candidate_events = load_run(args.runs[1], store=store)
        else:
            candidate_label, candidate_events = load_run(args.runs[0], store=store)
            baseline_label, baseline_events = _resolve_baseline(
                store, args.baseline or "latest", candidate_label, candidate_events
            )
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = compare_runs(baseline_events, candidate_events,
                          threshold=args.threshold, min_seconds=args.min_seconds)
    if args.as_json:
        payload = {"baseline": baseline_label, "candidate": candidate_label, **result}
        text = json.dumps(payload, indent=2, allow_nan=False)
    else:
        text = render_comparison(result, baseline_label, candidate_label)
    return _print_clipped(text, 1 if result["regressions"] else 0)


if __name__ == "__main__":
    raise SystemExit(main())
