"""Exporters: JSONL event logs, ``--json`` telemetry blocks, phase trees.

Three consumers, one event vocabulary (:mod:`repro.telemetry.schema`):

* :func:`write_events` — the ``--telemetry-out events.jsonl`` writer:
  every finished span, every metric, then the run manifest, one JSON
  object per line;
* :func:`telemetry_block` — the structure embedded under a
  ``"telemetry"`` key in the CLIs' ``--json`` payloads (flag-gated, so
  default payloads stay byte-identical);
* the tracer's own ``render_tree`` — the human-readable summary printed
  under ``--telemetry`` (to stderr, so piped ``--json`` stays clean).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Union

from .tracer import Tracer


def metric_events(snapshot: Dict[str, Dict[str, object]]) -> List[Dict[str, object]]:
    """Registry snapshot entries as schema ``metric`` events."""
    events = []
    for name, data in snapshot.items():
        event: Dict[str, object] = {"type": "metric", "name": name, "kind": data["type"]}
        if data["type"] == "histogram":
            event.update(
                count=data["count"], sum=data["sum"], min=data["min"], max=data["max"]
            )
            buckets = data.get("buckets")
            if buckets is not None:
                event["buckets"] = [list(pair) for pair in buckets]
        else:
            event["value"] = data["value"]
        events.append(event)
    return events


def telemetry_block(
    tracer: Tracer,
    metrics_snapshot: Dict[str, Dict[str, object]],
    manifest: Dict[str, object],
) -> Dict[str, object]:
    """The ``--json`` payload's ``"telemetry"`` value: manifest first
    (the summary a reader wants), then metrics, then the span tree as a
    flat start-ordered event list (parents precede children)."""
    return {
        "manifest": manifest,
        "metrics": metrics_snapshot,
        "spans": tracer.export(),
    }


def write_events(
    path: Union[str, Path],
    tracer: Tracer,
    metrics_snapshot: Dict[str, Dict[str, object]],
    manifest: Optional[Dict[str, object]] = None,
) -> int:
    """Write the run's events as JSONL: spans in start order, then
    metrics in name order, then the manifest. Returns the line count.
    ``allow_nan=False`` keeps every line strict JSON — the schema (and
    any downstream consumer) rejects bare ``NaN``/``Infinity`` tokens.

    The write is atomic (temp file + ``os.replace``, the
    ``DiskTraceStore``/``RunStore`` idiom): a crash mid-export — or a
    non-serializable event raising partway through — never leaves a
    truncated JSONL at ``path``, and never clobbers a previous complete
    export with a partial one."""
    events: List[Dict[str, object]] = list(tracer.export())
    events.extend(metric_events(metrics_snapshot))
    if manifest is not None:
        events.append(manifest)
    path = Path(path)
    if path.parent and not path.parent.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}-", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event, allow_nan=False, sort_keys=True))
                handle.write("\n")
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return len(events)
