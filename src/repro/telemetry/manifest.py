"""Run manifests: a traced CLI run as a reproducible artifact.

A manifest records everything needed to say *what produced these
numbers*: the repo version (``git describe``, falling back to the commit
hash, falling back to the explicit ``"unknown"`` outside a checkout —
with a ``version_source`` field saying which of ``git``/``unknown``
answered), the resolved
CLI arguments, a digest of the scenario grid that was swept, the cache's
provenance counters (exactly :meth:`SimulationCache.stats`, so a
manifest can be cross-checked against the engine's own accounting), and
per-phase wall-clock from the span tree. Benchmark trajectories like
``BENCH_spot_planner.json`` become auditable once each run carries one.
"""

from __future__ import annotations

import hashlib
import subprocess
from pathlib import Path
from typing import Dict, Iterable, Optional, Tuple

from .schema import SCHEMA_VERSION
from .tracer import Tracer

_REPO_ROOT = Path(__file__).resolve().parents[3]
_version_cache: Optional[Tuple[str, str]] = None

VERSION_FALLBACK = "unknown"


def version_info() -> Tuple[str, str]:
    """``(version, source)`` for the repo this module was imported
    from, cached per process. ``source`` is ``"git"`` when ``git
    describe --always --dirty`` answered, else ``"unknown"`` with the
    explicit :data:`VERSION_FALLBACK` version — the fallback is a
    first-class value, never a silent one, because manifests must never
    fail a run (no git binary, no checkout, timeouts all land here)."""
    global _version_cache
    if _version_cache is None:
        try:
            described = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=_REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=10,
                check=True,
            ).stdout.strip()
            _version_cache = (
                (described, "git") if described else (VERSION_FALLBACK, "unknown")
            )
        except Exception:
            _version_cache = (VERSION_FALLBACK, "unknown")
    return _version_cache


def repo_version() -> str:
    """The version half of :func:`version_info` (back-compat spelling)."""
    return version_info()[0]


def grid_digest(scenarios: Iterable) -> Optional[str]:
    """A sha256 over the swept scenarios' individual digests, in grid
    order — one stable identity for "what exactly was swept". ``None``
    for an empty grid (nothing was swept, nothing to fingerprint)."""
    hasher = hashlib.sha256()
    empty = True
    for scenario in scenarios:
        hasher.update(scenario.digest().encode("ascii"))
        empty = False
    return None if empty else hasher.hexdigest()


def _json_arg(value):
    """CLI argument values as JSON-safe scalars (argparse namespaces hold
    only scalars, lists and None; tuples arrive from defaults)."""
    if isinstance(value, (list, tuple)):
        return [_json_arg(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


def build_manifest(
    command: str,
    args: Dict[str, object],
    tracer: Tracer,
    cache_stats,
    grid: Optional[str] = None,
) -> Dict[str, object]:
    """The manifest event for one CLI run.

    ``cache_stats`` is a :class:`~repro.scenarios.cache.CacheStats`
    snapshot — its counters are copied field-for-field, so the
    manifest's cache block matches ``SimulationCache.stats()`` exactly.
    ``grid`` is a precomputed :func:`grid_digest` (or ``None`` for runs
    without a single sweep grid, e.g. the experiment report).
    """
    version, version_source = version_info()
    return {
        "type": "manifest",
        "schema": SCHEMA_VERSION,
        "version": version,
        "version_source": version_source,
        "command": command,
        "args": {key: _json_arg(value) for key, value in sorted(args.items())},
        "grid_digest": grid,
        "cache": {
            "hits": cache_stats.hits,
            "disk_hits": cache_stats.disk_hits,
            "misses": cache_stats.misses,
            "simulations": cache_stats.simulations,
            "risk_hits": cache_stats.risk_hits,
            "risk_misses": cache_stats.risk_misses,
            "evictions": cache_stats.evictions,
            "entries": cache_stats.entries,
        },
        "phases": tracer.phase_seconds(),
    }
