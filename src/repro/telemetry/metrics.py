"""A registry of named counters, gauges and latency histograms.

The engine's accounting used to live in ad-hoc integers inside
:class:`~repro.scenarios.cache.SimulationCache`; this module makes those
counters first-class, shareable metrics without changing the ``stats()``
API: the cache now *stores* its ``hits``/``disk_hits``/``misses``/
``simulations``/``risk_hits``/``risk_misses`` in registry counters and
``CacheStats`` is a snapshot of them.

Three instrument kinds, all thread-safe:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a last-write-wins level;
* :class:`Histogram` — a streaming summary (count/sum/min/max) of
  observations, used for per-source fetch latencies. No buckets: the
  consumers (manifests, benchmarks) want totals and extremes, and a
  bucketless summary keeps ``observe`` to a few adds in the hot path.

Registries are cheap; each :class:`SimulationCache` and
:class:`~repro.scenarios.store.DiskTraceStore` owns one, and exporters
merge snapshots. Instrument creation is get-or-create by name, so call
sites can re-resolve instead of caching handles.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins level (e.g. resident cache entries)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming count/sum/min/max summary of observations."""

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as a dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every instrument's state, keyed by name in sorted order —
        the exporters' (and manifests') view of the registry."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument (names survive; handles stay valid)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


def merge_snapshots(*snapshots: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, object]]:
    """Combine registry snapshots (cache + store + ad-hoc) into one
    name-sorted mapping. Later snapshots win on (unexpected) name
    collisions — registries are expected to use disjoint prefixes
    (``cache.*``, ``store.*``, ``risk.*``)."""
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        merged.update(snapshot)
    return dict(sorted(merged.items()))
