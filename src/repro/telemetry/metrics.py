"""A registry of named counters, gauges and latency histograms.

The engine's accounting used to live in ad-hoc integers inside
:class:`~repro.scenarios.cache.SimulationCache`; this module makes those
counters first-class, shareable metrics without changing the ``stats()``
API: the cache now *stores* its ``hits``/``disk_hits``/``misses``/
``simulations``/``risk_hits``/``risk_misses`` in registry counters and
``CacheStats`` is a snapshot of them.

Three instrument kinds, all thread-safe:

* :class:`Counter` — monotonically increasing event count;
* :class:`Gauge` — a last-write-wins level;
* :class:`Histogram` — a streaming summary (count/sum/min/max plus
  fixed log-spaced buckets) of observations, used for per-source fetch
  latencies. The buckets are bounded memory by construction — 4 per
  decade over 1e-7..1e3 seconds plus one overflow slot — so ``observe``
  stays a bisect and a few adds in the hot path, while the analyzer can
  estimate p50/p95 from any exported snapshot
  (:func:`quantile_from_buckets`).

Registries are cheap; each :class:`SimulationCache` and
:class:`~repro.scenarios.store.DiskTraceStore` owns one, and exporters
merge snapshots. Instrument creation is get-or-create by name, so call
sites can re-resolve instead of caching handles.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

# Histogram bucket scale: fixed log-spaced upper bounds, 4 per decade
# from 1e-7 s to 1e3 s (41 bounds + 1 overflow slot = bounded memory).
# The scale is part of the export contract: a snapshot's sparse
# ``buckets`` pairs carry explicit upper bounds, and consumers recover
# each bucket's lower edge as ``upper / BUCKET_STEP``.
BUCKETS_PER_DECADE = 4
BUCKET_STEP = 10.0 ** (1.0 / BUCKETS_PER_DECADE)
BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (k / BUCKETS_PER_DECADE)
    for k in range(-7 * BUCKETS_PER_DECADE, 3 * BUCKETS_PER_DECADE + 1)
)


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> Dict[str, object]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A last-write-wins level (e.g. resident cache entries)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def reset(self) -> None:
        self.set(0.0)

    def snapshot(self) -> Dict[str, object]:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A streaming count/sum/min/max summary of observations, plus
    fixed log-spaced bucket counts for quantile estimation."""

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        # One slot per bound plus the overflow slot (> BUCKET_BOUNDS[-1]).
        self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(BUCKET_BOUNDS, value)  # first bound >= value
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._buckets[index] += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def reset(self) -> None:
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None
            self._buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def quantile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``None`` when empty) — see
        :func:`quantile_from_buckets`."""
        snap = self.snapshot()
        return quantile_from_buckets(
            snap["buckets"], snap["count"], snap["min"], snap["max"], q
        )

    def snapshot(self) -> Dict[str, object]:
        """count/sum/min/max plus sparse ``buckets``: ``[upper, count]``
        pairs for every non-empty bucket, in ascending bound order, the
        overflow slot last with an upper bound of ``None``."""
        with self._lock:
            buckets: List[List[object]] = [
                [BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else None, n]
                for i, n in enumerate(self._buckets)
                if n
            ]
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as a dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list:
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Every instrument's state, keyed by name in sorted order —
        the exporters' (and manifests') view of the registry."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(instruments)}

    def reset(self) -> None:
        """Zero every instrument (names survive; handles stay valid)."""
        with self._lock:
            instruments = list(self._instruments.values())
        for instrument in instruments:
            instrument.reset()


def quantile_from_buckets(
    buckets: Sequence[Sequence[object]],
    count: int,
    minimum: Optional[float],
    maximum: Optional[float],
    q: float,
) -> Optional[float]:
    """Estimate the ``q``-quantile of a histogram from its exported
    sparse ``[upper_bound, count]`` bucket pairs.

    The estimate interpolates linearly inside the bucket holding the
    target rank, taking the bucket's lower edge as ``upper /
    BUCKET_STEP`` (the fixed log scale) and the overflow bucket's span
    as ``(BUCKET_BOUNDS[-1], maximum]``; the exact ``minimum`` /
    ``maximum`` clamp the result, so a single-observation histogram
    reports that observation exactly. Returns ``None`` for an empty
    histogram or a snapshot without buckets (pre-bucket schema v1
    files stay readable — they just have no quantiles)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if not count or not buckets:
        return None
    rank = q * count
    seen = 0
    value: Optional[float] = None
    for bound, n in buckets:
        n = int(n)
        if n <= 0:
            continue
        if seen + n >= rank:
            if bound is None:  # overflow: spans (last bound, max]
                lower = BUCKET_BOUNDS[-1]
                upper = maximum if maximum is not None else lower
            else:
                upper = float(bound)
                lower = upper / BUCKET_STEP
            fraction = min(1.0, max(0.0, (rank - seen) / n))
            value = lower + (upper - lower) * fraction
            break
        seen += n
    if value is None:  # every bucket exhausted (rank == count edge)
        value = maximum
    if minimum is not None and value is not None:
        value = max(value, minimum)
    if maximum is not None and value is not None:
        value = min(value, maximum)
    return value


def merge_snapshots(*snapshots: Dict[str, Dict[str, object]]) -> Dict[str, Dict[str, object]]:
    """Combine registry snapshots (cache + store + ad-hoc) into one
    name-sorted mapping. Later snapshots win on (unexpected) name
    collisions — registries are expected to use disjoint prefixes
    (``cache.*``, ``store.*``, ``risk.*``)."""
    merged: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        merged.update(snapshot)
    return dict(sorted(merged.items()))
