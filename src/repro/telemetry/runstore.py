"""RunStore: an append-only local index of telemetry runs.

PR 7 gave every CLI an *emit* side — schema-v1 JSONL event logs — but
the files piled up with no index. A :class:`RunStore` turns a directory
into the consume side's substrate::

    store/
      index.jsonl          # one line per ingested run, append-only
      runs/<run_id>.jsonl  # the run's full event log (atomic write)

Every ingest validates the events against schema v1 (the same
:func:`~repro.telemetry.schema.validate_file` contract CI enforces),
extracts the run's single manifest, and derives a :class:`RunRecord`
keyed by the manifest identity — version, command, resolved args, grid
digest — plus a **caller-supplied timestamp** (the store never reads
the clock itself, so tests and replays are deterministic). The index is
append-only: records are never rewritten, ``latest`` is simply the last
appended line, and corrupt index lines read as skips, mirroring
:class:`~repro.scenarios.store.DiskTraceStore`'s corruption tolerance.

Resolution mirrors ``resolve_store()``: an explicit ``--run-store DIR``
beats ``$REPRO_RUN_STORE`` beats "no store", uniformly via
:func:`resolve_run_store` on all three CLIs.

Benchmark artifacts join the same trajectory: :meth:`RunStore.record_bench`
wraps a ``BENCH_*.json`` payload into a synthetic single-manifest run
(``command="bench.<name>"``, the payload's ``*_seconds`` fields as
phases), so ``python -m repro.telemetry.compare`` can diff bench runs
exactly like CLI runs.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .manifest import _json_arg, version_info
from .schema import SCHEMA_VERSION, validate_event, validate_file

ENV_RUN_STORE = "REPRO_RUN_STORE"
INDEX_NAME = "index.jsonl"
RUNS_DIR = "runs"

_EMPTY_CACHE_BLOCK = {
    "hits": 0, "disk_hits": 0, "misses": 0, "simulations": 0,
    "risk_hits": 0, "risk_misses": 0, "entries": 0,
}


@dataclass(frozen=True)
class RunRecord:
    """One index line: the identity and location of an ingested run."""

    run_id: str
    command: str
    version: str
    version_source: str
    grid_digest: Optional[str]
    timestamp: float
    path: str  # events file, relative to the store root
    events: int  # line count of the stored JSONL

    def to_line(self) -> str:
        return json.dumps(
            {
                "run_id": self.run_id,
                "command": self.command,
                "version": self.version,
                "version_source": self.version_source,
                "grid_digest": self.grid_digest,
                "timestamp": self.timestamp,
                "path": self.path,
                "events": self.events,
            },
            sort_keys=True,
        )

    @classmethod
    def from_line(cls, line: str) -> "RunRecord":
        data = json.loads(line)
        return cls(
            run_id=str(data["run_id"]),
            command=str(data["command"]),
            version=str(data["version"]),
            version_source=str(data.get("version_source", "unknown")),
            grid_digest=data.get("grid_digest"),
            timestamp=float(data["timestamp"]),
            path=str(data["path"]),
            events=int(data["events"]),
        )


def _run_id(manifest: Dict[str, object], timestamp: float) -> str:
    """The run key: sha256 over the manifest identity fields (version,
    command, args, grid digest) plus the caller's timestamp — two runs
    of the same build and arguments at different times are different
    runs, a re-ingest of the same run is the same run (idempotent)."""
    identity = json.dumps(
        {
            "version": manifest.get("version"),
            "command": manifest.get("command"),
            "args": manifest.get("args"),
            "grid_digest": manifest.get("grid_digest"),
            "timestamp": float(timestamp),
        },
        sort_keys=True,
    )
    return hashlib.sha256(identity.encode("utf-8")).hexdigest()[:16]


class RunStore:
    """An append-only directory of validated telemetry runs.

    Construction never touches the filesystem; directories are created
    on first write, so resolving a store (``--run-store`` / env) is
    side-effect free until a run is actually recorded.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root).expanduser()

    @property
    def index_path(self) -> Path:
        return self.root / INDEX_NAME

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        path: Union[str, Path],
        timestamp: float,
        validate: bool = True,
    ) -> RunRecord:
        """Ingest a ``--telemetry-out`` JSONL file. ``timestamp`` is the
        caller's wall-clock for the run (e.g. ``time.time()``); the
        store records it verbatim."""
        path = Path(path)
        if validate:
            validate_file(path)
        events = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        return self.ingest_events(events, timestamp, validate=False)

    def ingest_events(
        self,
        events: List[Dict[str, object]],
        timestamp: float,
        validate: bool = True,
    ) -> RunRecord:
        """Ingest an in-memory event list (the ``finish_telemetry``
        path, which already holds the run's spans/metrics/manifest and
        need not round-trip through a file)."""
        if validate:
            for event in events:
                validate_event(event)
        manifests = [
            e for e in events if isinstance(e, dict) and e.get("type") == "manifest"
        ]
        if len(manifests) != 1:
            raise ValueError(
                f"a run must carry exactly one manifest event, got {len(manifests)}"
            )
        manifest = manifests[0]
        run_id = _run_id(manifest, timestamp)
        record = RunRecord(
            run_id=run_id,
            command=str(manifest["command"]),
            version=str(manifest["version"]),
            version_source=str(manifest.get("version_source", "unknown")),
            grid_digest=manifest.get("grid_digest"),
            timestamp=float(timestamp),
            path=f"{RUNS_DIR}/{run_id}.jsonl",
            events=len(events),
        )
        # Idempotency is O(1): the events file is written atomically
        # under the run id, so its existence proves a prior ingest of
        # the same run — no index scan, and a lost race at worst
        # duplicates an index line, which records() dedupes.
        known = (self.root / record.path).exists()
        self._write_events(record, events)
        if not known:
            self._append_index(record)
        return record

    def record_bench(
        self, path: Union[str, Path], timestamp: float
    ) -> RunRecord:
        """Record one ``BENCH_*.json`` artifact as a synthetic
        single-manifest run: ``command="bench.<name>"``, the payload's
        scalar fields as manifest args, and every finite ``*_seconds``
        field as a phase — which makes bench trajectories diffable with
        ``python -m repro.telemetry.compare`` exactly like CLI runs."""
        path = Path(path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(payload, dict):
            raise ValueError(f"bench artifact {path} is not a JSON object")
        stem = path.stem
        name = stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
        version, version_source = version_info()
        phases = {
            key: float(value)
            for key, value in payload.items()
            if key.endswith("_seconds")
            and isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value)
        }
        manifest = {
            "type": "manifest",
            "schema": SCHEMA_VERSION,
            "version": version,
            "version_source": version_source,
            "command": f"bench.{name}",
            "args": {key: _json_arg(value) for key, value in sorted(payload.items())},
            "grid_digest": None,
            "cache": dict(_EMPTY_CACHE_BLOCK),
            "phases": phases,
        }
        return self.ingest_events([manifest], timestamp)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def records(self) -> List[RunRecord]:
        """Every index line in append order; corrupt lines are skipped
        (the index is append-only, never rewritten, so a torn write can
        only cost its own line) and duplicate run ids collapse to their
        first line (racing ingests of one run can each append)."""
        if not self.index_path.exists():
            return []
        records: List[RunRecord] = []
        seen: set = set()
        for line in self.index_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = RunRecord.from_line(line)
            except (ValueError, KeyError, TypeError):
                continue
            if record.run_id in seen:
                continue
            seen.add(record.run_id)
            records.append(record)
        return records

    def latest(self, command: Optional[str] = None) -> Optional[RunRecord]:
        """The most recently appended record (optionally restricted to
        one command), or ``None`` on an empty store."""
        records = self.records()
        if command is not None:
            records = [r for r in records if r.command == command]
        return records[-1] if records else None

    def resolve(self, ref: str) -> RunRecord:
        """A record for a run reference: ``"latest"``,
        ``"latest:<command>"``, or a unique ``run_id`` prefix."""
        if ref == "latest" or ref.startswith("latest:"):
            command = ref.split(":", 1)[1] if ":" in ref else None
            record = self.latest(command=command)
            if record is None:
                raise ValueError(
                    f"run store {self.root} has no runs"
                    + (f" for command {command!r}" if command else "")
                )
            return record
        matches = [r for r in self.records() if r.run_id.startswith(ref)]
        ids = sorted({r.run_id for r in matches})
        if len(ids) == 1:
            return matches[-1]
        hint = f"ambiguous between {ids}" if ids else "no run id matches"
        raise ValueError(f"run reference {ref!r}: {hint}")

    def load(self, record: Union[RunRecord, str]) -> List[Dict[str, object]]:
        """The stored events of a record (or run reference)."""
        if isinstance(record, str):
            record = self.resolve(record)
        path = self.root / record.path
        return [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]

    def __len__(self) -> int:
        return len(self.records())

    def __repr__(self) -> str:
        return f"RunStore({str(self.root)!r}, {len(self)} runs)"

    # ------------------------------------------------------------------
    # Writes (atomic events file, appended index — mirrors DiskTraceStore)
    # ------------------------------------------------------------------
    def _write_events(self, record: RunRecord, events: List[Dict[str, object]]) -> None:
        target = self.root / record.path
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=record.run_id, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                for event in events:
                    handle.write(json.dumps(event, allow_nan=False, sort_keys=True))
                    handle.write("\n")
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _append_index(self, record: RunRecord) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as handle:
            handle.write(record.to_line())
            handle.write("\n")


def resolve_run_store(
    run_store: Optional[Union[str, Path]] = None
) -> Optional[RunStore]:
    """The store for an explicit ``--run-store`` value, else for
    ``$REPRO_RUN_STORE``, else ``None`` (no run recording) — the same
    resolution rule as :func:`repro.scenarios.resolve_store`."""
    root = run_store if run_store else os.environ.get(ENV_RUN_STORE)
    return RunStore(root) if root else None


def load_run(
    ref: str, store: Optional[RunStore] = None
) -> tuple:
    """Resolve a run reference to ``(label, events)``: an existing file
    path loads (and validates) directly; anything else — ``latest``,
    ``latest:<command>``, a run-id prefix — needs a store. The shared
    front door of the analyze and compare CLIs."""
    path = Path(ref)
    if path.exists() and path.is_file():
        validate_file(path)
        events = [
            json.loads(line)
            for line in path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        return str(path), events
    if store is None:
        raise ValueError(
            f"run reference {ref!r} is not a file and no run store is "
            f"configured (pass --store or set ${ENV_RUN_STORE})"
        )
    record = store.resolve(ref)
    return record.run_id, store.load(record)
