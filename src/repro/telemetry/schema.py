"""The JSONL event schema and its validator.

Every line of a ``--telemetry-out`` file is one JSON object with a
``type`` of ``"span"``, ``"metric"`` or ``"manifest"``:

* ``span`` — ``{"type", "name", "id", "parent", "start_s",
  "duration_s", "attrs"}``: one finished traced region. ``parent`` is
  another span's ``id`` or ``null`` for roots; ``start_s`` is monotonic
  seconds relative to the tracer epoch.
* ``metric`` — ``{"type", "kind", "name", ...}`` where ``kind`` is
  ``"counter"``/``"gauge"`` (plus ``"value"``) or ``"histogram"`` (plus
  ``"count"``, ``"sum"``, ``"min"``, ``"max"``; min/max are ``null``
  when nothing was observed). Histograms may additionally carry
  ``"buckets"``: sparse ``[upper_bound, count]`` pairs in strictly
  ascending bound order (the overflow slot last, with a ``null``
  bound), whose counts sum to ``count``. The field is optional so
  pre-bucket schema-v1 files stay valid.
* ``manifest`` — the run manifest (see
  :mod:`repro.telemetry.manifest`): ``{"type", "schema", "version",
  "command", "args", "grid_digest", "cache", "phases"}`` plus the
  optional ``"version_source"`` (``"git"`` when ``git describe``
  answered, ``"unknown"`` for the explicit fallback).

Violations raise :class:`SchemaError` (a ``ValueError``): file-level
validation stamps the 1-based ``lineno`` of the offending JSONL line,
and both levels carry the offending ``key`` when one is identifiable —
so a failure deep in a long event log points at the exact line and
field instead of being a needle in a haystack.

The validator is dependency-free on purpose: the same
:func:`validate_event`/:func:`validate_file` pair is used by
``tests/test_telemetry.py`` and by the CI smoke job that replays a
``repro.spot.plan --telemetry-out`` run, so the schema documented here
is the schema actually enforced.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Optional, Union

SCHEMA_VERSION = 1

EVENT_TYPES = ("span", "metric", "manifest")
METRIC_KINDS = ("counter", "gauge", "histogram")

_MANIFEST_KEYS = ("schema", "version", "command", "args", "grid_digest", "cache", "phases")


class SchemaError(ValueError):
    """A schema violation, pointing at the offense: ``lineno`` is the
    1-based JSONL line (``None`` for a bare :func:`validate_event`
    call) and ``key`` the offending event key when one is
    identifiable (``None`` for structural failures such as a
    non-object line or an unknown event type)."""

    def __init__(self, message: str, lineno=None, key=None) -> None:
        super().__init__(message)
        self.lineno = lineno
        self.key = key


def _fail(message: str, key: Optional[str] = None) -> None:
    raise SchemaError(f"invalid telemetry event: {message}", key=key)


def _require(event: Dict, key: str, types, allow_none: bool = False):
    if key not in event:
        _fail(f"missing key {key!r} in {sorted(event)}", key=key)
    value = event[key]
    if value is None:
        if not allow_none:
            _fail(f"key {key!r} must not be null", key=key)
        return None
    if not isinstance(value, types):
        _fail(f"key {key!r} has type {type(value).__name__}, expected {types}", key=key)
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        _fail(f"key {key!r} is a bool, expected {types}", key=key)
    return value


def _finite(event: Dict, key: str, allow_none: bool = False) -> None:
    value = _require(event, key, (int, float), allow_none=allow_none)
    if value is not None and not math.isfinite(value):
        _fail(f"key {key!r} must be finite, got {value}", key=key)


def validate_event(event: object) -> str:
    """Check one decoded JSONL event against the schema; returns the
    event type or raises ``ValueError`` with the first violation."""
    if not isinstance(event, dict):
        _fail(f"event must be an object, got {type(event).__name__}")
    kind = _require(event, "type", str)
    if kind == "span":
        _require(event, "name", str)
        span_id = _require(event, "id", int)
        if span_id < 1:
            _fail(f"span id must be >= 1, got {span_id}", key="id")
        _require(event, "parent", int, allow_none=True)
        _finite(event, "start_s")
        _finite(event, "duration_s")
        if event["duration_s"] < 0:
            _fail(f"span duration must be >= 0, got {event['duration_s']}",
                  key="duration_s")
        _require(event, "attrs", dict)
    elif kind == "metric":
        _require(event, "name", str)
        metric_kind = _require(event, "kind", str)
        if metric_kind not in METRIC_KINDS:
            _fail(f"metric kind {metric_kind!r} not in {METRIC_KINDS}", key="kind")
        if metric_kind == "histogram":
            count = _require(event, "count", int)
            if count < 0:
                _fail(f"histogram count must be >= 0, got {count}", key="count")
            _finite(event, "sum")
            _finite(event, "min", allow_none=True)
            _finite(event, "max", allow_none=True)
            if count == 0 and (event["min"] is not None or event["max"] is not None):
                _fail("empty histogram must have null min/max", key="min")
            if count > 0 and (event["min"] is None or event["max"] is None):
                _fail("non-empty histogram must carry min/max", key="min")
            if event.get("buckets") is not None:
                _validate_buckets(event["buckets"], count)
        else:
            _finite(event, "value")
    elif kind == "manifest":
        for key in _MANIFEST_KEYS:
            if key not in event:
                _fail(f"manifest missing key {key!r}", key=key)
        if event["schema"] != SCHEMA_VERSION:
            _fail(f"manifest schema {event['schema']!r} != {SCHEMA_VERSION}",
                  key="schema")
        _require(event, "version", str)
        _require(event, "command", str)
        if "version_source" in event:
            _require(event, "version_source", str)
        _require(event, "args", dict)
        _require(event, "grid_digest", str, allow_none=True)
        cache = _require(event, "cache", dict)
        for counter in ("hits", "disk_hits", "misses", "simulations"):
            if not isinstance(cache.get(counter), int):
                _fail(f"manifest cache block missing integer {counter!r}",
                      key="cache")
        phases = _require(event, "phases", dict)
        for name, seconds in phases.items():
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
                _fail(f"phase {name!r} wall-clock must be a number", key="phases")
    else:
        _fail(f"unknown event type {kind!r} (expected one of {EVENT_TYPES})")
    return kind


def _validate_buckets(buckets: object, count: int) -> None:
    """The optional histogram ``buckets`` field: sparse ``[upper,
    count]`` pairs, bounds strictly ascending with the ``null``-bounded
    overflow slot last, per-bucket counts positive and summing to the
    histogram's ``count``."""
    if not isinstance(buckets, list):
        _fail(f"buckets must be a list, got {type(buckets).__name__}",
              key="buckets")
    total = 0
    previous: Optional[float] = None
    for index, pair in enumerate(buckets):
        if not isinstance(pair, list) or len(pair) != 2:
            _fail(f"bucket {index} must be an [upper_bound, count] pair",
                  key="buckets")
        bound, bucket_count = pair
        if bound is not None:
            if not isinstance(bound, (int, float)) or isinstance(bound, bool) \
                    or not math.isfinite(bound):
                _fail(f"bucket {index} bound must be finite or null", key="buckets")
            if index != 0 and (previous is None or bound <= previous):
                _fail(f"bucket bounds must be strictly ascending at index {index}",
                      key="buckets")
            previous = float(bound)
        elif index != len(buckets) - 1:
            _fail("only the final (overflow) bucket may have a null bound",
                  key="buckets")
        if not isinstance(bucket_count, int) or isinstance(bucket_count, bool) \
                or bucket_count < 1:
            _fail(f"bucket {index} count must be a positive integer", key="buckets")
        total += bucket_count
    if total != count:
        _fail(f"bucket counts sum to {total}, expected histogram count {count}",
              key="buckets")


def validate_file(path: Union[str, Path]) -> Dict[str, int]:
    """Validate every line of a ``--telemetry-out`` JSONL file. Returns
    per-type event counts; raises :class:`SchemaError` on the first
    malformed line, carrying the 1-based ``lineno`` and — when one is
    identifiable — the offending ``key`` of the first bad event."""
    counts = {kind: 0 for kind in EVENT_TYPES}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                raise SchemaError(f"line {lineno}: blank line", lineno=lineno)
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {lineno}: not JSON ({exc})",
                                  lineno=lineno) from None
            try:
                counts[validate_event(event)] += 1
            except SchemaError as exc:
                raise SchemaError(f"line {lineno}: {exc}", lineno=lineno,
                                  key=exc.key) from None
    return counts
