"""The JSONL event schema and its validator.

Every line of a ``--telemetry-out`` file is one JSON object with a
``type`` of ``"span"``, ``"metric"`` or ``"manifest"``:

* ``span`` — ``{"type", "name", "id", "parent", "start_s",
  "duration_s", "attrs"}``: one finished traced region. ``parent`` is
  another span's ``id`` or ``null`` for roots; ``start_s`` is monotonic
  seconds relative to the tracer epoch.
* ``metric`` — ``{"type", "kind", "name", ...}`` where ``kind`` is
  ``"counter"``/``"gauge"`` (plus ``"value"``) or ``"histogram"`` (plus
  ``"count"``, ``"sum"``, ``"min"``, ``"max"``; min/max are ``null``
  when nothing was observed).
* ``manifest`` — the run manifest (see
  :mod:`repro.telemetry.manifest`): ``{"type", "schema", "version",
  "command", "args", "grid_digest", "cache", "phases"}``.

The validator is dependency-free on purpose: the same
:func:`validate_event`/:func:`validate_file` pair is used by
``tests/test_telemetry.py`` and by the CI smoke job that replays a
``repro.spot.plan --telemetry-out`` run, so the schema documented here
is the schema actually enforced.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Dict, Union

SCHEMA_VERSION = 1

EVENT_TYPES = ("span", "metric", "manifest")
METRIC_KINDS = ("counter", "gauge", "histogram")

_MANIFEST_KEYS = ("schema", "version", "command", "args", "grid_digest", "cache", "phases")


def _fail(message: str) -> None:
    raise ValueError(f"invalid telemetry event: {message}")


def _require(event: Dict, key: str, types, allow_none: bool = False):
    if key not in event:
        _fail(f"missing key {key!r} in {sorted(event)}")
    value = event[key]
    if value is None:
        if not allow_none:
            _fail(f"key {key!r} must not be null")
        return None
    if not isinstance(value, types):
        _fail(f"key {key!r} has type {type(value).__name__}, expected {types}")
    # bool is an int subclass; reject it where a number is expected.
    if isinstance(value, bool) and bool not in (types if isinstance(types, tuple) else (types,)):
        _fail(f"key {key!r} is a bool, expected {types}")
    return value


def _finite(event: Dict, key: str, allow_none: bool = False) -> None:
    value = _require(event, key, (int, float), allow_none=allow_none)
    if value is not None and not math.isfinite(value):
        _fail(f"key {key!r} must be finite, got {value}")


def validate_event(event: object) -> str:
    """Check one decoded JSONL event against the schema; returns the
    event type or raises ``ValueError`` with the first violation."""
    if not isinstance(event, dict):
        _fail(f"event must be an object, got {type(event).__name__}")
    kind = _require(event, "type", str)
    if kind == "span":
        _require(event, "name", str)
        span_id = _require(event, "id", int)
        if span_id < 1:
            _fail(f"span id must be >= 1, got {span_id}")
        _require(event, "parent", int, allow_none=True)
        _finite(event, "start_s")
        _finite(event, "duration_s")
        if event["duration_s"] < 0:
            _fail(f"span duration must be >= 0, got {event['duration_s']}")
        _require(event, "attrs", dict)
    elif kind == "metric":
        _require(event, "name", str)
        metric_kind = _require(event, "kind", str)
        if metric_kind not in METRIC_KINDS:
            _fail(f"metric kind {metric_kind!r} not in {METRIC_KINDS}")
        if metric_kind == "histogram":
            count = _require(event, "count", int)
            if count < 0:
                _fail(f"histogram count must be >= 0, got {count}")
            _finite(event, "sum")
            _finite(event, "min", allow_none=True)
            _finite(event, "max", allow_none=True)
            if count == 0 and (event["min"] is not None or event["max"] is not None):
                _fail("empty histogram must have null min/max")
            if count > 0 and (event["min"] is None or event["max"] is None):
                _fail("non-empty histogram must carry min/max")
        else:
            _finite(event, "value")
    elif kind == "manifest":
        for key in _MANIFEST_KEYS:
            if key not in event:
                _fail(f"manifest missing key {key!r}")
        if event["schema"] != SCHEMA_VERSION:
            _fail(f"manifest schema {event['schema']!r} != {SCHEMA_VERSION}")
        _require(event, "version", str)
        _require(event, "command", str)
        _require(event, "args", dict)
        _require(event, "grid_digest", str, allow_none=True)
        cache = _require(event, "cache", dict)
        for counter in ("hits", "disk_hits", "misses", "simulations"):
            if not isinstance(cache.get(counter), int):
                _fail(f"manifest cache block missing integer {counter!r}")
        phases = _require(event, "phases", dict)
        for name, seconds in phases.items():
            if not isinstance(seconds, (int, float)) or isinstance(seconds, bool):
                _fail(f"phase {name!r} wall-clock must be a number")
    else:
        _fail(f"unknown event type {kind!r} (expected one of {EVENT_TYPES})")
    return kind


def validate_file(path: Union[str, Path]) -> Dict[str, int]:
    """Validate every line of a ``--telemetry-out`` JSONL file. Returns
    per-type event counts; raises ``ValueError`` (with the line number)
    on the first malformed line."""
    counts = {kind: 0 for kind in EVENT_TYPES}
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                _fail(f"line {lineno}: blank line")
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                _fail(f"line {lineno}: not JSON ({exc})")
            try:
                counts[validate_event(event)] += 1
            except ValueError as exc:
                raise ValueError(f"line {lineno}: {exc}") from None
    return counts
