"""Structured spans: where a plan spends its time, as a tree.

A :class:`Span` is one named, timed region of work (monotonic start,
duration, free-form attributes) linked to the span that was open when it
started. A :class:`Tracer` hands them out through a context-manager API::

    with tracer.span("planner.sweep", cells=len(grid)) as sp:
        points = runner.run(grid)
        sp.attributes["points"] = len(points)

and records every finished span in *start order*, which — because phase
spans are only opened on the coordinating thread — makes the span tree a
deterministic function of the work performed, not of scheduling. Worker
threads may open spans too (the tracer is fully locked); spans started
on a thread with no open span become roots.

Tracing defaults to **off**: the process-global default tracer (mirroring
:func:`repro.scenarios.default_cache`) starts disabled, and a disabled
tracer's :meth:`Tracer.span` returns a shared no-op context, so
instrumented hot paths cost one attribute check when nobody is watching.
The CLIs enable it under ``--telemetry``/``--telemetry-out``.

Process pools cannot share a tracer. The contract mirrors the sweep
runner's cache-accounting replay: workers return plain data (their
finished spans, via :meth:`Tracer.export`) and the parent reassembles it
deterministically with :meth:`Tracer.adopt_spans`, re-identifying the
spans under a parent of its choosing in the order given.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Span:
    """One finished (or still-open) traced region."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start_seconds: float  # relative to the tracer's epoch (monotonic)
    duration_seconds: Optional[float] = None  # None while still open
    attributes: Dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.duration_seconds is not None

    def to_event(self) -> Dict[str, object]:
        """The span as a JSONL event (see :mod:`repro.telemetry.schema`)."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_s": self.start_seconds,
            "duration_s": self.duration_seconds,
            "attrs": dict(self.attributes),
        }


class _NullSpan:
    """The shared no-op context a disabled tracer hands out. Attribute
    writes land in a throwaway dict so call sites need no branching."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    @property
    def attributes(self) -> Dict[str, object]:
        return {}


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager binding one live span to its tracer."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span, t0: float) -> None:
        self._tracer = tracer
        self._span = span
        self._t0 = t0

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span, time.perf_counter() - self._t0)
        return False


class Tracer:
    """Produces nested spans and keeps every finished one, in start order."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._spans: List[Span] = []
        self._next_id = 1
        self._epoch = time.perf_counter()
        self._local = threading.local()

    # ------------------------------------------------------------------
    def configure(self, enabled: bool) -> "Tracer":
        """Flip tracing on/off (the CLIs' ``--telemetry`` hook)."""
        self.enabled = enabled
        return self

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes):
        """Open a span named ``name``; keyword arguments seed its
        attributes. Returns a context manager yielding the :class:`Span`
        (or a shared no-op when the tracer is disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        t0 = time.perf_counter()
        stack = self._stack()
        parent_id = stack[-1].span_id if stack else None
        with self._lock:
            span = Span(
                name=name,
                span_id=self._next_id,
                parent_id=parent_id,
                start_seconds=t0 - self._epoch,
                attributes=dict(attributes),
            )
            self._next_id += 1
            self._spans.append(span)
        stack.append(span)
        return _SpanContext(self, span, t0)

    def _finish(self, span: Span, duration: float) -> None:
        span.duration_seconds = duration
        stack = self._stack()
        # The span being closed is normally the stack top; tolerate
        # mis-nested exits by popping down to (and including) it.
        while stack:
            if stack.pop() is span:
                break

    # ------------------------------------------------------------------
    def spans(self) -> List[Span]:
        """All recorded spans, in start order."""
        with self._lock:
            return list(self._spans)

    def export(self) -> List[Dict[str, object]]:
        """Finished spans as plain event dicts — the picklable form a
        process-pool worker returns for :meth:`adopt_spans`."""
        return [s.to_event() for s in self.spans() if s.finished]

    def adopt_spans(
        self,
        events: List[Dict[str, object]],
        parent_id: Optional[int] = None,
    ) -> List[Span]:
        """Reassemble a worker's exported spans into this tracer: ids are
        re-assigned in the order given (so adoption is deterministic for
        a deterministic worker), internal parent links are remapped, and
        orphans hang off ``parent_id``. Mirrors how the sweep runner
        replays worker cache accounting into the parent cache."""
        if not self.enabled:
            return []
        adopted: List[Span] = []
        mapping: Dict[int, int] = {}
        with self._lock:
            for event in events:
                span_id = self._next_id
                self._next_id += 1
                mapping[event["id"]] = span_id
                span = Span(
                    name=event["name"],
                    span_id=span_id,
                    parent_id=mapping.get(event["parent"], parent_id),
                    start_seconds=event["start_s"],
                    duration_seconds=event["duration_s"],
                    attributes=dict(event.get("attrs") or {}),
                )
                self._spans.append(span)
                adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _children(self) -> Dict[Optional[int], List[Span]]:
        table: Dict[Optional[int], List[Span]] = {}
        for span in self.spans():
            table.setdefault(span.parent_id, []).append(span)
        return table

    def tree_shape(self) -> Tuple:
        """The span tree with every timing stripped: nested
        ``(name, (children...))`` tuples in start order. Two runs doing
        the same work produce equal shapes regardless of ``--jobs`` or
        ``--executor`` — the determinism contract the tests pin down."""
        children = self._children()

        def shape(span: Span) -> Tuple:
            return (span.name, tuple(shape(c) for c in children.get(span.span_id, [])))

        return tuple(shape(root) for root in children.get(None, []))

    def phase_seconds(self) -> Dict[str, float]:
        """Wall-clock per span name (summed over occurrences) — the
        manifest's per-phase accounting."""
        phases: Dict[str, float] = {}
        for span in self.spans():
            if span.finished:
                phases[span.name] = phases.get(span.name, 0.0) + span.duration_seconds
        return phases

    def render_tree(self) -> str:
        """Human-readable phase tree (the ``--telemetry`` summary)."""
        children = self._children()
        lines: List[str] = []

        def fmt(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration_seconds * 1000:.1f} ms"
                if span.finished
                else "(open)"
            )
            attrs = "".join(
                f" {key}={value}" for key, value in sorted(span.attributes.items())
            )
            lines.append(f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} {duration:>10}{attrs}")
            for child in children.get(span.span_id, []):
                fmt(child, depth + 1)

        for root in children.get(None, []):
            fmt(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"

    def reset(self) -> None:
        """Drop every recorded span (the enabled flag is untouched)."""
        with self._lock:
            self._spans.clear()
            self._next_id = 1
            self._epoch = time.perf_counter()
        self._local = threading.local()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# ---------------------------------------------------------------------------
# Process-global default tracer (mirrors scenarios.default_cache)
# ---------------------------------------------------------------------------

_default_tracer = Tracer(enabled=False)


def default_tracer() -> Tracer:
    """The process-wide tracer used when a consumer is not handed one.
    Starts disabled; the CLIs enable it under ``--telemetry``."""
    return _default_tracer


def reset_default_tracer(enabled: bool = False) -> Tracer:
    """Replace the global tracer with a fresh one (tests/benchmarks)."""
    global _default_tracer
    _default_tracer = Tracer(enabled=enabled)
    return _default_tracer


def resolve_tracer(tracer: Optional[Tracer]) -> Tracer:
    """The given tracer, or the process-global default when ``None`` —
    the resolution rule every instrumented layer funnels through."""
    return tracer if tracer is not None else _default_tracer
