"""Numpy-backed reverse-mode autodiff engine (training substrate S1).

Public surface::

    from repro.tensor import Tensor, ops, no_grad, checkpoint

The engine implements everything the paper's fine-tuning stack needs:
broadcast-aware arithmetic, batched matmul, the usual activations,
softmax/log-softmax, gather/scatter primitives for embeddings and MoE
token routing, a diagonal selective-scan recurrence for Mamba layers, and
gradient checkpointing.
"""

from .checkpoint import checkpoint
from .core import DEFAULT_DTYPE, Function, Tensor, ones, randn, tensor, unbroadcast, zeros
from .grad_mode import enable_grad, is_grad_enabled, no_grad, set_grad_enabled
from . import ops

__all__ = [
    "DEFAULT_DTYPE",
    "Function",
    "Tensor",
    "checkpoint",
    "enable_grad",
    "is_grad_enabled",
    "no_grad",
    "ones",
    "ops",
    "randn",
    "set_grad_enabled",
    "tensor",
    "unbroadcast",
    "zeros",
]
