"""Gradient checkpointing (activation recomputation).

The paper fine-tunes Mixtral with gradient checkpointing enabled: forward
activations inside a block are *not* stored; the backward pass re-runs the
block's forward to rebuild them, trading extra compute for memory. This is
both a feature of the training substrate and an input to the memory model
(checkpointed activations do not count against GPU memory) and the GPU
simulator (the backward stage pays a recomputation term).

Implementation notes: the checkpointed callable is executed under
``no_grad`` on the way forward, so no graph is recorded. On the way back
we re-execute it with gradients enabled on detached inputs, backpropagate
the incoming gradient through the local graph, and hand input gradients
back to the outer engine. Gradients of parameters *inside* the callable
accumulate directly onto the parameter tensors, exactly as they would in a
non-checkpointed run.
"""

from __future__ import annotations

from typing import Callable, Tuple

import numpy as np

from .core import Function, Tensor
from .grad_mode import enable_grad, is_grad_enabled, no_grad


class _CheckpointFunction(Function):
    """Graph node whose backward recomputes the wrapped callable."""

    def __init__(self) -> None:
        super().__init__()
        self.fn: Callable[..., Tensor] = None  # type: ignore[assignment]
        self.inputs: Tuple[Tensor, ...] = ()

    def backward(self, grad_out: np.ndarray):
        detached = []
        for original in self.inputs:
            copy = original.detach()
            copy.requires_grad = original.requires_grad
            detached.append(copy)
        with enable_grad():
            out = self.fn(*detached)
            if not isinstance(out, Tensor):
                raise TypeError("checkpointed function must return a single Tensor")
            if out.requires_grad:
                out.backward(grad_out)
        return tuple(d.grad if d.requires_grad else None for d in detached)


def checkpoint(fn: Callable[..., Tensor], *inputs: Tensor) -> Tensor:
    """Run ``fn(*inputs)`` without storing intermediate activations.

    Returns the same value as ``fn(*inputs)``; during backward the
    function is re-executed to reconstruct the activations. ``fn`` must be
    deterministic (re-execution must match the original forward) and must
    return a single tensor.
    """
    if not is_grad_enabled():
        return fn(*inputs)
    with no_grad():
        out_value = fn(*inputs)
    if not isinstance(out_value, Tensor):
        raise TypeError("checkpointed function must return a single Tensor")
    out = Tensor(out_value.data, requires_grad=True)
    ctx = _CheckpointFunction()
    ctx.fn = fn
    ctx.inputs = tuple(inputs)
    ctx.parents = tuple(t for t in inputs if isinstance(t, Tensor))
    out._ctx = ctx
    return out
