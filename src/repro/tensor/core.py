"""Core reverse-mode automatic differentiation engine.

This module provides the two central abstractions of the training
substrate:

* :class:`Tensor` — a numpy-backed array that optionally records the
  operation that produced it.
* :class:`Function` — the base class for differentiable operations. Each
  subclass implements a ``forward`` over raw numpy arrays and a
  ``backward`` that maps the output gradient to input gradients.

The design follows the classic define-by-run approach: running an
operation on tensors builds a DAG; calling :meth:`Tensor.backward`
topologically sorts the DAG and accumulates gradients into every leaf with
``requires_grad=True``.

Only the machinery lives here. Concrete operations are defined in
:mod:`repro.tensor.ops` and re-exported from the package root.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from ..rng import resolve_rng
from .grad_mode import is_grad_enabled

DEFAULT_DTYPE = np.float64

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape``.

    Numpy broadcasting can expand an operand along leading axes and along
    axes of size one; the corresponding gradient must be summed back over
    those axes to respect the chain rule.
    """
    if grad.shape == shape:
        return grad
    # Sum away the extra leading dimensions introduced by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were broadcast from size one.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement :meth:`forward` (numpy in, numpy out) and
    :meth:`backward` (output gradient in, per-parent gradients out). The
    :meth:`apply` classmethod is the public entry point: it unwraps tensor
    arguments, runs the forward pass, and attaches the node to the graph
    when gradient recording is active.
    """

    def __init__(self) -> None:
        self.parents: Tuple[Tensor, ...] = ()
        self.saved: Tuple[Any, ...] = ()

    def save_for_backward(self, *items: Any) -> None:
        """Stash arrays or metadata needed by :meth:`backward`."""
        self.saved = items

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> Tuple[Optional[np.ndarray], ...]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        ctx = cls()
        tensor_args = [a for a in args if isinstance(a, Tensor)]
        raw_args = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = ctx.forward(*raw_args, **kwargs)
        requires = is_grad_enabled() and any(t.requires_grad for t in tensor_args)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            ctx.parents = tuple(tensor_args)
            out._ctx = ctx
        return out

    def parent_index(self, tensor_position: int) -> int:
        """Map a positional argument index to the parents tuple index."""
        return tensor_position


class Tensor:
    """A numpy array with an optional autograd history.

    Parameters
    ----------
    data:
        Anything convertible to a numpy array. Floating point data keeps
        its dtype; other dtypes are converted to the engine default
        (float64) unless ``dtype`` is given.
    requires_grad:
        When True, gradients accumulate into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_ctx", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if dtype is not None:
            arr = arr.astype(dtype, copy=False)
        elif not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(DEFAULT_DTYPE)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._ctx: Optional[Function] = None
        self.name = name

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}{grad_flag}{label})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a 1-element tensor, got shape {self.shape}")
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a view of the data cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        from . import ops

        return ops.identity(self)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones for scalar outputs, matching the
        convention that ``loss.backward()`` computes d(loss)/d(leaf).
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = grad.reshape(self.data.shape)

        order = _topological_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad and node._ctx is None:
                # Leaf tensor: accumulate.
                if node.grad is None:
                    node.grad = node_grad.copy()
                else:
                    node.grad = node.grad + node_grad
                continue
            ctx = node._ctx
            if ctx is None:
                continue
            parent_grads = ctx.backward(node_grad)
            if not isinstance(parent_grads, tuple):
                parent_grads = (parent_grads,)
            if len(parent_grads) != len(ctx.parents):
                raise RuntimeError(
                    f"{type(ctx).__name__}.backward returned {len(parent_grads)} grads "
                    f"for {len(ctx.parents)} parents"
                )
            for parent, pgrad in zip(ctx.parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad)
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # ------------------------------------------------------------------
    # Operator overloads (definitions live in repro.tensor.ops)
    # ------------------------------------------------------------------
    def _ops(self):
        from . import ops

        return ops

    def __add__(self, other: ArrayLike) -> "Tensor":
        return self._ops().add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self._ops().add(self, other)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self._ops().sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._ops().sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return self._ops().mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self._ops().mul(self, other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return self._ops().div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._ops().div(other, self)

    def __neg__(self) -> "Tensor":
        return self._ops().neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return self._ops().pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return self._ops().matmul(self, other)

    def __getitem__(self, index: Any) -> "Tensor":
        return self._ops().getitem(self, index)

    # Reductions / shape ops -------------------------------------------------
    def sum(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        return self._ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        return self._ops().mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        return self._ops().max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return self._ops().reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return self._ops().transpose(self, axes if axes else None)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    # Elementwise convenience -------------------------------------------------
    def exp(self) -> "Tensor":
        return self._ops().exp(self)

    def log(self) -> "Tensor":
        return self._ops().log(self)

    def sqrt(self) -> "Tensor":
        return self._ops().sqrt(self)

    def tanh(self) -> "Tensor":
        return self._ops().tanh(self)

    def sigmoid(self) -> "Tensor":
        return self._ops().sigmoid(self)

    def relu(self) -> "Tensor":
        return self._ops().relu(self)

    def abs(self) -> "Tensor":
        return self._ops().abs(self)

    def softmax(self, axis: int = -1) -> "Tensor":
        return self._ops().softmax(self, axis=axis)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return self._ops().log_softmax(self, axis=axis)


def _topological_order(root: Tensor) -> list[Tensor]:
    """Return tensors reachable from ``root`` in reverse-topological order."""
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        if node._ctx is not None:
            for parent in node._ctx.parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
    order.reverse()
    return order


def tensor(data: ArrayLike, requires_grad: bool = False, dtype: Optional[np.dtype] = None) -> Tensor:
    """Convenience constructor mirroring ``torch.tensor``."""
    return Tensor(data, requires_grad=requires_grad, dtype=dtype)


def zeros(shape: Sequence[int], requires_grad: bool = False, dtype: np.dtype = DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)


def ones(shape: Sequence[int], requires_grad: bool = False, dtype: np.dtype = DEFAULT_DTYPE) -> Tensor:
    return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)


def randn(
    shape: Sequence[int],
    rng: Optional[np.random.Generator] = None,
    scale: float = 1.0,
    requires_grad: bool = False,
    dtype: np.dtype = DEFAULT_DTYPE,
) -> Tensor:
    """Gaussian tensor; an explicit ``rng`` decorrelates call sites — the
    default is the repo-wide seeded fallback (:func:`repro.rng.resolve_rng`)."""
    rng = resolve_rng(rng)
    return Tensor((rng.standard_normal(shape) * scale).astype(dtype), requires_grad=requires_grad)
