"""Global gradient-recording mode, mirroring ``torch.no_grad`` semantics.

The autograd engine consults :func:`is_grad_enabled` when deciding whether
to attach a backward graph to the result of an operation. Disabling
gradients inside evaluation and data-statistics code keeps memory flat and
is also what the gradient-checkpointing implementation uses to run a
"recording-free" forward pass.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_GRAD_ENABLED = True


def is_grad_enabled() -> bool:
    """Return True when operations should record a backward graph."""
    return _GRAD_ENABLED


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable gradient recording."""
    global _GRAD_ENABLED
    _GRAD_ENABLED = bool(enabled)


@contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables gradient recording within its body."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


@contextmanager
def enable_grad() -> Iterator[None]:
    """Context manager that re-enables gradient recording within its body."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = True
    try:
        yield
    finally:
        _GRAD_ENABLED = previous
