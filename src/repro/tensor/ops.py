"""Differentiable operations for the autograd engine.

Every public function here takes and returns :class:`~repro.tensor.core.Tensor`
objects. Operand coercion happens in the thin functional wrappers so that the
:class:`Function` subclasses can assume every differentiable operand is a
tensor; constants become non-grad tensors, and integer index arrays stay raw
numpy (they are data, not differentiable inputs).
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple, Union

import numpy as np

from .core import Function, Tensor, unbroadcast

Axis = Optional[Union[int, Tuple[int, ...]]]


def _as_tensor(value: Any) -> Tensor:
    return value if isinstance(value, Tensor) else Tensor(np.asarray(value, dtype=float))


def _as_index(value: Any) -> np.ndarray:
    data = value.data if isinstance(value, Tensor) else value
    return np.asarray(data)


# ---------------------------------------------------------------------------
# Pointwise binary arithmetic
# ---------------------------------------------------------------------------


class Add(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad_out: np.ndarray):
        a_shape, b_shape = self.saved
        return unbroadcast(grad_out, a_shape), unbroadcast(grad_out, b_shape)


class Sub(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad_out: np.ndarray):
        a_shape, b_shape = self.saved
        return unbroadcast(grad_out, a_shape), unbroadcast(-grad_out, b_shape)


class Mul(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_out: np.ndarray):
        a, b = self.saved
        return unbroadcast(grad_out * b, a.shape), unbroadcast(grad_out * a, b.shape)


class Div(Function):
    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad_out: np.ndarray):
        a, b = self.saved
        grad_a = unbroadcast(grad_out / b, a.shape)
        grad_b = unbroadcast(-grad_out * a / (b * b), b.shape)
        return grad_a, grad_b


class Neg(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return -a

    def backward(self, grad_out: np.ndarray):
        return (-grad_out,)


class Pow(Function):
    def forward(self, a: np.ndarray, exponent: float) -> np.ndarray:
        self.save_for_backward(a, exponent)
        return a**exponent

    def backward(self, grad_out: np.ndarray):
        a, exponent = self.saved
        return (grad_out * exponent * a ** (exponent - 1),)


class MatMul(Function):
    """Batched matrix multiply over the trailing two axes."""

    def forward(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.ndim < 2 or b.ndim < 2:
            raise ValueError("matmul requires operands with at least 2 dimensions")
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad_out: np.ndarray):
        a, b = self.saved
        grad_a = unbroadcast(grad_out @ np.swapaxes(b, -1, -2), a.shape)
        grad_b = unbroadcast(np.swapaxes(a, -1, -2) @ grad_out, b.shape)
        return grad_a, grad_b


# ---------------------------------------------------------------------------
# Pointwise unary functions
# ---------------------------------------------------------------------------


class Identity(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        return a.copy()

    def backward(self, grad_out: np.ndarray):
        return (grad_out,)


class Exp(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray):
        (out,) = self.saved
        return (grad_out * out,)


class Log(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad_out: np.ndarray):
        (a,) = self.saved
        return (grad_out / a,)


class Sqrt(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray):
        (out,) = self.saved
        return (grad_out / (2.0 * out),)


class Tanh(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray):
        (out,) = self.saved
        return (grad_out * (1.0 - out * out),)


class Sigmoid(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad_out: np.ndarray):
        (out,) = self.saved
        return (grad_out * out * (1.0 - out),)


class Relu(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a > 0)
        return np.maximum(a, 0.0)

    def backward(self, grad_out: np.ndarray):
        (mask,) = self.saved
        return (grad_out * mask,)


class Abs(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad_out: np.ndarray):
        (sign,) = self.saved
        return (grad_out * sign,)


_GELU_C = np.sqrt(2.0 / np.pi)


class Gelu(Function):
    """GELU with the tanh approximation (matches common GPU kernels)."""

    def forward(self, a: np.ndarray) -> np.ndarray:
        inner = _GELU_C * (a + 0.044715 * a**3)
        t = np.tanh(inner)
        self.save_for_backward(a, t)
        return 0.5 * a * (1.0 + t)

    def backward(self, grad_out: np.ndarray):
        a, t = self.saved
        d_inner = _GELU_C * (1.0 + 3 * 0.044715 * a**2)
        grad = 0.5 * (1.0 + t) + 0.5 * a * (1.0 - t * t) * d_inner
        return (grad_out * grad,)


class Silu(Function):
    """SiLU / Swish: the activation inside Mixtral's SwiGLU experts."""

    def forward(self, a: np.ndarray) -> np.ndarray:
        sig = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(a, sig)
        return a * sig

    def backward(self, grad_out: np.ndarray):
        a, sig = self.saved
        return (grad_out * (sig + a * sig * (1.0 - sig)),)


class Softplus(Function):
    def forward(self, a: np.ndarray) -> np.ndarray:
        self.save_for_backward(a)
        return np.logaddexp(0.0, a)

    def backward(self, grad_out: np.ndarray):
        (a,) = self.saved
        return (grad_out / (1.0 + np.exp(-a)),)


# ---------------------------------------------------------------------------
# Normalizing / reducing operations
# ---------------------------------------------------------------------------


class Softmax(Function):
    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out = e / e.sum(axis=axis, keepdims=True)
        self.save_for_backward(out, axis)
        return out

    def backward(self, grad_out: np.ndarray):
        out, axis = self.saved
        inner = (grad_out * out).sum(axis=axis, keepdims=True)
        return (out * (grad_out - inner),)


class LogSoftmax(Function):
    def forward(self, a: np.ndarray, axis: int = -1) -> np.ndarray:
        shifted = a - a.max(axis=axis, keepdims=True)
        log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out = shifted - log_z
        self.save_for_backward(np.exp(out), axis)
        return out

    def backward(self, grad_out: np.ndarray):
        softmax_out, axis = self.saved
        return (grad_out - softmax_out * grad_out.sum(axis=axis, keepdims=True),)


class Sum(Function):
    def forward(self, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        self.save_for_backward(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims)

    def backward(self, grad_out: np.ndarray):
        shape, axis, keepdims = self.saved
        grad = np.asarray(grad_out)
        if axis is not None and not keepdims:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            for ax in sorted(a % len(shape) for a in axes):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).copy(),)


class Mean(Function):
    def forward(self, a: np.ndarray, axis: Axis = None, keepdims: bool = False) -> np.ndarray:
        self.save_for_backward(a.shape, axis, keepdims)
        return a.mean(axis=axis, keepdims=keepdims)

    def backward(self, grad_out: np.ndarray):
        shape, axis, keepdims = self.saved
        if axis is None:
            count = int(np.prod(shape))
            axes: Tuple[int, ...] = tuple(range(len(shape)))
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            axes = tuple(a % len(shape) for a in axes)
            count = int(np.prod([shape[a] for a in axes]))
        grad = np.asarray(grad_out)
        if not keepdims:
            for ax in sorted(axes):
                grad = np.expand_dims(grad, ax)
        return (np.broadcast_to(grad, shape).copy() / count,)


class Max(Function):
    def forward(self, a: np.ndarray, axis: Optional[int] = None, keepdims: bool = False) -> np.ndarray:
        out = a.max(axis=axis, keepdims=True) if axis is not None else a.max()
        mask = a == (out if axis is not None else out)
        counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
        self.save_for_backward(mask, counts, a.shape, axis, keepdims)
        if axis is not None and not keepdims:
            out = np.squeeze(out, axis=axis)
        return np.asarray(out)

    def backward(self, grad_out: np.ndarray):
        mask, counts, shape, axis, keepdims = self.saved
        grad = np.asarray(grad_out)
        if axis is not None and not keepdims:
            grad = np.expand_dims(grad, axis)
        return (mask * grad / counts,)


# ---------------------------------------------------------------------------
# Shape manipulation
# ---------------------------------------------------------------------------


class Reshape(Function):
    def forward(self, a: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
        self.save_for_backward(a.shape)
        return a.reshape(shape)

    def backward(self, grad_out: np.ndarray):
        (shape,) = self.saved
        return (grad_out.reshape(shape),)


class Transpose(Function):
    def forward(self, a: np.ndarray, axes: Optional[Tuple[int, ...]] = None) -> np.ndarray:
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        self.save_for_backward(axes)
        return np.transpose(a, axes)

    def backward(self, grad_out: np.ndarray):
        (axes,) = self.saved
        inverse = np.argsort(axes)
        return (np.transpose(grad_out, inverse),)


class GetItem(Function):
    def forward(self, a: np.ndarray, index: Any) -> np.ndarray:
        self.save_for_backward(a.shape, a.dtype, index)
        return a[index]

    def backward(self, grad_out: np.ndarray):
        shape, dtype, index = self.saved
        grad = np.zeros(shape, dtype=dtype)
        np.add.at(grad, index, grad_out)
        return (grad,)


class Pad(Function):
    """Constant (zero) padding, used by the causal depthwise convolution."""

    def forward(self, a: np.ndarray, pad_width: Tuple[Tuple[int, int], ...]) -> np.ndarray:
        self.save_for_backward(pad_width, a.shape)
        return np.pad(a, pad_width)

    def backward(self, grad_out: np.ndarray):
        pad_width, shape = self.saved
        slices = tuple(slice(lo, lo + dim) for (lo, _hi), dim in zip(pad_width, shape))
        return (grad_out[slices],)


class Concat(Function):
    def forward(self, *arrays: np.ndarray, axis: int = 0) -> np.ndarray:
        self.save_for_backward(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_out: np.ndarray):
        axis, sizes = self.saved
        grads = []
        start = 0
        for size in sizes:
            index = [slice(None)] * grad_out.ndim
            index[axis] = slice(start, start + size)
            grads.append(grad_out[tuple(index)])
            start += size
        return tuple(grads)


# ---------------------------------------------------------------------------
# Gather / scatter — the primitives behind embeddings and MoE routing
# ---------------------------------------------------------------------------


class Embedding(Function):
    """Row gather ``weight[ids]`` with scatter-add backward."""

    def forward(self, weight: np.ndarray, ids: np.ndarray) -> np.ndarray:
        self.save_for_backward(weight.shape, weight.dtype, ids)
        return weight[ids]

    def backward(self, grad_out: np.ndarray):
        shape, dtype, ids = self.saved
        grad = np.zeros(shape, dtype=dtype)
        flat_ids = ids.reshape(-1)
        np.add.at(grad, flat_ids, grad_out.reshape(flat_ids.shape[0], shape[-1]))
        return (grad,)


class TakeRows(Function):
    """Select rows of a 2-D tensor — dispatching tokens to an expert."""

    def forward(self, a: np.ndarray, idx: np.ndarray) -> np.ndarray:
        self.save_for_backward(a.shape, a.dtype, idx)
        return a[idx]

    def backward(self, grad_out: np.ndarray):
        shape, dtype, idx = self.saved
        grad = np.zeros(shape, dtype=dtype)
        np.add.at(grad, idx, grad_out)
        return (grad,)


class ScatterRows(Function):
    """Accumulate rows into a fresh zero tensor — combining expert outputs."""

    def forward(self, src: np.ndarray, idx: np.ndarray, num_rows: int) -> np.ndarray:
        self.save_for_backward(idx)
        out = np.zeros((num_rows,) + src.shape[1:], dtype=src.dtype)
        np.add.at(out, idx, src)
        return out

    def backward(self, grad_out: np.ndarray):
        (idx,) = self.saved
        return (grad_out[idx],)


class Where(Function):
    def forward(self, a: np.ndarray, b: np.ndarray, condition: np.ndarray) -> np.ndarray:
        self.save_for_backward(condition, a.shape, b.shape)
        return np.where(condition, a, b)

    def backward(self, grad_out: np.ndarray):
        condition, a_shape, b_shape = self.saved
        grad_a = unbroadcast(np.where(condition, grad_out, 0.0), a_shape)
        grad_b = unbroadcast(np.where(condition, 0.0, grad_out), b_shape)
        return grad_a, grad_b


class Dropout(Function):
    def forward(self, a: np.ndarray, mask: np.ndarray, scale: float) -> np.ndarray:
        self.save_for_backward(mask, scale)
        return a * mask * scale

    def backward(self, grad_out: np.ndarray):
        mask, scale = self.saved
        return (grad_out * mask * scale,)


# ---------------------------------------------------------------------------
# Selective scan — the state-space recurrence inside the Mamba mixer
# ---------------------------------------------------------------------------


class ScanDiag(Function):
    """Diagonal linear recurrence ``h_t = decay_t * h_{t-1} + x_t``.

    Inputs have shape ``(batch, length, channels)`` where ``channels`` may
    be a flattened (model_dim x state_dim) axis — the recurrence is fully
    elementwise across channels. Returns the stacked hidden states.

    The backward pass runs the adjoint recurrence in reverse time:
    ``a_t = g_t + decay_{t+1} * a_{t+1}``, with ``dX_t = a_t`` and
    ``dDecay_t = a_t * h_{t-1}``.
    """

    def forward(self, decay: np.ndarray, x: np.ndarray) -> np.ndarray:
        if decay.shape != x.shape:
            raise ValueError(f"decay shape {decay.shape} != input shape {x.shape}")
        batch, length, channels = x.shape
        h = np.zeros((batch, length, channels), dtype=x.dtype)
        state = np.zeros((batch, channels), dtype=x.dtype)
        for t in range(length):
            state = decay[:, t] * state + x[:, t]
            h[:, t] = state
        self.save_for_backward(decay, h)
        return h

    def backward(self, grad_out: np.ndarray):
        decay, h = self.saved
        batch, length, channels = h.shape
        grad_x = np.zeros_like(h)
        grad_decay = np.zeros_like(decay)
        adjoint = np.zeros((batch, channels), dtype=h.dtype)
        for t in range(length - 1, -1, -1):
            adjoint = grad_out[:, t] + adjoint
            grad_x[:, t] = adjoint
            previous = h[:, t - 1] if t > 0 else np.zeros((batch, channels), dtype=h.dtype)
            grad_decay[:, t] = adjoint * previous
            adjoint = adjoint * decay[:, t]
        return grad_decay, grad_x


# ---------------------------------------------------------------------------
# Functional wrappers
# ---------------------------------------------------------------------------


def identity(a: Tensor) -> Tensor:
    return Identity.apply(_as_tensor(a))


def add(a, b) -> Tensor:
    return Add.apply(_as_tensor(a), _as_tensor(b))


def sub(a, b) -> Tensor:
    return Sub.apply(_as_tensor(a), _as_tensor(b))


def mul(a, b) -> Tensor:
    return Mul.apply(_as_tensor(a), _as_tensor(b))


def div(a, b) -> Tensor:
    return Div.apply(_as_tensor(a), _as_tensor(b))


def neg(a) -> Tensor:
    return Neg.apply(_as_tensor(a))


def pow(a, exponent: float) -> Tensor:  # noqa: A001 - mirrors numpy naming
    return Pow.apply(_as_tensor(a), float(exponent))


def matmul(a, b) -> Tensor:
    return MatMul.apply(_as_tensor(a), _as_tensor(b))


def exp(a) -> Tensor:
    return Exp.apply(_as_tensor(a))


def log(a) -> Tensor:
    return Log.apply(_as_tensor(a))


def sqrt(a) -> Tensor:
    return Sqrt.apply(_as_tensor(a))


def tanh(a) -> Tensor:
    return Tanh.apply(_as_tensor(a))


def sigmoid(a) -> Tensor:
    return Sigmoid.apply(_as_tensor(a))


def relu(a) -> Tensor:
    return Relu.apply(_as_tensor(a))


def abs(a) -> Tensor:  # noqa: A001 - mirrors numpy naming
    return Abs.apply(_as_tensor(a))


def gelu(a) -> Tensor:
    return Gelu.apply(_as_tensor(a))


def silu(a) -> Tensor:
    return Silu.apply(_as_tensor(a))


def softplus(a) -> Tensor:
    return Softplus.apply(_as_tensor(a))


def softmax(a, axis: int = -1) -> Tensor:
    return Softmax.apply(_as_tensor(a), axis=axis)


def log_softmax(a, axis: int = -1) -> Tensor:
    return LogSoftmax.apply(_as_tensor(a), axis=axis)


def sum(a, axis: Axis = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return Sum.apply(_as_tensor(a), axis=axis, keepdims=keepdims)


def mean(a, axis: Axis = None, keepdims: bool = False) -> Tensor:
    return Mean.apply(_as_tensor(a), axis=axis, keepdims=keepdims)


def max(a, axis: Optional[int] = None, keepdims: bool = False) -> Tensor:  # noqa: A001
    return Max.apply(_as_tensor(a), axis=axis, keepdims=keepdims)


def reshape(a, shape: Sequence[int]) -> Tensor:
    return Reshape.apply(_as_tensor(a), tuple(shape))


def transpose(a, axes: Optional[Sequence[int]] = None) -> Tensor:
    return Transpose.apply(_as_tensor(a), tuple(axes) if axes is not None else None)


def getitem(a, index: Any) -> Tensor:
    if isinstance(index, Tensor):
        index = index.data.astype(np.int64)
    return GetItem.apply(_as_tensor(a), index)


def pad(a, pad_width: Sequence[Tuple[int, int]]) -> Tensor:
    return Pad.apply(_as_tensor(a), tuple(tuple(p) for p in pad_width))


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    return Concat.apply(*[_as_tensor(t) for t in tensors], axis=axis)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    expanded = []
    for t in tensors:
        t = _as_tensor(t)
        new_shape = list(t.shape)
        new_shape.insert(axis if axis >= 0 else len(new_shape) + axis + 1, 1)
        expanded.append(reshape(t, new_shape))
    return concat(expanded, axis=axis)


def embedding(weight: Tensor, ids) -> Tensor:
    return Embedding.apply(_as_tensor(weight), _as_index(ids).astype(np.int64))


def take_rows(a: Tensor, idx) -> Tensor:
    return TakeRows.apply(_as_tensor(a), _as_index(idx).astype(np.int64))


def scatter_rows(src: Tensor, idx, num_rows: int) -> Tensor:
    return ScatterRows.apply(_as_tensor(src), _as_index(idx).astype(np.int64), int(num_rows))


def where(condition, a, b) -> Tensor:
    return Where.apply(_as_tensor(a), _as_tensor(b), _as_index(condition).astype(bool))


def dropout(a: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    if not training or p <= 0.0:
        return _as_tensor(a)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(a.shape) >= p).astype(a.dtype if isinstance(a, Tensor) else float)
    return Dropout.apply(_as_tensor(a), mask, 1.0 / (1.0 - p))


def scan_diag(decay: Tensor, x: Tensor) -> Tensor:
    return ScanDiag.apply(_as_tensor(decay), _as_tensor(x))
