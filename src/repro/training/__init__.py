"""Fine-tuning harness (substrate S7)."""

from .evaluate import evaluate, evaluate_choice, evaluate_exact
from .loadbalance import LoadDistribution, measure_load_distribution
from .metrics import EpochMetrics, TrainingHistory
from .trainer import FineTuner, pretrain_language_model

__all__ = [
    "EpochMetrics",
    "FineTuner",
    "LoadDistribution",
    "TrainingHistory",
    "evaluate",
    "evaluate_choice",
    "evaluate_exact",
    "measure_load_distribution",
    "pretrain_language_model",
]
