"""Evaluation harness: multiple-choice (HellaSwag) and exact-match (GSM8K).

Both evaluators run the model in eval mode under ``no_grad`` and restore
the previous training mode afterwards. Because every synthetic answer is
a single token, both reduce to scoring the logits at the final prompt
position — multiple choice compares the candidate answer logits, exact
match requires the global argmax to equal the answer token.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..data import EvalDataset
from ..tensor import no_grad


def _final_logits(model, prompt_ids: np.ndarray) -> np.ndarray:
    logits = model(prompt_ids[None, :])
    return logits.data[0, -1]


def evaluate_choice(model, dataset: EvalDataset, limit: Optional[int] = None) -> float:
    """Fraction of items whose true answer outscores all distractors."""
    was_training = model.training
    model.eval()
    correct = 0
    items = dataset.items[:limit] if limit is not None else dataset.items
    if not items:
        raise ValueError("evaluation dataset is empty")
    with no_grad():
        for item in items:
            logits = _final_logits(model, item.prompt_ids)
            scores = [float(logits[int(choice[0])]) for choice in item.choices]
            if int(np.argmax(scores)) == item.correct_index:
                correct += 1
    if was_training:
        model.train()
    return correct / len(items)


def evaluate_exact(model, dataset: EvalDataset, limit: Optional[int] = None) -> float:
    """Fraction of items where the argmax token equals the answer token."""
    was_training = model.training
    model.eval()
    correct = 0
    items = dataset.items[:limit] if limit is not None else dataset.items
    if not items:
        raise ValueError("evaluation dataset is empty")
    with no_grad():
        for item in items:
            logits = _final_logits(model, item.prompt_ids)
            answer_token = int(item.choices[item.correct_index][0])
            if int(np.argmax(logits)) == answer_token:
                correct += 1
    if was_training:
        model.train()
    return correct / len(items)


def evaluate(model, dataset: EvalDataset, limit: Optional[int] = None) -> float:
    """Dispatch on the dataset's item kind."""
    kind = dataset.items[0].kind if dataset.items else "choice"
    if kind == "exact":
        return evaluate_exact(model, dataset, limit=limit)
    return evaluate_choice(model, dataset, limit=limit)
