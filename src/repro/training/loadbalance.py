"""Expert load-distribution measurement (the paper's Fig. 11 study).

The paper extracts 1,000 examples, runs them through the model before and
after fine-tuning, and reports the average number of tokens per query
routed to each expert plus the variance across experts. This module
reproduces that measurement on the trainable models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import DataLoader, SyntheticDataset
from ..tensor import no_grad


@dataclass
class LoadDistribution:
    """Per-expert token load for one model/dataset measurement."""

    tokens_per_query: np.ndarray  # (num_experts,) mean tokens per query
    num_queries: int
    label: str = ""

    @property
    def variance(self) -> float:
        """Variance across experts — the paper's imbalance metric."""
        return float(np.var(self.tokens_per_query))

    @property
    def normalized_shares(self) -> np.ndarray:
        total = self.tokens_per_query.sum()
        if total == 0:
            return np.zeros_like(self.tokens_per_query)
        return self.tokens_per_query / total

    def imbalance_ratio(self) -> float:
        """Max/mean expert load (1.0 = perfectly balanced)."""
        mean = self.tokens_per_query.mean()
        if mean == 0:
            return 0.0
        return float(self.tokens_per_query.max() / mean)


def measure_load_distribution(
    model,
    dataset: SyntheticDataset,
    num_queries: int = 1000,
    batch_size: int = 1,
    label: str = "",
    seed: int = 0,
) -> LoadDistribution:
    """Route ``num_queries`` examples and average expert loads per query.

    The default ``batch_size=1`` routes each query unpadded, so padding
    tokens never pollute the routing statistics (the paper's measurement
    runs real examples through the router).
    """
    subset = dataset.subset(num_queries, rng=np.random.default_rng(seed))
    loader = DataLoader(subset, batch_size=batch_size, shuffle=False, seed=seed)
    was_training = model.training
    model.eval()
    model.reset_expert_load()
    queries = 0
    with no_grad():
        for batch in loader:
            model(batch.input_ids)
            queries += batch.batch_size
    totals = model.expert_load().astype(np.float64)
    num_moe_layers = len(model.moe_layers())
    if was_training:
        model.train()
    # Average over layers so the numbers read as tokens/query like Fig. 11.
    per_query = totals / max(1, queries) / max(1, num_moe_layers)
    return LoadDistribution(tokens_per_query=per_query, num_queries=queries, label=label)
