"""Training metric containers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class EpochMetrics:
    """Aggregates for one fine-tuning epoch."""

    epoch: int
    mean_loss: float
    num_queries: int
    num_tokens: int
    wall_seconds: float
    eval_accuracy: Optional[float] = None

    @property
    def queries_per_second(self) -> float:
        """Measured throughput in the paper's metric (queries/second)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.num_queries / self.wall_seconds


@dataclass
class TrainingHistory:
    """Per-epoch metrics for a whole fine-tuning run."""

    epochs: List[EpochMetrics] = field(default_factory=list)

    def append(self, metrics: EpochMetrics) -> None:
        self.epochs.append(metrics)

    @property
    def losses(self) -> List[float]:
        return [m.mean_loss for m in self.epochs]

    @property
    def accuracies(self) -> List[Optional[float]]:
        return [m.eval_accuracy for m in self.epochs]

    @property
    def final_accuracy(self) -> Optional[float]:
        for metrics in reversed(self.epochs):
            if metrics.eval_accuracy is not None:
                return metrics.eval_accuracy
        return None

    def best_accuracy(self) -> Optional[float]:
        values = [a for a in self.accuracies if a is not None]
        return max(values) if values else None
