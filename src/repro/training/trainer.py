"""Fine-tuning loop reproducing the paper's training setup.

The paper fine-tunes with LLaMA-Factory: AdamW, constant learning rate
(5e-5 at full scale), 10 epochs, loss on answer tokens only, QLoRA +
gradient checkpointing for Mixtral and full fine-tuning for BlackMamba.
:class:`FineTuner` implements the same loop over the synthetic datasets;
:func:`pretrain_language_model` provides the "pre-trained" starting state
(plain LM objective plus a router load-balancing loss, giving the balanced
routers that pre-trained Mixtral exhibits in the paper's Fig. 11).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from ..data import Batch, DataLoader, SyntheticDataset
from ..nn import cross_entropy
from ..optim import AdamW
from .metrics import EpochMetrics, TrainingHistory


class FineTuner:
    """Epoch-based supervised fine-tuning driver."""

    def __init__(
        self,
        model,
        dataset: SyntheticDataset,
        batch_size: int = 8,
        learning_rate: float = 5e-3,
        weight_decay: float = 0.0,
        aux_loss_weight: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.model = model
        self.dataset = dataset
        self.batch_size = batch_size
        self.aux_loss_weight = aux_loss_weight
        self.loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
        self.optimizer = AdamW(model.parameters(), lr=learning_rate, weight_decay=weight_decay)
        self.history = TrainingHistory()
        if aux_loss_weight != 0:
            self.model.set_aux_loss(True)

    def _step(self, batch: Batch) -> float:
        logits = self.model(batch.input_ids)
        loss = cross_entropy(logits, batch.labels)
        if self.aux_loss_weight != 0:
            aux = self.model.collect_aux_loss()
            if aux is not None:
                loss = loss + aux * self.aux_loss_weight
        self.optimizer.zero_grad()
        loss.backward()
        self.optimizer.step()
        return float(loss.item())

    def train_epoch(self, epoch: int) -> EpochMetrics:
        self.model.train()
        losses = []
        queries = 0
        tokens = 0
        start = time.perf_counter()
        for batch in self.loader:
            losses.append(self._step(batch))
            queries += batch.batch_size
            tokens += batch.num_tokens
        wall = time.perf_counter() - start
        return EpochMetrics(
            epoch=epoch,
            mean_loss=float(np.mean(losses)) if losses else float("nan"),
            num_queries=queries,
            num_tokens=tokens,
            wall_seconds=wall,
        )

    def train(
        self,
        num_epochs: int = 10,
        eval_fn: Optional[Callable[[], float]] = None,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run ``num_epochs`` epochs; ``eval_fn`` is called after each one
        (the paper tests accuracy at every epoch, Fig. 3)."""
        for epoch in range(1, num_epochs + 1):
            metrics = self.train_epoch(epoch)
            if eval_fn is not None:
                metrics.eval_accuracy = eval_fn()
            self.history.append(metrics)
            if verbose:
                acc = f", acc={metrics.eval_accuracy:.3f}" if metrics.eval_accuracy is not None else ""
                print(
                    f"epoch {epoch:2d}: loss={metrics.mean_loss:.4f}, "
                    f"{metrics.queries_per_second:.1f} q/s{acc}"
                )
        return self.history


def pretrain_language_model(
    model,
    dataset: SyntheticDataset,
    steps: int = 60,
    batch_size: int = 8,
    learning_rate: float = 2e-3,
    aux_loss_weight: float = 1e-2,
    seed: int = 0,
) -> float:
    """Light LM pre-training to produce a plausible pre-trained checkpoint.

    Trains next-token prediction on *all* positions (not just answers) with
    a Switch-style auxiliary loss that balances the routers — mirroring how
    production MoE models are pre-trained for balance. Returns the final
    loss. Fine-tuning experiments start from this state so that
    pre/post-fine-tuning comparisons (Fig. 3 epoch 0, Fig. 11 "HE" vs
    "HE_tuned") are meaningful.
    """
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, seed=seed)
    optimizer = AdamW(model.parameters(), lr=learning_rate)
    model.set_aux_loss(aux_loss_weight != 0)
    model.train()
    last_loss = float("nan")
    done = 0
    while done < steps:
        for batch in loader:
            # Plain LM objective: predict every next token.
            inputs = batch.input_ids
            targets = np.full_like(inputs, -100)
            targets[:, :-1] = inputs[:, 1:]
            pad_id = dataset.vocab.pad_id
            targets[targets == pad_id] = -100
            logits = model(inputs)
            loss = cross_entropy(logits, targets)
            if aux_loss_weight != 0:
                aux = model.collect_aux_loss()
                if aux is not None:
                    loss = loss + aux * aux_loss_weight
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
            last_loss = float(loss.item())
            done += 1
            if done >= steps:
                break
    model.set_aux_loss(False)
    return last_loss
