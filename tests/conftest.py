"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import build_benchmark_suite, build_pretraining_corpus


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_suite():
    """Small shared dataset suite; session-scoped because construction is
    the slow part and datasets are immutable."""
    return build_benchmark_suite(train_size=300, eval_size=60, length_scale=0.2)


@pytest.fixture(scope="session")
def tiny_corpus(tiny_suite):
    return build_pretraining_corpus(tiny_suite.vocab, size=300)


def finite_difference(f, array: np.ndarray, index, eps: float = 1e-6) -> float:
    """Central finite difference of scalar-valued ``f`` wrt one element."""
    original = array[index]
    array[index] = original + eps
    up = f()
    array[index] = original - eps
    down = f()
    array[index] = original
    return (up - down) / (2 * eps)


@pytest.fixture
def fd():
    return finite_difference
