"""Violation: builtin hash() feeding a persisted digest/filename."""


def digest_for(key: tuple) -> str:
    return f"{hash(key):x}.trace"
