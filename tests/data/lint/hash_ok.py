"""Compliant twin: hash() only inside __hash__; sha256 for persistence."""

import hashlib


class Key:
    def __init__(self, parts: tuple) -> None:
        self.parts = parts

    def __hash__(self) -> int:
        return hash(self.parts)

    def digest(self) -> str:
        canonical = repr(self.parts).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()
