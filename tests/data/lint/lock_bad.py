"""Violation: guarded shared state mutated outside its lock."""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records = []

    def add(self, item) -> None:
        with self._lock:
            self._records.append(item)

    def drop_all(self) -> None:
        self._records.clear()
