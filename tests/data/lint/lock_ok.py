"""Compliant twin: every mutation of guarded state holds the lock.

``self.enabled`` is written without the lock but is never mutated
*under* it either, so it is not lock-guarded state — flagging it would
be a false positive the rule must not produce.
"""

import threading


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records = []
        self.enabled = True

    def add(self, item) -> None:
        with self._lock:
            self._records.append(item)

    def drop_all(self) -> None:
        with self._lock:
            self._records.clear()

    def configure(self, enabled: bool) -> None:
        self.enabled = enabled
