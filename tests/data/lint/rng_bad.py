"""Violation: unseeded / global-state random generators."""

import random

import numpy as np


def init_weights(n: int):
    rng = np.random.default_rng()
    return rng.standard_normal(n)


def pick(items):
    return random.choice(items)
