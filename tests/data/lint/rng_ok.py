"""Compliant twin: explicit seeds or injected generators only."""

from typing import Optional

import numpy as np


def init_weights(n: int, rng: Optional[np.random.Generator] = None):
    rng = rng if rng is not None else np.random.default_rng(1234)
    return rng.standard_normal(n)


def pick(items, rng: np.random.Generator):
    return items[rng.integers(0, len(items))]
