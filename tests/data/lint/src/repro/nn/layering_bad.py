"""Violation: a substrate module importing telemetry and experiments."""

from ..telemetry import Tracer

import repro.experiments.report


def traced_forward(x):
    return x
