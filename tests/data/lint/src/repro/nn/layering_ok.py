"""Compliant twin: substrates import sideways/down (tensor, rng), never up."""

from ..rng import resolve_rng
from ..tensor import Tensor


def forward(x: Tensor, rng=None) -> Tensor:
    resolve_rng(rng)
    return x
