"""Allow-listed twin: the serving layer may read the clock (TTLs,
stale-while-revalidate age checks, run-store ingest timestamps)."""

import time


def catalog_age(fetched_at: float) -> float:
    return time.monotonic() - fetched_at
