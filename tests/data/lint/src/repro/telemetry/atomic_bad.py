"""Violation: truncating write in a persistence layer, no os.replace."""

import json


def write_report(path, payload) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
