"""Compliant twin: temp-file + os.replace; appends and reads stay legal."""

import json
import os
import tempfile


def write_report(path, payload) -> None:
    fd, temp_name = tempfile.mkstemp(dir=os.path.dirname(path) or ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        os.replace(temp_name, path)
    except BaseException:
        os.unlink(temp_name)
        raise


def append_index_line(path, line: str) -> None:
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def read_report(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
