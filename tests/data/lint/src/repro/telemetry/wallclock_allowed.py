"""Allow-listed twin: the measurement layer may read the clock."""

import time


def measure(fn) -> float:
    started = time.perf_counter()
    fn()
    return time.perf_counter() - started
