"""Quiet: real violations with both suppression spellings (trailing
comment on the offending line; standalone comment on the line above)."""

import time


def stamp_trailing() -> float:
    return time.time()  # repro: allow[no-wall-clock] fixture: documented escape


def stamp_line_above() -> float:
    # repro: allow[no-wall-clock]
    return time.time()
