"""Violation: a suppression that silences nothing is itself a finding."""


def harmless() -> int:
    return 1  # repro: allow[no-wall-clock]
