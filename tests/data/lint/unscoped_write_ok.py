"""Quiet: atomic-writes only scopes the persistence layers — a benchmark
or experiment writing its own artifact with open(..., 'w') is legal."""

import json


def write_bench(path, payload) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
