"""Violation: reads the clock on what should be a deterministic path."""

import time
from datetime import datetime


def make_run_id(command: str) -> str:
    return f"{command}-{time.time()}"


def stamp_report() -> str:
    return datetime.now().isoformat()
