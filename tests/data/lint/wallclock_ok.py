"""Compliant twin: timestamps arrive as arguments (run-store contract)."""


def make_run_id(command: str, timestamp: float) -> str:
    return f"{command}-{timestamp}"


def stamp_report(now: "datetime") -> str:
    return now.isoformat()
