"""Gradient checkpointing must be gradient-equivalent to plain execution."""

import numpy as np
import pytest

from repro import nn
from repro.tensor import Tensor, checkpoint, no_grad, ops


def make_block(rng):
    w1 = Tensor(rng.standard_normal((6, 8)), requires_grad=True)
    w2 = Tensor(rng.standard_normal((8, 6)), requires_grad=True)

    def block(x):
        return ops.silu(x @ w1) @ w2

    return block, (w1, w2)


class TestCheckpoint:
    def test_forward_value_unchanged(self, rng):
        block, _params = make_block(rng)
        x = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
        plain = block(x)
        ck = checkpoint(block, x)
        np.testing.assert_allclose(ck.data, plain.data)

    def test_gradients_match_plain_backward(self, rng):
        block, (w1, w2) = make_block(rng)
        x = Tensor(rng.standard_normal((3, 6)), requires_grad=True)
        (checkpoint(block, x) ** 2).sum().backward()
        grads_ck = (x.grad.copy(), w1.grad.copy(), w2.grad.copy())
        x.zero_grad(), w1.zero_grad(), w2.zero_grad()
        (block(x) ** 2).sum().backward()
        for ck_grad, plain_grad in zip(grads_ck, (x.grad, w1.grad, w2.grad)):
            np.testing.assert_allclose(ck_grad, plain_grad, rtol=1e-10)

    def test_chained_checkpoints(self, rng):
        block1, params1 = make_block(rng)
        block2, params2 = make_block(rng)
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        out = checkpoint(block2, checkpoint(block1, x))
        out.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in params1 + params2)

    def test_no_grad_mode_just_calls_fn(self, rng):
        block, _ = make_block(rng)
        x = Tensor(rng.standard_normal((2, 6)))
        with no_grad():
            out = checkpoint(block, x)
        assert out._ctx is None

    def test_non_tensor_return_raises(self):
        with pytest.raises(TypeError):
            checkpoint(lambda x: "not a tensor", Tensor([1.0], requires_grad=True))

    def test_module_checkpoint_matches(self, rng):
        """Checkpointing a full Mixtral block reproduces plain gradients."""
        from repro.models import MIXTRAL_TINY
        from repro.models.mixtral import MixtralBlock

        block = MixtralBlock(MIXTRAL_TINY, "full", rng)
        x = Tensor(rng.standard_normal((2, 6, MIXTRAL_TINY.dim)), requires_grad=True)
        (checkpoint(block, x) ** 2).sum().backward()
        ck_param_grads = {n: p.grad.copy() for n, p in block.named_parameters()}
        ck_x_grad = x.grad.copy()
        block.zero_grad()
        x.zero_grad()
        (block(x) ** 2).sum().backward()
        np.testing.assert_allclose(ck_x_grad, x.grad, rtol=1e-8)
        for name, param in block.named_parameters():
            np.testing.assert_allclose(ck_param_grads[name], param.grad, rtol=1e-8, atol=1e-12)
