"""Tests for the cluster planning subsystem."""

import json

import pytest

from repro.cluster import (
    ClusterPlanner,
    ClusterScenario,
    cluster_product,
    pareto_frontier,
)
from repro.cluster.plan import main as plan_main, resolve_gpu_name, resolve_model_key
from repro.gpu import A40, DataParallelSimulator, H100, NVLINK, PCIE_GEN4
from repro.models import MIXTRAL_8X7B
from repro.scenarios import Scenario, SimulationCache, preset


def scenario(n=1, link="nvlink", batch=4, **kw):
    defaults = dict(model=MIXTRAL_8X7B, gpu="A40", batch_size=batch, seq_len=128)
    defaults.update(kw)
    return ClusterScenario(num_gpus=n, interconnect=link, **defaults)


class TestClusterScenario:
    def test_frozen_and_hashable(self):
        a = scenario(n=4)
        b = scenario(n=4)
        assert a == b and hash(a) == hash(b)
        assert a != scenario(n=2)
        with pytest.raises(AttributeError):  # FrozenInstanceError
            a.num_gpus = 8

    def test_interconnect_normalized_on_construction(self):
        assert scenario(link="nvlink") == scenario(link=NVLINK)
        assert scenario(link="PCIe-Gen4").interconnect_spec is PCIE_GEN4

    def test_distinct_from_plain_scenario(self):
        plain = Scenario(model=MIXTRAL_8X7B, gpu="A40", batch_size=4, seq_len=128)
        assert scenario(n=1) != plain

    def test_key_excludes_cluster_axes(self):
        """The load-bearing property: every cluster size/interconnect of
        one replica maps to the same trace-cache key."""
        replica_key = scenario(n=1).replica().key()
        for n in (1, 2, 8):
            for link in ("nvlink", "pcie-gen4"):
                assert scenario(n=n, link=link).key() == replica_key

    def test_cluster_key_includes_cluster_axes(self):
        keys = {scenario(n=n, link=link).cluster_key()
                for n in (1, 2) for link in ("nvlink", "pcie-gen4")}
        assert len(keys) == 4

    def test_labels_carry_cluster_axes(self):
        s = scenario(n=8)
        assert s.label().endswith("_x8_NVLink")
        assert s.label(include_gpu=True) == "mixtral_S4_A40_x8_NVLink"
        assert "_x8_NVLink" in s.qualified_label()

    def test_invalid_num_gpus(self):
        with pytest.raises(ValueError):
            scenario(n=0)

    def test_unknown_interconnect(self):
        with pytest.raises(KeyError):
            scenario(link="token-ring")

    def test_with_preserves_cluster_axes(self):
        s = scenario(n=4, link="pcie-gen4").with_(batch_size=2)
        assert s.num_gpus == 4 and s.interconnect_spec is PCIE_GEN4
        assert s.batch_size == 2

    def test_global_batch_size(self):
        assert scenario(n=4, batch=3).global_batch_size() == 12


class TestClusterTraceSharing:
    def test_cluster_sizes_share_one_simulation(self):
        cache = SimulationCache()
        for n in (1, 2, 4, 8):
            for link in ("nvlink", "pcie-gen4"):
                cache.simulate(scenario(n=n, link=link))
        stats = cache.stats()
        assert stats.misses == 1
        assert stats.hits == 7
        assert stats.entries == 1

    def test_cluster_and_plain_scenarios_share_traces(self):
        cache = SimulationCache()
        cache.simulate(scenario(n=8))
        plain = Scenario(model=MIXTRAL_8X7B, gpu="A40", batch_size=4, seq_len=128)
        cache.simulate(plain)
        assert cache.stats().misses == 1

    def test_estimate_matches_data_parallel_simulator(self):
        cache = SimulationCache()
        estimate = scenario(n=4, link="pcie-gen4").estimate(cache)
        reference = DataParallelSimulator(A40, interconnect=PCIE_GEN4).estimate(
            MIXTRAL_8X7B, 4, 128, num_gpus=4
        )
        assert estimate == reference


class TestClusterProduct:
    def test_replica_axes_outermost(self):
        grid = cluster_product(
            models=(MIXTRAL_8X7B,), gpus=("A40",), batch_sizes=(1, 2),
            seq_lens=(128,), num_gpus=(1, 2), interconnects=("nvlink",),
        )
        assert [(s.batch_size, s.num_gpus) for s in grid] == [
            (1, 1), (1, 2), (2, 1), (2, 2)
        ]

    def test_preset_registered(self):
        grid = preset("cluster-scaling")
        assert len(grid) == 16
        assert all(isinstance(s, ClusterScenario) for s in grid)
        families = {s.config.family for s in grid}
        assert families == {"mixtral", "blackmamba"}


class TestParetoFrontier:
    def _plan(self, cache=None, jobs=1, **kw):
        planner = ClusterPlanner(
            "mixtral-8x7b", dataset="math14k", cache=cache or SimulationCache(), jobs=jobs
        )
        kw.setdefault("gpus", (A40, H100))
        kw.setdefault("providers", ("cudo",))
        kw.setdefault("densities", (False,))
        return planner.plan(**kw)

    def test_frontier_is_nondominated_and_ordered(self):
        plan = self._plan()
        frontier = plan.frontier
        assert frontier
        # Fastest-first, strictly cheaper as we slow down.
        hours = [c.hours for c in frontier]
        dollars = [c.dollars for c in frontier]
        assert hours == sorted(hours)
        assert all(b < a for a, b in zip(dollars, dollars[1:]))
        # Every non-frontier candidate is dominated by a frontier point.
        for candidate in plan.candidates:
            if candidate in frontier:
                continue
            assert any(
                f.hours <= candidate.hours and f.dollars <= candidate.dollars
                for f in frontier
            )

    def test_deadline_selects_cheapest_feasible(self):
        plan = self._plan(deadline_hours=24.0)
        assert plan.cheapest is not None
        assert plan.cheapest.hours <= 24.0
        for candidate in plan.feasible:
            assert plan.cheapest.dollars <= candidate.dollars

    def test_impossible_target_yields_no_recommendation(self):
        plan = self._plan(deadline_hours=1e-6)
        assert plan.cheapest is None and plan.fastest is None
        assert plan.frontier  # the frontier itself is target-independent

    def test_budget_filter(self):
        unconstrained = self._plan()
        ceiling = min(c.dollars for c in unconstrained.candidates) * 1.01
        plan = self._plan(budget_dollars=ceiling)
        assert plan.cheapest is not None
        assert plan.cheapest.dollars <= ceiling

    def test_infeasible_memory_cells_skipped_not_failed(self):
        planner = ClusterPlanner(
            "mixtral-8x7b", dataset="math14k", cache=SimulationCache()
        )
        plan = planner.plan(gpus=("A100-40GB",), providers=("cudo",))
        assert not plan.candidates
        assert plan.skipped

    def test_unpriced_gpu_provider_pair_skipped_before_simulation(self):
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
        plan = planner.plan(gpus=(A40,), providers=("lambda",))  # lambda has no A40
        assert not plan.candidates
        assert any("not priced" in reason for reason in plan.skipped)
        assert cache.stats().lookups == 0  # filtered before tracing

    def test_duplicate_axis_values_collapse(self):
        plan = self._plan(num_gpus=(4, 4), interconnects=("nvlink", NVLINK))
        assert len(plan.candidates) == len({c.label for c in plan.candidates})

    def test_pareto_helper_deterministic_tiebreak(self):
        plan = self._plan()
        shuffled = list(reversed(plan.candidates))
        assert [c.label for c in pareto_frontier(shuffled)] == [
            c.label for c in plan.frontier
        ]


class TestPlannerDeterminismAndReuse:
    def test_jobs_do_not_change_the_plan(self):
        plans = [
            TestParetoFrontier()._plan(jobs=jobs, deadline_hours=24.0)
            for jobs in (1, 4)
        ]
        serial, parallel = (p.to_payload() for p in plans)
        assert serial == parallel
        assert [c.label for c in plans[0].candidates] == [
            c.label for c in plans[1].candidates
        ]

    def test_warm_plan_zero_redundant_simulations(self):
        """Acceptance: a warm planner pass performs zero simulate_step
        calls; within the cold pass, cluster sizes sharing a replica
        scenario simulate once."""
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
        kwargs = dict(gpus=(A40,), providers=("cudo",), densities=(False,))
        cold = planner.plan(**kwargs)
        cold_stats = cache.stats()
        # 4 cluster sizes x 2 interconnects share the single replica.
        assert cold_stats.misses == 1
        assert cold_stats.lookups == 8
        warm = planner.plan(**kwargs)
        warm_stats = cache.stats()
        assert warm_stats.misses == cold_stats.misses
        assert warm_stats.hits == cold_stats.hits + 8
        assert warm.to_payload() == cold.to_payload()

    def test_scaling_a_sweep_does_not_resimulate(self):
        """Scaling a 1-GPU sweep to 8 GPUs reuses the replica traces."""
        cache = SimulationCache()
        planner = ClusterPlanner("mixtral-8x7b", dataset="math14k", cache=cache)
        kwargs = dict(gpus=(A40, H100), providers=("cudo",), densities=(False,))
        planner.plan(num_gpus=(1,), interconnects=("nvlink",), **kwargs)
        misses_single = cache.stats().misses
        planner.plan(num_gpus=(1, 2, 4, 8), **kwargs)
        assert cache.stats().misses == misses_single


class TestCandidateAccounting:
    def test_dollars_are_hours_times_fleet_rate(self):
        plan = TestParetoFrontier()._plan()
        for candidate in plan.candidates:
            fleet_rate = candidate.dollars_per_gpu_hour * candidate.scenario.num_gpus
            assert candidate.dollars == pytest.approx(candidate.hours * fleet_rate)
            assert candidate.total_queries == candidate.num_queries * candidate.epochs

    def test_full_finetune_pays_the_interconnect_tax(self):
        planner = ClusterPlanner(
            "blackmamba-2.8b", dataset="math14k", cache=SimulationCache()
        )
        plan = planner.plan(gpus=(A40,), providers=("cudo",), densities=(False,),
                            num_gpus=(8,))
        by_link = {c.scenario.interconnect_spec.name: c for c in plan.candidates}
        assert by_link["PCIe-Gen4"].dollars > by_link["NVLink"].dollars


class TestPlanCLI:
    def test_model_and_gpu_resolution(self):
        assert resolve_model_key("mixtral") == "mixtral-8x7b"
        assert resolve_model_key("BlackMamba") == "blackmamba-2.8b"
        assert resolve_model_key("mixtral-tiny") == "mixtral-tiny"
        assert resolve_gpu_name("a40") == "A40"
        assert resolve_gpu_name("h100") == "H100-80GB"
        with pytest.raises(KeyError):
            resolve_gpu_name("a100")  # ambiguous: 40GB vs 80GB
        with pytest.raises(KeyError):
            resolve_model_key("gpt2")

    def test_acceptance_command_emits_deterministic_json(self, capsys):
        argv = ["--model", "mixtral", "--gpu", "a40", "--deadline-hours", "24", "--json"]
        assert plan_main(argv) == 0
        first = capsys.readouterr().out
        assert plan_main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["model"] == "mixtral-8x7b"
        assert payload["deadline_hours"] == 24.0
        assert payload["frontier"]
        assert payload["cheapest"] is not None
        assert payload["cheapest"]["hours"] <= 24.0
        hours = [c["hours"] for c in payload["frontier"]]
        assert hours == sorted(hours)  # frontier is fastest-first

    def test_jobs_flag_does_not_change_output(self, capsys):
        base = ["--model", "mixtral", "--gpu", "a40", "--json"]
        assert plan_main(base) == 0
        serial = capsys.readouterr().out
        assert plan_main(base + ["--jobs", "4"]) == 0
        parallel = capsys.readouterr().out
        assert json.loads(serial)["frontier"] == json.loads(parallel)["frontier"]

    def test_text_output_names_recommendation(self, capsys):
        assert plan_main(["--model", "mixtral", "--gpu", "a40",
                          "--deadline-hours", "24"]) == 0
        out = capsys.readouterr().out
        assert "cheapest feasible:" in out
        assert "pareto-optimal configuration" in out

    def test_bad_model_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            plan_main(["--model", "gpt2"])
        assert "unknown model" in capsys.readouterr().err

    def test_bad_num_gpus_errors_cleanly(self, capsys):
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--num-gpus", "0"])
        assert "cluster sizes must be >= 1" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            plan_main(["--model", "mixtral", "--num-gpus", "two"])
        assert "invalid literal" in capsys.readouterr().err


class TestClusterExperiment:
    def test_experiment_registered_and_runs(self):
        from repro.experiments import ALL_EXPERIMENTS, cluster_plan

        assert ALL_EXPERIMENTS["cluster"] is cluster_plan
        result = cluster_plan.run(cache=SimulationCache())
        measured = result.measured_dict()
        assert measured["frontier_size"] >= 1
        assert measured["qlora_x8_nvlink_efficiency"] > 0.97
        assert measured["x8_cost_premium_over_x1"] == pytest.approx(1.0, rel=0.05)
