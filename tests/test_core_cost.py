"""Tests for cost estimation and the cloud price catalog."""

import pytest

from repro.cloud import DEFAULT_CATALOG, GPUPrice, PriceCatalog
from repro.core import CostEstimate, FineTuningCostModel, dataset_num_queries
from repro.gpu import A40, A100_40, A100_80, H100
from repro.models import MIXTRAL_8X7B


class TestPriceCatalog:
    def test_paper_rates(self):
        assert DEFAULT_CATALOG.dollars_per_hour("A40") == 0.79
        assert DEFAULT_CATALOG.dollars_per_hour("A100-80GB") == 1.67
        assert DEFAULT_CATALOG.dollars_per_hour("H100-80GB") == 2.10

    def test_unknown_gpu(self):
        with pytest.raises(KeyError):
            DEFAULT_CATALOG.dollars_per_hour("TPU-v5")

    def test_alternative_provider(self):
        assert DEFAULT_CATALOG.dollars_per_hour("H100-80GB", provider="lambda") == 2.49

    def test_add_and_query(self):
        catalog = PriceCatalog([GPUPrice("A40", "aws", 1.10)])
        assert catalog.dollars_per_hour("A40", "aws") == 1.10
        catalog.add(GPUPrice("A40", "aws", 1.20))
        assert catalog.dollars_per_hour("A40", "aws") == 1.20

    def test_invalid_price(self):
        with pytest.raises(ValueError):
            GPUPrice("A40", "cudo", 0.0)

    def test_listings(self):
        assert "cudo" in DEFAULT_CATALOG.providers()
        assert "A40" in DEFAULT_CATALOG.gpus("cudo")

    def test_providers_for_gpu(self):
        assert DEFAULT_CATALOG.providers_for("A40") == ["cudo", "runpod"]
        assert "lambda" in DEFAULT_CATALOG.providers_for("H100-80GB")
        assert DEFAULT_CATALOG.providers_for("TPU-v5") == []


class TestCostEstimate:
    def test_arithmetic(self):
        estimate = CostEstimate(
            gpu_name="A40", gpu_memory_gb=48, max_batch_size=4, throughput_qps=1.0,
            dollars_per_hour=0.79, num_queries=14000, epochs=10,
        )
        assert estimate.total_queries == 140000
        assert estimate.hours == pytest.approx(140000 / 3600)
        assert estimate.dollars == pytest.approx(0.79 * 140000 / 3600)

    def test_zero_throughput_infinite(self):
        estimate = CostEstimate("A40", 48, 1, 0.0, 0.79, 100, 1)
        assert estimate.hours == float("inf")


class TestFineTuningCostModel:
    def test_table4_cost_within_paper_range(self):
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        estimate = model.estimate(A40, num_queries=14000, epochs=10)
        assert estimate.max_batch_size == 4
        assert estimate.dollars == pytest.approx(32.7, rel=0.15)

    def test_h100_is_cheapest(self):
        """The paper's headline cost conclusion."""
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        ranked = model.rank_gpus([A40, A100_80, H100], num_queries=14000, epochs=10)
        assert ranked[0].gpu_name == "H100-80GB"
        assert ranked[0].dollars < ranked[-1].dollars

    def test_openorca_projection_scale(self):
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "openorca", dense=False)
        estimate = model.estimate(H100, num_queries=dataset_num_queries("openorca"), epochs=10)
        assert estimate.dollars == pytest.approx(3460, rel=0.2)

    def test_simulator_direct_close_to_eq2(self):
        """Eq. 2 at the max batch size must track the simulator closely."""
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        via_fit = model.estimate(A100_80, 14000, use_simulator_directly=False)
        via_sim = model.estimate(A100_80, 14000, use_simulator_directly=True)
        assert via_fit.throughput_qps == pytest.approx(via_sim.throughput_qps, rel=0.25)

    def test_undersized_gpu_raises(self):
        model = FineTuningCostModel(MIXTRAL_8X7B, seq_len=512, dense=True)
        with pytest.raises(ValueError):
            model.estimate(A100_40, 1000)

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "wikipedia")
        with pytest.raises(KeyError):
            dataset_num_queries("wikipedia")

    def test_throughput_model_cached(self):
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        first = model.throughput_model(A40)
        assert model.throughput_model(A40) is first

    def test_dataset_num_queries(self):
        assert dataset_num_queries("math14k") == 14000
        assert dataset_num_queries("openorca") == 2_000_000

    def test_epochs_scale_cost_linearly(self):
        model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        one = model.estimate(H100, 14000, epochs=1)
        ten = model.estimate(H100, 14000, epochs=10)
        assert ten.dollars == pytest.approx(10 * one.dollars, rel=1e-9)
