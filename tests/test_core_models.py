"""Tests for the analytical models (Eq. 1, Eq. 2) and their fitting."""

import numpy as np
import pytest

from repro.core import (
    BatchSizeModel,
    BatchSizeObservation,
    PAPER_BATCH_COEFFICIENTS,
    ThroughputModel,
    ThroughputObservation,
    collect_batch_size_observations,
    collect_throughput_observations,
    fit_dense_sparse,
)
from repro.gpu import A40, A100_40, A100_80, H100
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


class TestBatchSizeModelEq1:
    def make(self, c0=10.0, c1=0.9, model_mem=23.35, overhead=0.0):
        return BatchSizeModel(c0=c0, c1=c1, model_memory_gb=model_mem, overhead_gb=overhead)

    def test_predict_formula_literal(self):
        model = self.make(c0=2.0, c1=0.5)
        # 2 * (48 - 23.35) / (100 * (0.5 + 0.5*0.25)) = 0.7888 -> floor 0
        assert model.predict_raw(48, 100, 0.25) == pytest.approx(
            2.0 * (48 - 23.35) / (100 * 0.625)
        )
        assert model.predict(48, 100, 0.25) == 0

    def test_floor_and_clamp(self):
        model = self.make(c0=100.0, c1=0.0)
        assert isinstance(model.predict(48, 128, 0.25), int)
        assert model.predict(10, 128, 0.25) == 0  # free memory negative

    def test_monotone_in_memory(self):
        model = self.make()
        values = [model.predict(m, 128, 0.25) for m in (40, 48, 80, 120)]
        assert values == sorted(values)

    def test_sparsity_increases_batch(self):
        model = self.make(c1=0.9)
        assert model.predict_raw(80, 128, 0.25) > model.predict_raw(80, 128, 1.0)

    def test_c1_zero_removes_sparsity_effect(self):
        model = self.make(c1=0.0)
        assert model.predict_raw(80, 128, 0.25) == model.predict_raw(80, 128, 1.0)

    def test_invalid_inputs(self):
        model = self.make()
        with pytest.raises(ValueError):
            model.predict_raw(48, 0, 0.25)
        with pytest.raises(ValueError):
            model.predict_raw(48, 128, 0.0)

    def test_fit_recovers_synthetic_coefficients(self):
        truth = self.make(c0=15.0, c1=0.8)
        observations = [
            BatchSizeObservation(m, 23.35, s, sp, truth.predict(m, s, sp))
            for m in (40, 48, 80, 100)
            for s in (64, 128, 256)
            for sp in (0.25, 1.0)
        ]
        fitted = BatchSizeModel.fit(observations)
        assert fitted.c0 == pytest.approx(15.0, rel=0.15)
        assert fitted.c1 == pytest.approx(0.8, abs=0.08)

    def test_fit_on_oracle_recovers_paper_c1(self):
        """Headline reproduction: C1 ~ 0.95 (Mixtral), ~ 0.88 (BlackMamba)."""
        gpus = [A100_40, A40, A100_80, H100]
        for cfg, paper_key in ((MIXTRAL_8X7B, "mixtral"), (BLACKMAMBA_2_8B, "blackmamba")):
            observations = collect_batch_size_observations(cfg, gpus)
            fitted = BatchSizeModel.fit(observations, fit_overhead=True)
            paper_c1 = PAPER_BATCH_COEFFICIENTS[paper_key][1]
            assert fitted.c1 == pytest.approx(paper_c1, abs=0.08)

    def test_extended_fit_beats_literal(self):
        observations = collect_batch_size_observations(MIXTRAL_8X7B, [A100_40, A40, A100_80, H100])
        literal = BatchSizeModel.fit(observations)
        extended = BatchSizeModel.fit(observations, fit_overhead=True)
        assert extended.rmse(observations) < literal.rmse(observations)

    def test_projection_matches_paper_scale(self):
        """Fig. 13: ~28 at 100GB, ~35 at 120GB (ours: 29-31 / 38-41)."""
        observations = collect_batch_size_observations(MIXTRAL_8X7B, [A100_40, A40, A100_80, H100])
        model = BatchSizeModel.fit(observations, fit_overhead=True)
        sweep = model.project_memory_sweep([100, 120], 128, 0.25)
        assert 24 <= sweep[100] <= 34
        assert 31 <= sweep[120] <= 44

    def test_fit_requires_single_model(self):
        mixed = [
            BatchSizeObservation(48, 23.35, 128, 0.25, 5),
            BatchSizeObservation(48, 5.6, 128, 0.25, 20),
        ]
        with pytest.raises(ValueError):
            BatchSizeModel.fit(mixed)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            BatchSizeModel.fit([])


class TestThroughputModelEq2:
    def test_exponent_form_formula(self):
        model = ThroughputModel(c2=1.0, c3=2.0, c4=0.5, form="exponent")
        expected = np.log(4 / 0.25**2) + 0.5
        assert model.predict(4, 0.25) == pytest.approx(expected)

    def test_literal_form_formula(self):
        model = ThroughputModel(c2=1.0, c3=2.0, c4=0.5, form="literal")
        expected = np.log(4 / (0.25 * 2.0)) + 0.5
        assert model.predict(4, 0.25) == pytest.approx(expected)

    def test_intercept_is_batch1_dense_throughput(self):
        model = ThroughputModel(c2=1.3, c3=1.0, c4=0.4)
        assert model.predict(1, 1.0) == pytest.approx(0.4)

    def test_prediction_clamped_nonnegative(self):
        model = ThroughputModel(c2=1.0, c3=0.0, c4=-10.0)
        assert model.predict(1, 1.0) == 0.0

    def test_invalid_inputs(self):
        model = ThroughputModel(c2=1.0, c3=1.0, c4=0.0)
        with pytest.raises(ValueError):
            model.predict(0, 0.25)
        with pytest.raises(ValueError):
            model.predict(4, 1.5)

    def test_fit_recovers_synthetic(self):
        truth = ThroughputModel(c2=0.8, c3=0.5, c4=0.3)
        observations = [
            ThroughputObservation(b, s, truth.predict(b, s))
            for b in (1, 2, 4, 8, 16)
            for s in (0.25, 1.0)
        ]
        fitted = ThroughputModel.fit(observations)
        assert fitted.c2 == pytest.approx(0.8, rel=0.05)
        assert fitted.rmse(observations) < 1e-6

    def test_fit_needs_three_points(self):
        with pytest.raises(ValueError):
            ThroughputModel.fit([ThroughputObservation(1, 1.0, 0.5)] * 2)

    def test_fit_on_simulator_rmse_paper_scale(self):
        """Fig. 14: paper RMSEs are 0.02-0.79; ours must be comparable."""
        dense = collect_throughput_observations(MIXTRAL_8X7B, A40, 80, dense=True)
        sparse = collect_throughput_observations(MIXTRAL_8X7B, A40, 80, dense=False)
        _model, rmse = fit_dense_sparse(dense, sparse)
        assert rmse < 0.3

    def test_fit_blackmamba_rmse(self):
        dense = collect_throughput_observations(BLACKMAMBA_2_8B, A40, 80, dense=True)
        sparse = collect_throughput_observations(BLACKMAMBA_2_8B, A40, 80, dense=False)
        _model, rmse = fit_dense_sparse(dense, sparse)
        assert rmse < 1.6  # paper's own Mamba-CS RMSE is 0.79

    def test_default_sweep_covers_max_batch(self):
        observations = collect_throughput_observations(MIXTRAL_8X7B, A40, 80, dense=False)
        from repro.memory import max_batch_size

        assert len(observations) == max_batch_size(MIXTRAL_8X7B, A40, 80, dense=False)

    def test_model_monotone_in_batch(self):
        dense = collect_throughput_observations(MIXTRAL_8X7B, A40, 80, dense=True)
        sparse = collect_throughput_observations(MIXTRAL_8X7B, A40, 80, dense=False)
        model, _ = fit_dense_sparse(dense, sparse)
        values = [model.predict(b, 0.25) for b in (1, 2, 4, 8)]
        assert values == sorted(values)
