"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    ArithmeticWorld,
    DATASET_STATS,
    DataLoader,
    IGNORE_INDEX,
    KnowledgeWorld,
    SeqLenDistribution,
    build_benchmark_suite,
    build_pretraining_corpus,
    build_vocabulary,
    collate,
)


class TestVocabulary:
    def test_special_tokens_first(self):
        vocab = build_vocabulary()
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1

    def test_roundtrip_encode_decode(self):
        vocab = build_vocabulary()
        tokens = ["ent0", "rel1", "val2", "n7", "plus"]
        assert vocab.decode(vocab.encode(tokens)) == tokens

    def test_unknown_token_raises(self):
        with pytest.raises(KeyError):
            build_vocabulary().encode(["never-a-token"])

    def test_fits_tiny_model_vocab(self):
        assert len(build_vocabulary()) <= 512

    def test_categories_disjoint(self):
        vocab = build_vocabulary()
        all_ids = [i for ids in vocab.categories.values() for i in ids]
        assert len(all_ids) == len(set(all_ids)) == len(vocab)

    def test_deterministic_construction(self):
        assert build_vocabulary().token_to_id == build_vocabulary().token_to_id


class TestSeqLenDistribution:
    def test_median_matches_target(self):
        dist = SeqLenDistribution(median=79)
        lengths = dist.sample(np.random.default_rng(0), 20000)
        assert np.median(lengths) == pytest.approx(79, rel=0.05)

    def test_clipping(self):
        dist = SeqLenDistribution(median=100, sigma=2.0, minimum=10, maximum=200)
        lengths = dist.sample(np.random.default_rng(0), 5000)
        assert lengths.min() >= 10 and lengths.max() <= 200

    def test_right_skew(self):
        dist = SeqLenDistribution(median=79)
        lengths = dist.sample(np.random.default_rng(0), 20000)
        assert lengths.mean() > np.median(lengths)  # log-normal skews right

    def test_scaled_preserves_shape(self):
        dist = SeqLenDistribution(median=100).scaled(0.25)
        lengths = dist.sample(np.random.default_rng(0), 5000)
        assert np.median(lengths) == pytest.approx(25, rel=0.1)

    def test_histogram_sums_to_sample_size(self):
        counts, edges = SeqLenDistribution(median=79).histogram(np.random.default_rng(0), 1000)
        assert counts.sum() == 1000
        assert len(edges) == len(counts) + 1


class TestWorlds:
    def test_fact_lookup_consistent(self):
        vocab = build_vocabulary()
        world = KnowledgeWorld(vocab, seed=3)
        fact = world.facts[0]
        assert world.lookup(fact.entity, fact.relation) == fact.value

    def test_fact_table_complete(self):
        vocab = build_vocabulary()
        world = KnowledgeWorld(vocab, seed=3)
        assert len(world.facts) == len(world.entities) * len(world.relations)

    def test_distractors_exclude_truth(self):
        vocab = build_vocabulary()
        world = KnowledgeWorld(vocab, seed=3)
        rng = np.random.default_rng(0)
        for fact in world.facts[:20]:
            wrong = world.distractor_values(fact, rng, 3)
            assert fact.value not in wrong
            assert len(set(wrong)) == 3

    def test_different_seeds_different_worlds(self):
        vocab = build_vocabulary()
        a = KnowledgeWorld(vocab, seed=1)
        b = KnowledgeWorld(vocab, seed=2)
        differing = sum(fa.value != fb.value for fa, fb in zip(a.facts, b.facts))
        assert differing > len(a.facts) // 2

    def test_arithmetic_answers_correct_and_in_vocab(self):
        vocab = build_vocabulary()
        world = ArithmeticWorld(vocab)
        rng = np.random.default_rng(0)
        for _ in range(200):
            p = world.sample_problem(rng)
            expected = {"plus": p.lhs + p.rhs, "minus": p.lhs - p.rhs, "times": p.lhs * p.rhs}[p.op]
            assert p.answer == expected
            assert 0 <= p.answer <= world.max_number
            assert p.answer_token in vocab

    def test_arithmetic_distractors(self):
        vocab = build_vocabulary()
        world = ArithmeticWorld(vocab)
        rng = np.random.default_rng(0)
        p = world.sample_problem(rng)
        wrong = world.distractor_answers(p, rng, 3)
        assert p.answer_token not in wrong and len(set(wrong)) == 3


class TestDatasets:
    def test_suite_medians_match_table2(self, tiny_suite):
        # Scaled by 0.2: expect ~16 and ~35.
        assert tiny_suite.commonsense15k.median_seq_len() == pytest.approx(79 * 0.2, rel=0.25)
        assert tiny_suite.math14k.median_seq_len() == pytest.approx(174 * 0.2, rel=0.25)

    def test_registry_stats_match_paper(self):
        assert DATASET_STATS["commonsense15k"].num_queries == 15000
        assert DATASET_STATS["math14k"].median_seq_len == 174
        assert DATASET_STATS["gsm8k"].num_queries == 1300
        assert DATASET_STATS["hellaswag"].median_seq_len == 272

    def test_labels_are_next_token_aligned(self, tiny_suite):
        for query in tiny_suite.commonsense15k.queries[:50]:
            ids, labels = query.input_ids, query.labels
            for position in range(len(ids) - 1):
                if labels[position] != IGNORE_INDEX:
                    assert labels[position] == ids[position + 1]

    def test_loss_covers_answer_only(self, tiny_suite):
        query = tiny_suite.commonsense15k.queries[0]
        supervised = (query.labels != IGNORE_INDEX).sum()
        assert 1 <= supervised <= 3  # answer token + eos

    def test_eval_items_have_single_correct_choice(self, tiny_suite):
        for item in tiny_suite.hellaswag.items[:20]:
            assert 0 <= item.correct_index < len(item.choices)
            assert item.kind == "choice"
        for item in tiny_suite.gsm8k.items[:20]:
            assert item.kind == "exact"

    def test_hellaswag_answer_is_true_fact(self, tiny_suite):
        vocab = tiny_suite.vocab
        world = KnowledgeWorld(vocab, seed=0)  # suite seed
        for item in tiny_suite.hellaswag.items[:20]:
            prompt_tokens = vocab.decode(item.prompt_ids)
            entity = prompt_tokens[-3]
            relation = prompt_tokens[-2]
            truth = vocab.decode(item.choices[item.correct_index])[0]
            assert world.lookup(entity, relation) == truth

    def test_subset(self, tiny_suite):
        sub = tiny_suite.commonsense15k.subset(10)
        assert len(sub) == 10

    def test_pretraining_corpus_no_fact_leak(self, tiny_suite, tiny_corpus):
        """Shadow-world QA must disagree with the evaluation world broadly."""
        vocab = tiny_suite.vocab
        eval_world = KnowledgeWorld(vocab, seed=0)
        agree = disagree = 0
        for query in tiny_corpus.queries:
            tokens = vocab.decode(query.input_ids)
            if "<ans>" in tokens:
                pos = tokens.index("<ans>")
                if tokens[pos - 2].startswith("ent"):
                    truth = eval_world.lookup(tokens[pos - 2], tokens[pos - 1])
                    if tokens[pos + 1] == truth:
                        agree += 1
                    else:
                        disagree += 1
        assert disagree > 3 * agree  # mostly disagreeing fact tables


class TestDataLoader:
    def test_collate_pads_right(self, tiny_suite):
        queries = tiny_suite.commonsense15k.queries[:4]
        batch = collate(queries, pad_id=tiny_suite.vocab.pad_id)
        max_len = max(q.length for q in queries)
        assert batch.input_ids.shape == (4, max_len)
        for row, query in enumerate(queries):
            assert np.all(batch.input_ids[row, query.length:] == tiny_suite.vocab.pad_id)
            assert np.all(batch.labels[row, query.length:] == IGNORE_INDEX)

    def test_collate_empty_raises(self, tiny_suite):
        with pytest.raises(ValueError):
            collate([], pad_id=0)

    def test_loader_covers_dataset(self, tiny_suite):
        loader = DataLoader(tiny_suite.commonsense15k, batch_size=32, shuffle=True)
        seen = sum(batch.batch_size for batch in loader)
        assert seen == len(tiny_suite.commonsense15k)

    def test_drop_last(self, tiny_suite):
        loader = DataLoader(tiny_suite.commonsense15k, batch_size=7, drop_last=True)
        for batch in loader:
            assert batch.batch_size == 7

    def test_invalid_batch_size(self, tiny_suite):
        with pytest.raises(ValueError):
            DataLoader(tiny_suite.commonsense15k, batch_size=0)

    def test_shuffle_changes_order_across_epochs(self, tiny_suite):
        loader = DataLoader(tiny_suite.commonsense15k, batch_size=16, shuffle=True, seed=3)
        first = next(iter(loader)).input_ids.copy()
        second = next(iter(loader)).input_ids
        assert first.shape != second.shape or not np.array_equal(first, second)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**16))
def test_dataset_generation_deterministic(seed):
    a = build_benchmark_suite(seed=seed % 7, train_size=20, eval_size=5)
    b = build_benchmark_suite(seed=seed % 7, train_size=20, eval_size=5)
    for qa, qb in zip(a.commonsense15k.queries, b.commonsense15k.queries):
        assert np.array_equal(qa.input_ids, qb.input_ids)
