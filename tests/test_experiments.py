"""Tests over the experiment suite: every fast artifact runs and its
headline (takeaway) claims hold."""

import math

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    fig2_seqlen,
    fig4_stages,
    fig5_layers,
    fig6_kernels,
    fig8_throughput,
    fig9_sm,
    fig10_dram,
    fig13_projection,
    fig14_fit_a40,
    fig15_fit_gpus,
    seqlen_sensitivity,
    table1_models,
    table3_maxbatch,
    table4_cost,
)
from repro.experiments.common import ExperimentResult, ExperimentRow


class TestResultContainers:
    def test_add_and_lookup(self):
        result = ExperimentResult("x", "t")
        result.add("a", 1.0, paper=1.1)
        assert result.row("a").measured == 1.0
        with pytest.raises(KeyError):
            result.row("missing")

    def test_matches_paper_tolerance(self):
        assert ExperimentRow("a", 1.0, paper=1.2).matches_paper(rel_tol=0.5)
        assert not ExperimentRow("a", 1.0, paper=3.0).matches_paper(rel_tol=0.5)
        assert ExperimentRow("a", "text", paper="text").matches_paper() is None
        assert ExperimentRow("a", 1.0).matches_paper() is None

    def test_to_table_renders(self):
        result = ExperimentResult("x", "demo")
        result.add("metric", 1.234, paper=1.3, note="n")
        text = result.to_table()
        assert "demo" in text and "1.234" in text


class TestRegistry:
    def test_all_nineteen_artifacts_registered(self):
        # 17 paper artifacts plus the cluster-planning and spot-risk extensions.
        assert len(ALL_EXPERIMENTS) == 19
        assert {"table1", "table2", "table3", "table4", "fig3", "fig11", "seqlen",
                "cluster", "spot"} <= set(ALL_EXPERIMENTS)


class TestTable1:
    def test_all_rows_match_paper(self):
        result = table1_models.run()
        for row in result.rows:
            assert row.matches_paper(rel_tol=0.05), row.label


class TestFig2:
    def test_medians(self):
        result = fig2_seqlen.run(sample_size=5000)
        assert result.row("commonsense15k_median").matches_paper(rel_tol=0.05)
        assert result.row("math14k_median").matches_paper(rel_tol=0.05)


class TestTable3:
    def test_every_cell_exact(self):
        result = table3_maxbatch.run()
        for row in result.rows:
            assert row.measured == row.paper, row.label


class TestFig4:
    def test_optimizer_shares(self):
        result = fig4_stages.run()
        assert result.row("blackmamba_S1_optimizer_share").matches_paper(rel_tol=0.25)
        assert result.row("mixtral_S1_optimizer_share").measured < 0.05

    def test_backward_over_forward_everywhere(self):
        result = fig4_stages.run()
        for row in result.rows:
            if row.label.endswith("_bwd_over_fwd"):
                assert row.measured > 1.0, row.label


class TestFig5:
    def test_average_moe_share_near_85(self):
        result = fig5_layers.run()
        assert 0.6 <= result.row("average_moe_share").measured <= 1.0

    def test_moe_is_top_layer_for_mixtral(self):
        result = fig5_layers.run()
        assert result.row("mixtral_S10_moe_share").measured > 0.85


class TestFig6:
    def test_matmuls_dominate_everywhere(self):
        result = fig6_kernels.run()
        for row in result.rows:
            if row.label.endswith("_matmul_share"):
                assert row.measured > 0.45, row.label

    def test_dequant_nonzero_for_mixtral(self):
        result = fig6_kernels.run()
        assert result.row("mixtral_S1_w1_dequant_us").measured > 0


class TestFig8:
    def test_all_points_within_2x_of_paper(self):
        result = fig8_throughput.run()
        for row in result.rows:
            if row.paper is not None:
                assert row.matches_paper(rel_tol=1.0), f"{row.label}: {row.measured} vs {row.paper}"

    def test_majority_within_50pct(self):
        result = fig8_throughput.run()
        rows = [r for r in result.rows if r.paper is not None]
        good = sum(bool(r.matches_paper(rel_tol=0.5)) for r in rows)
        assert good / len(rows) > 0.7


class TestFig9And10:
    def test_sm_experiment_claims(self):
        result = fig9_sm.run()
        assert result.row("mixtral_matmul_w1_rise_s1_to_s32").measured > 20
        assert result.row("mixtral_dequant_batch_drift").measured < 5

    def test_dram_transition_claim(self):
        result = fig10_dram.run()
        assert result.row("mixtral_tw_dram_drop_s1_to_s32").measured > 5


class TestFig13:
    def test_c1_recovery(self):
        result = fig13_projection.run()
        assert abs(result.row("mixtral_c1_extended").measured - 0.95) < 0.08
        assert abs(result.row("blackmamba_c1_extended").measured - 0.88) < 0.08

    def test_projections_paper_scale(self):
        result = fig13_projection.run()
        assert result.row("projection_100gb").matches_paper(rel_tol=0.25)
        assert result.row("projection_120gb").matches_paper(rel_tol=0.25)


class TestFig14And15:
    def test_rmse_comparable_to_paper(self):
        result = fig14_fit_a40.run()
        for key, cap in (("mixtral_commonsense15k", 0.4), ("mixtral_math14k", 0.2),
                         ("blackmamba_commonsense15k", 1.6), ("blackmamba_math14k", 1.0)):
            assert result.row(f"{key}_rmse").measured < cap

    def test_other_gpus_rmse_small(self):
        result = fig15_fit_gpus.run()
        for gpu in ("A100-40GB", "A100-80GB", "H100-80GB"):
            value = result.row(f"{gpu}_rmse").measured
            assert math.isnan(value) or value < 1.1


class TestTable4:
    def test_costs_match_paper(self):
        result = table4_cost.run()
        assert result.row("A40_cost").matches_paper(rel_tol=0.15)
        assert result.row("H100-80GB_cost").matches_paper(rel_tol=0.15)
        assert result.row("cheapest_gpu").measured == "H100-80GB"

    def test_openorca(self):
        result = table4_cost.run()
        assert result.row("openorca_h100_cost").matches_paper(rel_tol=0.25)


class TestSeqlenSensitivity:
    def test_mixtral_latency_flat(self):
        result = seqlen_sensitivity.run()
        ratio = result.row("mixtral_latency_ratio_longest_over_shortest").measured
        assert 0.6 < ratio < 1.6

    def test_blackmamba_latency_drops_as_paper(self):
        """Paper: ~19-25% latency decrease for BlackMamba at long lengths."""
        result = seqlen_sensitivity.run()
        ratio = result.row("blackmamba_latency_ratio_longest_over_shortest").measured
        assert 0.6 < ratio < 0.95

    def test_throughput_higher_for_short_sequences(self):
        result = seqlen_sensitivity.run()
        short = result.row("blackmamba_seq64_tput_qps").measured
        long = result.row("blackmamba_seq512_tput_qps").measured
        assert short > long
