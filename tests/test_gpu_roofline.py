"""Tests for GPU specs, kernel descriptions and the roofline timing model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import (
    A40,
    A100_40,
    A100_80,
    COMPUTE_BOUND,
    GPU_REGISTRY,
    H100,
    Kernel,
    KernelKind,
    MEMORY_BOUND,
    OVERHEAD_BOUND,
    get_gpu,
    time_kernel,
    time_kernels,
    time_weighted_dram,
    time_weighted_sm,
)


class TestSpecs:
    def test_registry_contains_paper_gpus(self):
        assert set(GPU_REGISTRY) == {"A40", "A100-40GB", "A100-80GB", "H100-80GB"}

    def test_a40_datasheet_values(self):
        assert A40.memory_gb == 48.0
        assert A40.sm_count == 84
        assert A40.peak_fp16_flops == pytest.approx(149.7e12)
        assert A40.peak_bandwidth == pytest.approx(696e9)

    def test_gpu_ordering_by_compute(self):
        assert H100.fp16_tflops > A100_80.fp16_tflops > A40.fp16_tflops

    def test_with_memory_variant(self):
        future = H100.with_memory(120)
        assert future.memory_gb == 120
        assert future.fp16_tflops == H100.fp16_tflops
        assert "120" in future.name

    def test_get_gpu_unknown(self):
        with pytest.raises(KeyError):
            get_gpu("B200")


def big_matmul(flops=1e12, bytes_=1e8, rows=4096.0):
    return Kernel("mm", KernelKind.MATMUL, flops=flops, bytes=bytes_, rows=rows)


class TestKernelValidation:
    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            Kernel("bad", KernelKind.MATMUL, flops=-1, bytes=0)

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError):
            Kernel("bad", KernelKind.MATMUL, flops=1, bytes=1, stage="sideways")

    def test_count_must_be_positive(self):
        with pytest.raises(ValueError):
            Kernel("bad", KernelKind.MATMUL, flops=1, bytes=1, count=0)


class TestRoofline:
    def test_compute_bound_classification(self):
        timing = time_kernel(big_matmul(flops=1e13, bytes_=1e6), A40)
        assert timing.bound == COMPUTE_BOUND

    def test_memory_bound_classification(self):
        kernel = Kernel("copy", KernelKind.ELEMENTWISE, flops=1e6, bytes=1e10)
        assert time_kernel(kernel, A40).bound == MEMORY_BOUND

    def test_overhead_bound_for_tiny_kernels(self):
        kernel = Kernel("tiny", KernelKind.ELEMENTWISE, flops=10, bytes=10)
        assert time_kernel(kernel, A40).bound == OVERHEAD_BOUND

    def test_time_scales_inverse_with_peak_flops(self):
        kernel = big_matmul(flops=5e13, bytes_=1e6)
        t_a40 = time_kernel(kernel, A40).seconds
        t_h100 = time_kernel(kernel, H100).seconds
        assert t_a40 / t_h100 == pytest.approx(H100.fp16_tflops / A40.fp16_tflops, rel=0.15)

    def test_memory_time_scales_with_bandwidth(self):
        kernel = Kernel("copy", KernelKind.ELEMENTWISE, flops=0, bytes=5e10)
        t_a40 = time_kernel(kernel, A40).seconds
        t_h100 = time_kernel(kernel, H100).seconds
        assert t_a40 / t_h100 == pytest.approx(H100.mem_bandwidth_gbs / A40.mem_bandwidth_gbs, rel=0.05)

    def test_count_multiplies_total_seconds(self):
        single = time_kernel(big_matmul(), A40).seconds
        multi = time_kernel(
            Kernel("mm", KernelKind.MATMUL, flops=1e12, bytes=1e8, rows=4096.0, count=8), A40
        ).seconds
        assert multi == pytest.approx(8 * single, rel=1e-9)

    def test_row_saturation_slows_small_gemms(self):
        fat = time_kernel(big_matmul(rows=4096), A40).seconds
        thin = time_kernel(big_matmul(rows=16), A40).seconds
        assert thin > 2 * fat

    def test_eff_scale_penalty(self):
        plain = time_kernel(big_matmul(), A40).seconds
        quantized = time_kernel(
            Kernel("mm", KernelKind.MATMUL, flops=1e12, bytes=1e8, rows=4096.0, eff_scale=0.5), A40
        ).seconds
        assert quantized == pytest.approx(2 * plain, rel=0.05)

    def test_utilization_bounds(self):
        for kernel in (big_matmul(), Kernel("d", KernelKind.DEQUANT, flops=1e9, bytes=1e9)):
            timing = time_kernel(kernel, A40)
            assert 0.0 <= timing.sm_utilization <= 100.0
            assert 0.0 <= timing.dram_utilization <= 100.0

    def test_dequant_issue_floor_keeps_sm_high(self):
        """Fig. 9 insight: memory-bound dequant still reports high SM%."""
        dequant = Kernel("dq", KernelKind.DEQUANT, flops=6e9, bytes=2.5e9)
        timing = time_kernel(dequant, A40)
        assert timing.bound == MEMORY_BOUND
        assert timing.sm_utilization > 60.0

    def test_matmul_sm_grows_with_rows(self):
        """Fig. 9 insight: SM% rises with batch (rows per expert)."""
        utils = [
            time_kernel(big_matmul(flops=1e12, bytes_=1e9, rows=r), A40).sm_utilization
            for r in (16, 64, 256, 1024)
        ]
        assert utils == sorted(utils)
        assert utils[-1] > 2 * utils[0]

    def test_compute_bound_kernel_low_dram(self):
        timing = time_kernel(big_matmul(flops=1e14, bytes_=1e8), A40)
        assert timing.dram_utilization < 20.0

    def test_microseconds_per_launch(self):
        kernel = Kernel("mm", KernelKind.MATMUL, flops=1e12, bytes=1e8, rows=4096.0, count=4)
        timing = time_kernel(kernel, A40)
        assert timing.microseconds_per_launch == pytest.approx(timing.seconds / 4 * 1e6)


class TestTimeWeightedAggregates:
    def test_weighting_favours_long_kernels(self):
        long_low = Kernel("a", KernelKind.ELEMENTWISE, flops=1e6, bytes=5e10)  # low SM
        short_high = Kernel("b", KernelKind.MATMUL, flops=1e11, bytes=1e6, rows=4096.0)
        timings = time_kernels([long_low, short_high], A40)
        aggregate = time_weighted_sm(timings)
        assert aggregate < (timings[0].sm_utilization + timings[1].sm_utilization) / 2

    def test_empty_list_zero(self):
        assert time_weighted_sm([]) == 0.0
        assert time_weighted_dram([]) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    flops=st.floats(min_value=1e6, max_value=1e15),
    bytes_=st.floats(min_value=1e3, max_value=1e12),
    rows=st.floats(min_value=1, max_value=1e5),
)
def test_roofline_monotonicity_property(flops, bytes_, rows):
    """More work never takes less time; utilization stays in [0, 100]."""
    base = Kernel("k", KernelKind.MATMUL, flops=flops, bytes=bytes_, rows=rows)
    double = Kernel("k", KernelKind.MATMUL, flops=2 * flops, bytes=2 * bytes_, rows=rows)
    t1 = time_kernel(base, A40)
    t2 = time_kernel(double, A40)
    assert t2.seconds >= t1.seconds
    for timing in (t1, t2):
        assert 0 <= timing.sm_utilization <= 100
        assert 0 <= timing.dram_utilization <= 100
        assert timing.seconds > 0
