"""Tests for the step simulator and trace aggregations — the paper's
qualitative hardware findings must emerge from the model."""

import pytest

from repro.gpu import A40, GPUSimulator, H100, SoftwareOverhead
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


@pytest.fixture(scope="module")
def sim():
    return GPUSimulator(A40)


class TestTraceStructure:
    def test_stage_seconds_cover_total(self, sim):
        trace = sim.simulate_step(MIXTRAL_8X7B, 2, 128)
        stages = trace.stage_seconds()
        assert sum(stages.values()) == pytest.approx(trace.total_seconds, rel=1e-6)

    def test_layer_seconds_positive(self, sim):
        trace = sim.simulate_step(MIXTRAL_8X7B, 2, 128)
        layers = trace.layer_seconds()
        assert {"moe", "attention", "norm"} <= set(layers)
        assert all(v > 0 for v in layers.values())

    def test_kernel_seconds_by_name_per_layer_scaling(self, sim):
        trace = sim.simulate_step(MIXTRAL_8X7B, 2, 128)
        per_layer = trace.kernel_seconds_by_name(layer="moe", per_layer=True)
        total = trace.kernel_seconds_by_name(layer="moe", per_layer=False)
        ratio = total["matmul(w1)"] / per_layer["matmul(w1)"]
        assert ratio == pytest.approx(MIXTRAL_8X7B.num_layers, rel=1e-9)

    def test_summary_string(self, sim):
        text = sim.simulate_step(MIXTRAL_8X7B, 2, 128, label="demo").summary()
        assert "demo" in text and "MoE share" in text

    def test_throughput_sweep(self, sim):
        sweep = sim.throughput_sweep(MIXTRAL_8X7B, [1, 2, 4], 128)
        assert list(sweep) == [1, 2, 4]

    def test_custom_overheads(self):
        fast = GPUSimulator(A40, overheads={"mixtral": SoftwareOverhead(0, 0, 0)})
        slow = GPUSimulator(A40, overheads={"mixtral": SoftwareOverhead(1.0, 0, 0)})
        assert (
            slow.simulate_step(MIXTRAL_8X7B, 1, 128).total_seconds
            > fast.simulate_step(MIXTRAL_8X7B, 1, 128).total_seconds
        )

    def test_unsupported_config_type(self, sim):
        with pytest.raises(TypeError):
            sim.simulate_step(object(), 1, 128)


class TestPaperFindings:
    """Each test pins one qualitative claim from the paper's Section IV."""

    def test_moe_layer_dominates(self, sim):
        """Fig. 5: MoE is the costliest layer (~85% on average)."""
        for cfg, batch in ((MIXTRAL_8X7B, 10), (BLACKMAMBA_2_8B, 30)):
            trace = sim.simulate_step(cfg, batch, 128, dense=True)
            assert trace.moe_fraction() > 0.5
        mixtral = sim.simulate_step(MIXTRAL_8X7B, 10, 128, dense=True)
        assert mixtral.moe_fraction() > 0.85

    def test_backward_exceeds_forward(self, sim):
        """Fig. 4: gradient work + recomputation make backward the bigger stage."""
        for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
            stages = sim.simulate_step(cfg, 4, 128).stage_seconds()
            assert stages["backward"] > stages["forward"]

    def test_optimizer_share_full_ft_vs_lora(self, sim):
        """Fig. 4: optimizer stage huge for BlackMamba (~53% at bsz 1),
        negligible for Mixtral QLoRA."""
        mamba = sim.simulate_step(BLACKMAMBA_2_8B, 1, 128, dense=False).stage_seconds()
        mamba_share = mamba["optimizer"] / sum(mamba.values())
        assert 0.35 < mamba_share < 0.7
        mixtral = sim.simulate_step(MIXTRAL_8X7B, 1, 128, dense=False).stage_seconds()
        assert mixtral["optimizer"] / sum(mixtral.values()) < 0.05

    def test_optimizer_time_batch_independent(self, sim):
        """Optimizer cost depends only on trainable parameter count."""
        t1 = sim.simulate_step(BLACKMAMBA_2_8B, 1, 128).stage_seconds()["optimizer"]
        t30 = sim.simulate_step(BLACKMAMBA_2_8B, 30, 128).stage_seconds()["optimizer"]
        assert t30 == pytest.approx(t1, rel=1e-6)

    def test_sparse_beats_dense_throughput_same_batch(self, sim):
        """Takeaway 4 / Fig. 8: sparse > dense at equal batch size."""
        for cfg in (MIXTRAL_8X7B, BLACKMAMBA_2_8B):
            sparse = sim.throughput(cfg, 2, 128, dense=False)
            dense = sim.throughput(cfg, 2, 128, dense=True)
            assert sparse > dense

    def test_throughput_sublinear_in_batch(self, sim):
        """Fig. 8: 8x batch gives less than 8x throughput."""
        t1 = sim.throughput(MIXTRAL_8X7B, 1, 79, dense=False)
        t8 = sim.throughput(MIXTRAL_8X7B, 8, 79, dense=False)
        assert t8 > 2 * t1
        assert t8 < 8 * t1

    def test_throughput_monotone_in_batch(self, sim):
        previous = 0.0
        for batch in (1, 2, 4, 8, 16, 32):
            current = sim.throughput(MIXTRAL_8X7B, batch, 128, dense=False)
            assert current > previous
            previous = current

    def test_blackmamba_much_faster_than_mixtral(self, sim):
        """Fig. 8: the 2.8B model is an order of magnitude faster."""
        assert sim.throughput(BLACKMAMBA_2_8B, 1, 79) > 4 * sim.throughput(MIXTRAL_8X7B, 1, 79)

    def test_h100_faster_than_a40(self):
        a40 = GPUSimulator(A40).throughput(MIXTRAL_8X7B, 8, 128, dense=False)
        h100 = GPUSimulator(H100).throughput(MIXTRAL_8X7B, 8, 128, dense=False)
        assert h100 > 1.3 * a40

    def test_sm_utilization_rises_with_batch(self, sim):
        """Fig. 9: more parallelism -> higher SM utilization."""
        tw = [
            sim.simulate_step(MIXTRAL_8X7B, b, 128, dense=False).time_weighted_sm("moe")
            for b in (1, 10, 32)
        ]
        assert tw == sorted(tw)

    def test_sparse_lower_sm_than_dense_same_batch(self, sim):
        """Fig. 9 insight 2: fewer active experts -> less parallelism."""
        sparse = sim.simulate_step(MIXTRAL_8X7B, 4, 128, dense=False).time_weighted_sm("moe")
        dense = sim.simulate_step(MIXTRAL_8X7B, 4, 128, dense=True).time_weighted_sm("moe")
        assert sparse < dense

    def test_dequant_sm_batch_independent(self, sim):
        """Fig. 9 insight 3."""
        values = [
            sim.simulate_step(MIXTRAL_8X7B, b, 128, dense=False)
            .sm_utilization_by_kernel("moe")["w1_dequant"]
            for b in (1, 10, 32)
        ]
        assert max(values) - min(values) < 5.0

    def test_dram_utilization_falls_with_batch(self, sim):
        """Fig. 10 / Takeaway 5: memory-bound -> compute-bound transition."""
        tw = [
            sim.simulate_step(MIXTRAL_8X7B, b, 128, dense=False).time_weighted_dram("moe")
            for b in (1, 10, 32)
        ]
        assert tw == sorted(tw, reverse=True)

    def test_matmul_dram_falls_with_batch(self, sim):
        values = [
            sim.simulate_step(MIXTRAL_8X7B, b, 128, dense=False)
            .dram_utilization_by_kernel("moe")["matmul(w1)"]
            for b in (1, 32)
        ]
        assert values[0] > values[1]

    def test_matmuls_dominate_moe_kernels(self, sim):
        """Takeaway 3."""
        trace = sim.simulate_step(MIXTRAL_8X7B, 10, 128, dense=False)
        table = trace.kernel_seconds_by_name(layer="moe")
        matmul = sum(v for k, v in table.items() if k.startswith("matmul"))
        assert matmul / sum(table.values()) > 0.5

    def test_dequant_share_shrinks_with_batch(self, sim):
        """Fig. 6: dequant is significant at small batch, amortized at large."""

        def dequant_share(batch):
            table = sim.simulate_step(MIXTRAL_8X7B, batch, 128, dense=False).kernel_seconds_by_name("moe")
            dequant = sum(v for k, v in table.items() if "dequant" in k)
            return dequant / sum(table.values())

        assert dequant_share(1) > dequant_share(32)
