"""Tests for the workload builders (kernel inventories and scaling laws)."""

import pytest

from repro.gpu import (
    BACKWARD,
    FORWARD,
    OPTIMIZER,
    blackmamba_step_kernels,
    experts_touched,
    mixtral_step_kernels,
)
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B

MIXTRAL_FIG6 = {
    "matmul(w2)", "w2_dequant", "matmul(w3)", "w3_dequant", "matmul(w1)",
    "w1_dequant", "softmax", "topk", "matmul(router)", "router_dequant",
}
BLACKMAMBA_FIG6 = {
    "matmul(w1)", "gelu", "matmul(w2)", "elementwise_mult", "top_k",
    "sigmoid", "matmul(router)",
}


def moe_names(kernels):
    return {k.name for k in kernels if k.layer == "moe" and k.stage == FORWARD}


def total_flops(kernels, layer=None, stage=None):
    return sum(
        k.flops * 1  # flops already folded per count? (count multiplies in timing)
        for k in kernels
        if (layer is None or k.layer == layer) and (stage is None or k.stage == stage)
    )


class TestExpertsTouched:
    def test_all_experts_touched_for_many_tokens(self):
        assert experts_touched(8, 2, 128) == pytest.approx(8.0, rel=1e-6)

    def test_single_token_touches_top_k(self):
        assert experts_touched(8, 2, 1) == pytest.approx(8 * (1 - 0.75), rel=1e-9)

    def test_zero_tokens(self):
        assert experts_touched(8, 2, 0) == 0.0

    def test_dense_touches_all_immediately(self):
        assert experts_touched(8, 8, 1) == pytest.approx(8.0)


class TestMixtralWorkload:
    def test_moe_kernel_vocabulary_matches_fig6(self):
        kernels = mixtral_step_kernels(MIXTRAL_8X7B, 4, 128)
        assert moe_names(kernels) == MIXTRAL_FIG6

    def test_no_dequant_without_quantization(self):
        kernels = mixtral_step_kernels(MIXTRAL_8X7B, 4, 128, quantized=False)
        assert not any("dequant" in k.name for k in kernels)

    def test_stages_present(self):
        kernels = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128)
        stages = {k.stage for k in kernels}
        assert stages == {FORWARD, BACKWARD, OPTIMIZER}

    def test_backward_optional(self):
        kernels = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128, include_backward=False)
        assert not any(k.stage == BACKWARD for k in kernels)

    def test_moe_matmul_flops_scale_with_batch(self):
        small = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128)
        large = mixtral_step_kernels(MIXTRAL_8X7B, 8, 128)

        def w1_flops(kernels):
            return next(k.flops for k in kernels if k.name == "matmul(w1)" and k.stage == FORWARD)

        assert w1_flops(large) == pytest.approx(8 * w1_flops(small), rel=1e-9)

    def test_dense_has_4x_sparse_expert_flops(self):
        sparse = mixtral_step_kernels(MIXTRAL_8X7B, 2, 128, dense=False)
        dense = mixtral_step_kernels(MIXTRAL_8X7B, 2, 128, dense=True)

        def w1(kernels):
            return next(k.flops for k in kernels if k.name == "matmul(w1)" and k.stage == FORWARD)

        assert w1(dense) == pytest.approx(4 * w1(sparse), rel=1e-9)  # top-8 vs top-2

    def test_dequant_bytes_sparsity_independent_at_scale(self):
        """All experts are touched by a 128-token batch either way (Fig. 6)."""
        sparse = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128, dense=False)
        dense = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128, dense=True)

        def dq(kernels):
            return next(k.bytes for k in kernels if k.name == "w1_dequant" and k.stage == FORWARD)

        assert dq(dense) == pytest.approx(dq(sparse), rel=0.01)

    def test_checkpointing_increases_backward(self):
        with_ck = mixtral_step_kernels(MIXTRAL_8X7B, 2, 128, checkpointing=True)
        without = mixtral_step_kernels(MIXTRAL_8X7B, 2, 128, checkpointing=False)
        assert total_flops(with_ck, stage=BACKWARD) > total_flops(without, stage=BACKWARD)

    def test_optimizer_params_lora_vs_full(self):
        qlora = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128, quantized=True)
        full = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128, quantized=False)

        def opt_bytes(kernels):
            return next(k.bytes for k in kernels if k.stage == OPTIMIZER)

        assert opt_bytes(full) > 50 * opt_bytes(qlora)

    def test_kernel_counts_match_layer_count(self):
        kernels = mixtral_step_kernels(MIXTRAL_8X7B, 1, 128)
        w1 = next(k for k in kernels if k.name == "matmul(w1)" and k.stage == FORWARD)
        assert w1.count == MIXTRAL_8X7B.num_layers

    def test_invalid_batch_raises(self):
        with pytest.raises(ValueError):
            mixtral_step_kernels(MIXTRAL_8X7B, 0, 128)


class TestBlackMambaWorkload:
    def test_moe_kernel_vocabulary_matches_fig6(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 4, 128)
        assert moe_names(kernels) == BLACKMAMBA_FIG6

    def test_no_dequant_kernels(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 4, 128)
        assert not any("dequant" in k.name for k in kernels)

    def test_has_mamba_layer_kernels(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 1, 128)
        mamba = {k.name for k in kernels if k.layer == "mamba"}
        assert "ssm_scan" in mamba and "conv1d" in mamba and "matmul(in_proj)" in mamba

    def test_moe_layer_count(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 1, 128)
        router = next(k for k in kernels if k.name == "matmul(router)" and k.stage == FORWARD)
        assert router.count == BLACKMAMBA_2_8B.num_moe_layers

    def test_mamba_layer_count(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 1, 128)
        scan = next(k for k in kernels if k.name == "ssm_scan" and k.stage == FORWARD)
        assert scan.count == BLACKMAMBA_2_8B.num_mamba_layers

    def test_full_ft_backward_doubles_matmuls(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 2, 128)
        fwd = next(k for k in kernels if k.name == "matmul(w1)" and k.stage == FORWARD)
        bwd = next(k for k in kernels if k.name == "matmul(w1)" and k.stage == BACKWARD)
        assert bwd.flops == pytest.approx(2 * fwd.flops)

    def test_optimizer_covers_all_params(self):
        kernels = blackmamba_step_kernels(BLACKMAMBA_2_8B, 1, 128)
        opt = next(k for k in kernels if k.stage == OPTIMIZER)
        from repro.models import param_breakdown

        assert opt.flops == pytest.approx(12 * param_breakdown(BLACKMAMBA_2_8B).total)
