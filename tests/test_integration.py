"""Integration tests across substrates: the full paper pipeline end to end."""

import numpy as np
import pytest

from repro.core import FineTuningCostModel, collect_batch_size_observations, BatchSizeModel
from repro.data import build_benchmark_suite, build_pretraining_corpus
from repro.gpu import A40, A100_80, GPUSimulator, H100
from repro.memory import max_batch_size
from repro.models import (
    BLACKMAMBA_TINY,
    BlackMambaModel,
    MIXTRAL_TINY,
    MixtralModel,
    convert_to_qlora,
    MIXTRAL_8X7B,
)
from repro.training import FineTuner, evaluate, measure_load_distribution, pretrain_language_model


@pytest.mark.slow
class TestEndToEndTraining:
    def test_pretrain_then_qlora_finetune_improves_accuracy(self):
        """The Fig. 3 pipeline in miniature: accuracy must rise well above
        the pre-fine-tuning baseline within a few epochs."""
        suite = build_benchmark_suite(train_size=600, eval_size=60, length_scale=0.2)
        corpus = build_pretraining_corpus(suite.vocab, size=800)
        rng = np.random.default_rng(42)
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False, rng=rng)
        model.set_sparsity(dense=False)
        pretrain_language_model(model, corpus, steps=200, batch_size=16, learning_rate=3e-3)
        pre = evaluate(model, suite.hellaswag, limit=60)
        assert pre < 0.5  # near chance before fine-tuning

        convert_to_qlora(model, rng=rng)
        model.gradient_checkpointing = False
        tuner = FineTuner(model, suite.commonsense15k, batch_size=16, learning_rate=8e-3)
        history = tuner.train(num_epochs=5, eval_fn=lambda: evaluate(model, suite.hellaswag, limit=60))
        assert history.best_accuracy() > pre + 0.15
        assert history.losses[-1] < history.losses[0]

    def test_blackmamba_full_finetune_learns_commonsense(self):
        suite = build_benchmark_suite(train_size=400, eval_size=50, length_scale=0.2)
        corpus = build_pretraining_corpus(suite.vocab, size=400)
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=np.random.default_rng(3))
        model.set_sparsity(dense=False)
        pretrain_language_model(model, corpus, steps=120, batch_size=16, learning_rate=3e-3)
        tuner = FineTuner(model, suite.commonsense15k, batch_size=16, learning_rate=2e-3)
        history = tuner.train(num_epochs=4, eval_fn=lambda: evaluate(model, suite.hellaswag, limit=50))
        assert history.best_accuracy() > 0.5

    def test_load_distribution_changes_after_finetuning(self):
        suite = build_benchmark_suite(train_size=300, eval_size=40, length_scale=0.2)
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=False,
                             rng=np.random.default_rng(9))
        model.set_sparsity(dense=False)
        pre = measure_load_distribution(model, suite.commonsense15k, num_queries=80)
        FineTuner(model, suite.commonsense15k, batch_size=16, learning_rate=3e-3).train(3)
        post = measure_load_distribution(model, suite.commonsense15k, num_queries=80)
        assert not np.allclose(pre.normalized_shares, post.normalized_shares, atol=1e-3)


class TestAnalyticalPipelineConsistency:
    def test_eq1_predictions_track_oracle_on_unseen_gpu(self):
        """Fit Eq. 1 on three GPUs, predict the fourth."""
        train_gpus = [A40, A100_80, H100.with_memory(100)]
        observations = collect_batch_size_observations(MIXTRAL_8X7B, train_gpus)
        model = BatchSizeModel.fit(observations, fit_overhead=True)
        predicted = model.predict(H100.memory_gb, 128, 0.25)
        oracle = max_batch_size(MIXTRAL_8X7B, H100, 128, dense=False)
        assert abs(predicted - oracle) <= 3

    def test_cost_model_uses_consistent_batch_and_throughput(self):
        cost_model = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "gsm8k", dense=False)
        estimate = cost_model.estimate(A40, 14000)
        sim_qps = GPUSimulator(A40).throughput(
            MIXTRAL_8X7B, estimate.max_batch_size, cost_model.seq_len, dense=False
        )
        assert estimate.throughput_qps == pytest.approx(sim_qps, rel=0.3)

    def test_sparse_cheaper_than_dense(self):
        """Takeaway 4 at the dollars level: sparse fine-tuning costs less."""
        sparse = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "commonsense15k", dense=False)
        dense = FineTuningCostModel.for_dataset(MIXTRAL_8X7B, "commonsense15k", dense=True)
        assert (
            sparse.estimate(A40, 15000).dollars < dense.estimate(A40, 15000).dollars
        )
