"""Contract-linter tests: every rule fires on its minimal violation and
stays quiet on the compliant twin; suppressions, the unused-suppression
check, the baseline growth gate and the ``--json`` schema all behave;
and — the tier-1 gate — the repo's own ``src/`` tree is clean, with the
atomic-write and unseeded-RNG rules clean *without* baseline help."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.devtools import (
    all_rules,
    lint_paths,
    lint_source,
    load_baseline,
    module_name_for,
)
from repro.devtools.framework import (
    PARSE_ERROR,
    UNUSED_SUPPRESSION,
    apply_baseline,
    render_baseline,
)
from repro.devtools.lint import main

REPO = Path(__file__).resolve().parent.parent
DATA = Path(__file__).resolve().parent / "data" / "lint"

RULE_IDS = {
    "no-wall-clock",
    "no-unseeded-rng",
    "no-builtin-hash-persistence",
    "atomic-writes",
    "lock-discipline",
    "import-layering",
}


def lint_fixture(name: str):
    path = DATA / name
    return lint_source(path.read_text(encoding="utf-8"), path=str(path))


class TestRegistry:
    def test_all_six_rules_registered(self):
        assert RULE_IDS <= {rule.id for rule in all_rules()}

    def test_rules_carry_docs(self):
        for rule in all_rules():
            assert rule.summary and rule.rationale, rule.id


class TestRulesFire:
    """Each rule: fires on the violation file, silent on the twin."""

    FIRING = [
        ("wallclock_bad.py", "no-wall-clock", 2),
        ("rng_bad.py", "no-unseeded-rng", 2),
        ("hash_bad.py", "no-builtin-hash-persistence", 1),
        ("lock_bad.py", "lock-discipline", 1),
        ("src/repro/telemetry/atomic_bad.py", "atomic-writes", 1),
        ("src/repro/nn/layering_bad.py", "import-layering", 2),
    ]

    QUIET = [
        "wallclock_ok.py",
        "rng_ok.py",
        "hash_ok.py",
        "lock_ok.py",
        "src/repro/telemetry/atomic_ok.py",
        "src/repro/nn/layering_ok.py",
        "src/repro/telemetry/wallclock_allowed.py",
        "src/repro/service/wallclock_allowed.py",
        "unscoped_write_ok.py",
    ]

    @pytest.mark.parametrize("name,rule_id,count", FIRING)
    def test_fires_on_violation(self, name, rule_id, count):
        findings = lint_fixture(name)
        assert [f.rule_id for f in findings] == [rule_id] * count
        assert all(f.line > 0 for f in findings)

    @pytest.mark.parametrize("name", QUIET)
    def test_quiet_on_compliant_twin(self, name):
        assert lint_fixture(name) == []

    def test_wall_clock_allowlist_is_module_based(self):
        source = "import time\n\n\ndef f():\n    return time.time()\n"
        # The allowlist widens (repro.service joined for TTL/ingest
        # timestamps) but stays module-scoped: the engine layers right
        # next to the allowed ones must still trip the rule.
        for denied in ("repro.gpu.simulator", "repro.cluster.planner",
                       "repro.scenarios.cache", "repro.servicex.other"):
            assert lint_source(source, module=denied) != []
        for allowed in ("repro.telemetry.export", "repro.profiling.wallclock",
                        "repro.training.trainer", "repro.service.catalog",
                        "repro.service.app"):
            assert lint_source(source, module=allowed) == []

    def test_parse_error_is_a_finding_not_a_crash(self):
        findings = lint_source("def broken(:\n", path="broken.py")
        assert [f.rule_id for f in findings] == [PARSE_ERROR]

    def test_seeded_default_rng_and_resolve_rng_are_quiet(self):
        source = (
            "import numpy as np\n"
            "from repro.rng import resolve_rng\n"
            "a = np.random.default_rng(7)\n"
            "b = resolve_rng(None)\n"
            "c = np.random.default_rng(seed=7)\n"
        )
        assert lint_source(source, module="repro.nn.something") == []


class TestSuppressions:
    def test_both_spellings_silence_the_finding(self):
        assert lint_fixture("suppressed_ok.py") == []

    def test_unused_suppression_is_reported(self):
        findings = lint_fixture("suppression_unused.py")
        assert [f.rule_id for f in findings] == [UNUSED_SUPPRESSION]
        assert "no-wall-clock" in findings[0].message

    def test_suppression_only_silences_named_rule(self):
        source = (
            "import time\n\n\ndef f():\n"
            "    return time.time()  # repro: allow[no-unseeded-rng]\n"
        )
        rule_ids = {f.rule_id for f in lint_source(source, module="m")}
        # The wall-clock finding survives AND the mismatched suppression
        # is itself reported as unused.
        assert rule_ids == {"no-wall-clock", UNUSED_SUPPRESSION}

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""docs: write # repro: allow[no-wall-clock] to escape"""\nX = 1\n'
        assert lint_source(source, module="m") == []


class TestBaseline:
    def test_known_findings_do_not_gate(self, tmp_path):
        findings = lint_fixture("wallclock_bad.py")
        baseline = [f.baseline_key for f in findings]
        result = lint_paths([DATA / "wallclock_bad.py"], baseline=baseline)
        assert result.ok and result.new == [] and len(result.known) == 2

    def test_growth_gates(self):
        findings = lint_fixture("wallclock_bad.py")
        baseline = [findings[0].baseline_key]  # only one of two legacy
        result = lint_paths([DATA / "wallclock_bad.py"], baseline=baseline)
        assert not result.ok and len(result.new) == 1 and len(result.known) == 1

    def test_stale_entries_are_reported_not_gating(self):
        result = lint_paths(
            [DATA / "wallclock_ok.py"], baseline=["gone.py::no-wall-clock::x"]
        )
        assert result.ok and result.stale_baseline == ["gone.py::no-wall-clock::x"]

    def test_baseline_key_excludes_line_numbers(self):
        findings = lint_fixture("hash_bad.py")
        assert "::" in findings[0].baseline_key
        assert str(findings[0].line) not in findings[0].baseline_key.split("::")

    def test_render_load_roundtrip(self, tmp_path):
        findings = lint_fixture("rng_bad.py")
        path = tmp_path / "baseline.json"
        path.write_text(render_baseline(findings), encoding="utf-8")
        entries = load_baseline(path)
        assert entries == sorted({f.baseline_key for f in findings})
        new, known, stale = apply_baseline(findings, entries)
        assert new == [] and len(known) == 2 and stale == []

    def test_load_baseline_rejects_bad_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []
        assert load_baseline(None) == []


class TestCli:
    def test_violation_file_exits_nonzero(self, capsys):
        assert main([str(DATA / "wallclock_bad.py"), "--no-baseline"]) == 1
        assert "no-wall-clock" in capsys.readouterr().out

    def test_fixture_tree_exits_nonzero(self, capsys):
        assert main([str(DATA), "--no-baseline"]) == 1

    def test_clean_file_exits_zero(self, capsys):
        assert main([str(DATA / "wallclock_ok.py"), "--no-baseline"]) == 0

    def test_json_schema(self, capsys):
        code = main([str(DATA / "rng_bad.py"), "--no-baseline", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert set(payload) >= {"version", "files", "counts", "findings", "new",
                                "stale_baseline", "ok"}
        assert payload["ok"] is False
        assert payload["counts"]["new"] == 2 == len(payload["new"])
        for finding in payload["findings"]:
            assert set(finding) == {"path", "line", "rule", "message"}
            assert finding["rule"] == "no-unseeded-rng"

    def test_rule_selection(self, capsys):
        code = main([str(DATA / "rng_bad.py"), "--no-baseline",
                     "--rules", "no-wall-clock"])
        assert code == 0

    def test_unknown_rule_exits_2(self, capsys):
        assert main([str(DATA), "--rules", "no-such-rule"]) == 2

    def test_missing_path_exits_2(self, capsys):
        assert main([str(DATA / "does-not-exist.py")]) == 2

    def test_list_rules_documents_every_rule(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert f"{rule_id}:" in out

    def test_write_baseline_then_gate_green(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main([str(DATA / "hash_bad.py"), "--baseline", str(baseline),
                     "--write-baseline"]) == 0
        assert main([str(DATA / "hash_bad.py"), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out


class TestModuleNames:
    def test_src_anchor(self):
        assert module_name_for(Path("src/repro/nn/linear.py")) == "repro.nn.linear"
        assert (
            module_name_for(Path("tests/data/lint/src/repro/telemetry/x.py"))
            == "repro.telemetry.x"
        )

    def test_init_names_the_package(self):
        assert module_name_for(Path("src/repro/nn/__init__.py")) == "repro.nn"

    def test_repro_anchor_without_src(self):
        assert module_name_for(Path("repro/gpu/kernels.py")) == "repro.gpu.kernels"

    def test_bare_file_is_its_stem(self):
        assert module_name_for(Path("scratch.py")) == "scratch"


class TestRepoTreeClean:
    """The in-process tier-1 gate: contract regressions fail pytest
    directly, without waiting for the CI lint job."""

    def test_src_lints_clean_against_committed_baseline(self):
        baseline = load_baseline(REPO / "lint-baseline.json")
        result = lint_paths([REPO / "src"], baseline=baseline)
        assert result.ok, "new contract violations:\n" + "\n".join(
            f.render() for f in result.new
        )
        assert not result.stale_baseline, (
            "stale baseline entries (prune lint-baseline.json):\n"
            + "\n".join(result.stale_baseline)
        )

    def test_rng_and_atomic_rules_clean_without_baseline(self):
        """ISSUE 9 acceptance: the real atomic-write and unseeded-RNG
        violations are *fixed*, not suppressed or baselined."""
        result = lint_paths([REPO / "src"])
        offending = [
            f
            for f in result.findings
            if f.rule_id in ("no-unseeded-rng", "atomic-writes")
        ]
        assert offending == [], "\n".join(f.render() for f in offending)
        baseline = load_baseline(REPO / "lint-baseline.json")
        assert not any(
            "::no-unseeded-rng::" in e or "::atomic-writes::" in e for e in baseline
        )
