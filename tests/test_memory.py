"""Tests for the memory estimator (Table III oracle)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import A40, A100_40, A100_80, H100
from repro.memory import (
    EFFECTIVE_SEQ_LEN,
    activation_gb_per_query,
    fits_in_memory,
    max_batch_size,
    max_batch_size_for_dataset,
    memory_breakdown,
)
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B

TABLE3 = {
    ("mixtral", "commonsense15k", True): 2,
    ("mixtral", "commonsense15k", False): 8,
    ("mixtral", "math14k", True): 1,
    ("mixtral", "math14k", False): 3,
    ("blackmamba", "commonsense15k", True): 6,
    ("blackmamba", "commonsense15k", False): 20,
    ("blackmamba", "math14k", True): 2,
    ("blackmamba", "math14k", False): 8,
}


class TestTable3:
    @pytest.mark.parametrize("key,expected", list(TABLE3.items()),
                             ids=[f"{m}-{d}-{'D' if s else 'S'}" for (m, d, s) in TABLE3])
    def test_exact_paper_cell(self, key, expected):
        family, dataset, dense = key
        cfg = MIXTRAL_8X7B if family == "mixtral" else BLACKMAMBA_2_8B
        assert max_batch_size_for_dataset(cfg, A40, dataset, dense=dense) == expected

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            max_batch_size_for_dataset(MIXTRAL_8X7B, A40, "imagenet", dense=False)


class TestTable4BatchSizes:
    def test_gsm8k_sparse_cells(self):
        assert max_batch_size_for_dataset(MIXTRAL_8X7B, A40, "gsm8k", dense=False) == 4
        assert max_batch_size_for_dataset(MIXTRAL_8X7B, A100_80, "gsm8k", dense=False) == 17
        assert max_batch_size_for_dataset(MIXTRAL_8X7B, H100, "gsm8k", dense=False) == 17


class TestBreakdown:
    def test_mixtral_fixed_components(self):
        bd = memory_breakdown(MIXTRAL_8X7B, 128, dense=False)
        assert bd.weights_gb == pytest.approx(23.35, rel=0.01)
        assert bd.adapter_gb == pytest.approx(0.914, rel=0.02)
        assert bd.optimizer_gb == pytest.approx(2 * bd.adapter_gb, rel=1e-6)
        assert bd.fixed_gb == pytest.approx(37.0, rel=0.02)

    def test_blackmamba_fixed_components(self):
        bd = memory_breakdown(BLACKMAMBA_2_8B, 128, dense=False)
        assert bd.weights_gb == pytest.approx(5.64, rel=0.02)
        assert bd.gradient_gb == pytest.approx(bd.weights_gb, rel=1e-6)
        assert bd.optimizer_gb == pytest.approx(4 * bd.weights_gb, rel=1e-6)

    def test_total_includes_batch(self):
        bd = memory_breakdown(MIXTRAL_8X7B, 128, dense=False)
        assert bd.total_gb(4) == pytest.approx(bd.fixed_gb + 4 * bd.activation_gb_per_query)

    def test_dense_activation_larger_than_sparse(self):
        dense = activation_gb_per_query(MIXTRAL_8X7B, 128, dense=True)
        sparse = activation_gb_per_query(MIXTRAL_8X7B, 128, dense=False)
        assert dense > 3 * sparse

    def test_activation_linear_in_seq_len(self):
        short = activation_gb_per_query(MIXTRAL_8X7B, 100, dense=False)
        long = activation_gb_per_query(MIXTRAL_8X7B, 200, dense=False)
        assert long == pytest.approx(2 * short, rel=1e-9)

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            activation_gb_per_query(MIXTRAL_8X7B, 0, dense=False)


class TestMaxBatchSizeBehaviour:
    def test_more_memory_never_hurts(self):
        small = max_batch_size(MIXTRAL_8X7B, A100_40, 128, dense=False)
        large = max_batch_size(MIXTRAL_8X7B, A100_80, 128, dense=False)
        assert large >= small

    def test_longer_sequences_never_help(self):
        previous = None
        for seq in (64, 128, 256, 512):
            current = max_batch_size(MIXTRAL_8X7B, A40, seq, dense=False)
            if previous is not None:
                assert current <= previous
            previous = current

    def test_sparse_geq_dense(self):
        for gpu in (A40, A100_80):
            assert max_batch_size(MIXTRAL_8X7B, gpu, 128, False) >= max_batch_size(
                MIXTRAL_8X7B, gpu, 128, True
            )

    def test_zero_when_model_does_not_fit(self):
        assert max_batch_size(MIXTRAL_8X7B, A100_40, 512, dense=True) == 0

    def test_blackmamba_fits_more_than_mixtral(self):
        """Fig. 8 observation: the smaller model supports larger batches."""
        assert max_batch_size(BLACKMAMBA_2_8B, A40, 128, False) > max_batch_size(
            MIXTRAL_8X7B, A40, 128, False
        )

    def test_fits_in_memory_consistent_with_max(self):
        mbs = max_batch_size(MIXTRAL_8X7B, A40, 128, dense=False)
        assert fits_in_memory(MIXTRAL_8X7B, A40, mbs, 128, dense=False)
        assert not fits_in_memory(MIXTRAL_8X7B, A40, mbs + 1, 128, dense=False)

    def test_effective_lengths_registered(self):
        assert set(EFFECTIVE_SEQ_LEN) >= {"commonsense15k", "math14k", "gsm8k", "hellaswag", "openorca"}


@settings(max_examples=40, deadline=None)
@given(
    mem=st.floats(min_value=30, max_value=200),
    seq=st.integers(16, 1024),
)
def test_max_batch_monotone_in_memory_property(mem, seq):
    small_gpu = A40.with_memory(mem)
    big_gpu = A40.with_memory(mem + 16)
    assert max_batch_size(MIXTRAL_8X7B, big_gpu, seq, False) >= max_batch_size(
        MIXTRAL_8X7B, small_gpu, seq, False
    )
