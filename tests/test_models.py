"""Tests for the model zoo: configs, parameter accounting, forward passes."""

import numpy as np
import pytest

from repro.models import (
    BLACKMAMBA_2_8B,
    BLACKMAMBA_TINY,
    BlackMambaModel,
    MIXTRAL_8X7B,
    MIXTRAL_TINY,
    MODEL_REGISTRY,
    MixtralModel,
    convert_to_qlora,
    get_model_spec,
    lora_adapter_parameters,
    model_memory_gb,
    param_breakdown,
    trainable_parameters,
    weight_bytes_per_param,
)
from repro.tensor import Tensor, no_grad


class TestParamAccounting:
    def test_mixtral_paper_scale_matches_table1(self):
        bd = param_breakdown(MIXTRAL_8X7B)
        assert bd.total / 1e9 == pytest.approx(46.7, rel=0.01)
        assert model_memory_gb(MIXTRAL_8X7B) == pytest.approx(23.35, rel=0.01)

    def test_blackmamba_paper_scale_matches_table1(self):
        bd = param_breakdown(BLACKMAMBA_2_8B)
        assert bd.total / 1e9 == pytest.approx(2.8, rel=0.02)
        assert model_memory_gb(BLACKMAMBA_2_8B) == pytest.approx(5.6, rel=0.02)

    def test_mixtral_tiny_analytic_equals_actual(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        assert model.num_parameters() == param_breakdown(MIXTRAL_TINY).total

    def test_blackmamba_tiny_analytic_equals_actual(self, rng):
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        assert model.num_parameters() == param_breakdown(BLACKMAMBA_TINY).total

    def test_experts_dominate_mixtral(self):
        bd = param_breakdown(MIXTRAL_8X7B)
        assert bd.components["moe_experts"] / bd.total > 0.9

    def test_lora_adapter_count_small_fraction(self):
        adapters = lora_adapter_parameters(MIXTRAL_8X7B)
        assert adapters / param_breakdown(MIXTRAL_8X7B).total < 0.01

    def test_trainable_parameters_by_method(self):
        assert trainable_parameters(MIXTRAL_8X7B) == lora_adapter_parameters(MIXTRAL_8X7B)
        assert trainable_parameters(BLACKMAMBA_2_8B) == param_breakdown(BLACKMAMBA_2_8B).total

    def test_weight_bytes(self):
        assert weight_bytes_per_param(MIXTRAL_8X7B) == 0.5  # NF4
        assert weight_bytes_per_param(BLACKMAMBA_2_8B) == 2.0  # fp16


class TestConfigs:
    def test_blackmamba_layer_types(self):
        types = BLACKMAMBA_2_8B.layer_types()
        assert len(types) == 18
        assert types.count("moe") == 8
        assert types.count("mamba") == 10

    def test_blackmamba_invalid_layout_raises(self):
        bad = BLACKMAMBA_2_8B.scaled(num_layers=4, num_moe_layers=4)
        with pytest.raises(ValueError):
            bad.layer_types()

    def test_sparsity_values(self):
        assert MIXTRAL_8X7B.moe.sparsity(dense=True) == 1.0
        assert MIXTRAL_8X7B.moe.sparsity(dense=False) == 0.25

    def test_registry(self):
        assert get_model_spec("mixtral-8x7b").finetune_method == "qlora"
        assert get_model_spec("blackmamba-2.8b").finetune_method == "full"
        with pytest.raises(KeyError):
            get_model_spec("gpt-5")

    def test_paper_scale_build_refused(self):
        with pytest.raises(ValueError):
            get_model_spec("mixtral-8x7b").build()

    def test_tiny_specs_buildable(self, rng):
        assert MODEL_REGISTRY["mixtral-tiny"].build(rng) is not None
        assert MODEL_REGISTRY["blackmamba-tiny"].build(rng) is not None


class TestMixtralModel:
    def test_forward_logits_shape(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        ids = rng.integers(0, MIXTRAL_TINY.vocab_size, (2, 10))
        with no_grad():
            logits = model(ids)
        assert logits.shape == (2, 10, MIXTRAL_TINY.vocab_size)

    def test_qlora_only_trains_adapters(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="qlora", rng=rng)
        trainable = [n for n, p in model.named_parameters() if p.requires_grad]
        assert trainable and all("lora_" in n for n in trainable)

    def test_qlora_enables_checkpointing_by_default(self, rng):
        assert MixtralModel(MIXTRAL_TINY, finetune_mode="qlora", rng=rng).gradient_checkpointing
        assert not MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng).gradient_checkpointing

    def test_invalid_mode(self, rng):
        with pytest.raises(ValueError):
            MixtralModel(MIXTRAL_TINY, finetune_mode="prompt-tuning", rng=rng)

    def test_set_sparsity_toggles_all_layers(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        model.set_sparsity(dense=True)
        assert all(m.top_k == 8 for m in model.moe_layers())
        model.set_sparsity(dense=False)
        assert all(m.top_k == 2 for m in model.moe_layers())

    def test_expert_load_collection(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        model.eval()
        ids = rng.integers(0, MIXTRAL_TINY.vocab_size, (2, 8))
        with no_grad():
            model(ids)
        load = model.expert_load()
        assert load.sum() == 2 * 8 * 2 * len(model.moe_layers())  # tokens*topk*layers
        model.reset_expert_load()
        assert model.expert_load().sum() == 0

    def test_checkpointing_matches_plain_forward(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", gradient_checkpointing=True, rng=rng)
        ids = rng.integers(0, MIXTRAL_TINY.vocab_size, (1, 6))
        model.train()
        with_ck = model(ids).data.copy()
        model.gradient_checkpointing = False
        without = model(ids).data
        np.testing.assert_allclose(with_ck, without, rtol=1e-10)

    def test_convert_to_qlora_preserves_function_at_step0(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        ids = rng.integers(0, MIXTRAL_TINY.vocab_size, (1, 6))
        model.eval()
        with no_grad():
            before = model(ids).data.copy()
        convert_to_qlora(model, rng=rng)
        model.gradient_checkpointing = False
        with no_grad():
            after = model(ids).data
        # LoRA starts as a no-op; only NF4 quantization error remains.
        assert np.abs(after - before).mean() < 0.5

    def test_convert_to_qlora_idempotent(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        convert_to_qlora(model, rng=rng)
        assert convert_to_qlora(model, rng=rng) is model

    def test_aux_loss_collection(self, rng):
        model = MixtralModel(MIXTRAL_TINY, finetune_mode="full", rng=rng)
        model.set_aux_loss(True)
        ids = rng.integers(0, MIXTRAL_TINY.vocab_size, (1, 6))
        model(ids)
        assert model.collect_aux_loss() is not None


class TestBlackMambaModel:
    def test_forward_logits_shape(self, rng):
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        ids = rng.integers(0, BLACKMAMBA_TINY.vocab_size, (2, 10))
        with no_grad():
            logits = model(ids)
        assert logits.shape == (2, 10, BLACKMAMBA_TINY.vocab_size)

    def test_all_parameters_trainable(self, rng):
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        assert all(p.requires_grad for p in model.parameters())

    def test_moe_layer_count_matches_config(self, rng):
        model = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        assert len(model.moe_layers()) == BLACKMAMBA_TINY.num_moe_layers

    def test_state_dict_roundtrip_preserves_output(self, rng):
        a = BlackMambaModel(BLACKMAMBA_TINY, rng=rng)
        b = BlackMambaModel(BLACKMAMBA_TINY, rng=np.random.default_rng(321))
        b.load_state_dict(a.state_dict())
        ids = rng.integers(0, BLACKMAMBA_TINY.vocab_size, (1, 7))
        a.eval(), b.eval()
        with no_grad():
            np.testing.assert_allclose(a(ids).data, b(ids).data, rtol=1e-12)
