"""Tests for the multi-GPU data-parallel extension (paper future work)."""

import pytest

from repro.gpu import (
    A40,
    DataParallelSimulator,
    H100,
    INTERCONNECTS,
    Interconnect,
    NVLINK,
    PCIE_GEN4,
    estimate_from_trace,
    get_interconnect,
    multi_gpu_cost_dollars,
    trainable_gradient_bytes,
)
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


class TestInterconnect:
    def test_single_gpu_no_allreduce(self):
        for link in INTERCONNECTS.values():
            assert link.allreduce_seconds(1e9, 1) == 0.0
            assert link.allreduce_seconds(0.0, 1) == 0.0

    def test_zero_payload_pays_only_latency(self):
        link = Interconnect("test", bandwidth_gbs=100.0, latency_us=15.0)
        for n in (2, 4, 8):
            assert link.allreduce_seconds(0.0, n) == pytest.approx(
                2 * (n - 1) * 15.0 * 1e-6
            )

    def test_latency_term_scales_linearly_with_ring_hops(self):
        link = Interconnect("test", bandwidth_gbs=100.0, latency_us=20.0)
        base = link.allreduce_seconds(0.0, 2)  # one hop pair
        assert link.allreduce_seconds(0.0, 8) == pytest.approx(7 * base)

    def test_wire_term_matches_ring_formula(self):
        link = Interconnect("test", bandwidth_gbs=10.0, latency_us=0.0)
        payload = 5e9
        for n in (2, 3, 8):
            expected = 2.0 * (n - 1) / n * payload / (10.0 * 1e9)
            assert link.allreduce_seconds(payload, n) == pytest.approx(expected)

    def test_wire_term_saturates_latency_term_does_not(self):
        """2(N-1)/N -> 2 as N grows, but the latency term keeps growing:
        at large N a latency-heavy link is dominated by hops."""
        link = Interconnect("test", bandwidth_gbs=100.0, latency_us=50.0)
        wire_only = Interconnect("test0", bandwidth_gbs=100.0, latency_us=0.0)
        assert wire_only.allreduce_seconds(1e9, 1024) < 2.0 * 1e9 / (100.0 * 1e9)
        hops = link.allreduce_seconds(1e9, 1024) - wire_only.allreduce_seconds(1e9, 1024)
        assert hops == pytest.approx(2 * 1023 * 50.0 * 1e-6)

    def test_ring_traffic_grows_with_gpus(self):
        two = NVLINK.allreduce_seconds(1e9, 2)
        eight = NVLINK.allreduce_seconds(1e9, 8)
        assert eight > two

    def test_bandwidth_ordering(self):
        assert PCIE_GEN4.allreduce_seconds(1e9, 4) > NVLINK.allreduce_seconds(1e9, 4)


class TestInterconnectRegistry:
    def test_keys_and_display_names_resolve(self):
        assert get_interconnect("nvlink") is NVLINK
        assert get_interconnect("NVLink") is NVLINK
        assert get_interconnect("pcie-gen4") is PCIE_GEN4
        assert get_interconnect("PCIe-Gen4") is PCIE_GEN4

    def test_instances_pass_through(self):
        custom = Interconnect("InfiniBand", bandwidth_gbs=50.0)
        assert get_interconnect(custom) is custom

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get_interconnect("token-ring")


class TestGradientPayload:
    def test_qlora_payload_tiny(self):
        mixtral = trainable_gradient_bytes(MIXTRAL_8X7B)
        blackmamba = trainable_gradient_bytes(BLACKMAMBA_2_8B)
        assert mixtral < blackmamba / 5  # adapters vs full model

    def test_blackmamba_payload_matches_params(self):
        from repro.models import param_breakdown

        assert trainable_gradient_bytes(BLACKMAMBA_2_8B) == pytest.approx(
            2 * param_breakdown(BLACKMAMBA_2_8B).total
        )


class TestDataParallelSimulator:
    def test_single_gpu_matches_base_simulator(self):
        sim = DataParallelSimulator(A40)
        estimate = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=1)
        assert estimate.scaling_efficiency == pytest.approx(1.0)
        assert estimate.allreduce_seconds == 0.0

    def test_throughput_grows_with_gpus(self):
        sim = DataParallelSimulator(A40)
        previous = 0.0
        for n in (1, 2, 4, 8):
            estimate = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=n)
            assert estimate.queries_per_second > previous
            previous = estimate.queries_per_second

    def test_efficiency_monotone_nonincreasing(self):
        sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        curve = sim.scaling_curve(BLACKMAMBA_2_8B, 6, 128, max_gpus=8)
        efficiencies = [curve[n].scaling_efficiency for n in sorted(curve)]
        assert all(b <= a + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))
        assert all(0 < e <= 1.0 + 1e-9 for e in efficiencies)

    def test_qlora_scales_better_than_full_ft(self):
        """Headline of the extension: adapter-only sync is near-free."""
        sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        mixtral = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=8)
        blackmamba = sim.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        assert mixtral.scaling_efficiency > blackmamba.scaling_efficiency
        assert mixtral.scaling_efficiency > 0.97

    def test_nvlink_beats_pcie_for_full_ft(self):
        nvlink = DataParallelSimulator(A40, interconnect=NVLINK)
        pcie = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        fast = nvlink.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        slow = pcie.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        assert fast.queries_per_second > slow.queries_per_second

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            DataParallelSimulator(A40).estimate(MIXTRAL_8X7B, 4, 128, num_gpus=0)

    def test_estimate_from_trace_matches_simulator(self):
        """The trace-based entry point (what the cluster layer feeds with
        cached traces) is the same model as the simulator path."""
        from repro.gpu import GPUSimulator

        trace = GPUSimulator(A40).simulate_step(MIXTRAL_8X7B, 4, 128, dense=False)
        direct = estimate_from_trace(MIXTRAL_8X7B, trace, 4, PCIE_GEN4)
        via_sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4).estimate(
            MIXTRAL_8X7B, 4, 128, num_gpus=4
        )
        assert direct == via_sim
        with pytest.raises(ValueError):
            estimate_from_trace(MIXTRAL_8X7B, trace, 0, PCIE_GEN4)


class TestMultiGPUCost:
    def test_wall_clock_shrinks_dollars_roughly_flat(self):
        """Perfect scaling keeps dollars constant; comm overhead adds a
        premium — multi-GPU buys time, not money."""
        sim = DataParallelSimulator(H100, interconnect=NVLINK)
        one = sim.estimate(MIXTRAL_8X7B, 17, 150, num_gpus=1)
        four = sim.estimate(MIXTRAL_8X7B, 17, 150, num_gpus=4)
        cost_one = multi_gpu_cost_dollars(one, 14000, 10, 2.10)
        cost_four = multi_gpu_cost_dollars(four, 14000, 10, 2.10)
        assert cost_four == pytest.approx(cost_one, rel=0.1)
        assert four.queries_per_second > 3 * one.queries_per_second

    def test_zero_throughput_infinite_cost(self):
        from repro.gpu.multigpu import MultiGPUEstimate

        estimate = MultiGPUEstimate(1, 1, 1.0, 0.0, 0.0, 0.0)
        assert multi_gpu_cost_dollars(estimate, 10, 1, 1.0) == float("inf")
