"""Tests for the multi-GPU data-parallel extension (paper future work)."""

import pytest

from repro.gpu import (
    A40,
    DataParallelSimulator,
    H100,
    Interconnect,
    NVLINK,
    PCIE_GEN4,
    multi_gpu_cost_dollars,
    trainable_gradient_bytes,
)
from repro.models import BLACKMAMBA_2_8B, MIXTRAL_8X7B


class TestInterconnect:
    def test_single_gpu_no_allreduce(self):
        assert NVLINK.allreduce_seconds(1e9, 1) == 0.0

    def test_ring_traffic_grows_with_gpus(self):
        two = NVLINK.allreduce_seconds(1e9, 2)
        eight = NVLINK.allreduce_seconds(1e9, 8)
        assert eight > two

    def test_bandwidth_ordering(self):
        assert PCIE_GEN4.allreduce_seconds(1e9, 4) > NVLINK.allreduce_seconds(1e9, 4)


class TestGradientPayload:
    def test_qlora_payload_tiny(self):
        mixtral = trainable_gradient_bytes(MIXTRAL_8X7B)
        blackmamba = trainable_gradient_bytes(BLACKMAMBA_2_8B)
        assert mixtral < blackmamba / 5  # adapters vs full model

    def test_blackmamba_payload_matches_params(self):
        from repro.models import param_breakdown

        assert trainable_gradient_bytes(BLACKMAMBA_2_8B) == pytest.approx(
            2 * param_breakdown(BLACKMAMBA_2_8B).total
        )


class TestDataParallelSimulator:
    def test_single_gpu_matches_base_simulator(self):
        sim = DataParallelSimulator(A40)
        estimate = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=1)
        assert estimate.scaling_efficiency == pytest.approx(1.0)
        assert estimate.allreduce_seconds == 0.0

    def test_throughput_grows_with_gpus(self):
        sim = DataParallelSimulator(A40)
        previous = 0.0
        for n in (1, 2, 4, 8):
            estimate = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=n)
            assert estimate.queries_per_second > previous
            previous = estimate.queries_per_second

    def test_efficiency_monotone_nonincreasing(self):
        sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        curve = sim.scaling_curve(BLACKMAMBA_2_8B, 6, 128, max_gpus=8)
        efficiencies = [curve[n].scaling_efficiency for n in sorted(curve)]
        assert all(b <= a + 1e-9 for a, b in zip(efficiencies, efficiencies[1:]))
        assert all(0 < e <= 1.0 + 1e-9 for e in efficiencies)

    def test_qlora_scales_better_than_full_ft(self):
        """Headline of the extension: adapter-only sync is near-free."""
        sim = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        mixtral = sim.estimate(MIXTRAL_8X7B, 4, 128, num_gpus=8)
        blackmamba = sim.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        assert mixtral.scaling_efficiency > blackmamba.scaling_efficiency
        assert mixtral.scaling_efficiency > 0.97

    def test_nvlink_beats_pcie_for_full_ft(self):
        nvlink = DataParallelSimulator(A40, interconnect=NVLINK)
        pcie = DataParallelSimulator(A40, interconnect=PCIE_GEN4)
        fast = nvlink.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        slow = pcie.estimate(BLACKMAMBA_2_8B, 6, 128, num_gpus=8)
        assert fast.queries_per_second > slow.queries_per_second

    def test_invalid_gpu_count(self):
        with pytest.raises(ValueError):
            DataParallelSimulator(A40).estimate(MIXTRAL_8X7B, 4, 128, num_gpus=0)


class TestMultiGPUCost:
    def test_wall_clock_shrinks_dollars_roughly_flat(self):
        """Perfect scaling keeps dollars constant; comm overhead adds a
        premium — multi-GPU buys time, not money."""
        sim = DataParallelSimulator(H100, interconnect=NVLINK)
        one = sim.estimate(MIXTRAL_8X7B, 17, 150, num_gpus=1)
        four = sim.estimate(MIXTRAL_8X7B, 17, 150, num_gpus=4)
        cost_one = multi_gpu_cost_dollars(one, 14000, 10, 2.10)
        cost_four = multi_gpu_cost_dollars(four, 14000, 10, 2.10)
        assert cost_four == pytest.approx(cost_one, rel=0.1)
        assert four.queries_per_second > 3 * one.queries_per_second

    def test_zero_throughput_infinite_cost(self):
        from repro.gpu.multigpu import MultiGPUEstimate

        estimate = MultiGPUEstimate(1, 1, 1.0, 0.0, 0.0, 0.0)
        assert multi_gpu_cost_dollars(estimate, 10, 1, 1.0) == float("inf")
